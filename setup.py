"""Legacy shim: this environment has no `wheel` package, so editable
installs go through `setup.py develop`. All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
