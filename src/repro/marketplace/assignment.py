"""Capacity-constrained task assignment.

The naive platform (:class:`~repro.marketplace.platform.Marketplace`) hires
the top-k of every ranking independently, so one outstanding worker can win
every job.  Real marketplaces are capacity-constrained: a worker can only
take so many concurrent gigs.  This module implements the standard greedy
assignment under per-worker capacity and measures requester utility (sum of
hired workers' scores), which makes the fairness/utility consequences of a
scoring function — and of repairing it — observable end to end:

* a biased scoring function concentrates work on the favoured group until
  capacity forces spillover;
* score repair redistributes assignments at a measurable utility cost.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.population import Population
from repro.exceptions import ScoringError
from repro.marketplace.ranking import rank_workers
from repro.marketplace.tasks import Task, eligible_workers

__all__ = ["Assignment", "AssignmentPlan", "assign_tasks"]


@dataclass(frozen=True)
class Assignment:
    """One task's outcome under capacity constraints."""

    task_id: str
    hired: np.ndarray
    utility: float

    @property
    def filled(self) -> int:
        return int(self.hired.shape[0])


@dataclass(frozen=True)
class AssignmentPlan:
    """All assignments of a task stream plus aggregate measures."""

    assignments: tuple[Assignment, ...]
    load: np.ndarray  # jobs assigned per worker
    requested_positions: tuple[int, ...]  # each task's asked-for headcount

    @property
    def total_utility(self) -> float:
        """Sum of hired workers' scores across all tasks."""
        return float(sum(a.utility for a in self.assignments))

    @property
    def unfilled_positions(self) -> int:
        """Positions that could not be filled under the capacity limit."""
        return sum(
            requested - assignment.filled
            for requested, assignment in zip(self.requested_positions, self.assignments)
        )

    def load_share_by_group(self, population: Population, attribute: str) -> dict[str, float]:
        """Fraction of all assigned jobs going to each group."""
        from repro.core.attributes import CategoricalAttribute

        attr = population.schema.protected_attribute(attribute)
        codes = population.partition_codes(attribute)
        total = self.load.sum()
        out: dict[str, float] = {}
        for code in np.unique(codes):
            label = (
                attr.code_label(int(code))
                if isinstance(attr, CategoricalAttribute)
                else f"[{attr.code_label(int(code))}]"
            )
            group_load = self.load[codes == code].sum()
            out[label] = float(group_load / total) if total else 0.0
        return out


def assign_tasks(
    population: Population,
    tasks: "list[Task] | tuple[Task, ...]",
    capacity: int = 1,
    scores_override: "dict[str, np.ndarray] | None" = None,
) -> AssignmentPlan:
    """Greedily assign a task stream under per-worker capacity.

    Tasks are processed in order; each hires its highest-ranked eligible
    workers that still have spare capacity.  ``scores_override`` maps task
    ids to replacement score vectors (e.g. repaired scores), letting callers
    replay the same workload under a repaired function.

    Returns an :class:`AssignmentPlan`; tasks that cannot fill all their
    positions get as many workers as remain (recorded, not an error —
    markets run out of capacity).
    """
    if capacity < 1:
        raise ScoringError(f"capacity must be >= 1, got {capacity}")
    overrides = scores_override or {}
    remaining = np.full(population.size, capacity, dtype=np.int64)
    assignments: list[Assignment] = []
    positions: list[int] = []
    for task in tasks:
        eligible = eligible_workers(population, task)
        ranking = rank_workers(population, task.scoring, eligible=eligible)
        scores = overrides.get(task.task_id)
        if scores is None:
            scores = ranking.scores
        else:
            scores = np.asarray(scores, dtype=np.float64)
            if scores.shape != (population.size,):
                raise ScoringError(
                    f"override for task {task.task_id!r} has shape "
                    f"{scores.shape}, expected ({population.size},)"
                )
            order = np.nonzero(eligible)[0]
            ranking_order = order[np.lexsort((order, -scores[order]))]
            ranking = type(ranking)(order=ranking_order, scores=scores)
        hired: list[int] = []
        for worker in ranking.order:
            if len(hired) == task.positions:
                break
            if remaining[worker] > 0:
                remaining[worker] -= 1
                hired.append(int(worker))
        hired_arr = np.asarray(hired, dtype=np.int64)
        assignments.append(
            Assignment(
                task_id=task.task_id,
                hired=hired_arr,
                utility=float(scores[hired_arr].sum()) if hired else 0.0,
            )
        )
        positions.append(task.positions)
    load = np.full(population.size, capacity, dtype=np.int64) - remaining
    return AssignmentPlan(
        assignments=tuple(assignments),
        load=load,
        requested_positions=tuple(positions),
    )
