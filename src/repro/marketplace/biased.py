"""Biased-by-design scoring functions (the paper's qualitative study, f6..f9).

These functions ignore the observed skill attributes entirely and assign
score *ranges* keyed on protected attributes — the ground-truth unfair
functions the paper uses to check that the algorithms recover the planted
bias.  Scores are drawn uniformly at random within the matched range
("the function scores were generated at random within the specified range"),
deterministically from a configurable seed.

The concrete paper functions, built by :func:`paper_biased_functions`:

* **f6** — gender bias: f6(w) > 0.8 for males, f6(w) < 0.2 for females.
* **f7** — gender x country bias: male Americans high, female Americans low,
  Indians (either gender) mid, other-country females high, other-country
  males low.
* **f8** — specified only for females (American high, Indian mid, other
  low); the paper leaves males unspecified.  We assign unmatched workers the
  same low band [0, 0.2) as other-nationality females, which reproduces the
  paper's Table 3 value almost exactly (balanced: 0.459 measured vs 0.460
  reported) — drawing males uniformly from [0, 1] instead yields ~0.31
  (documented substitution, DESIGN.md §2.7).
* **f9** — the paper only says it "correlates with protected attributes
  ethnicity, language and year of birth similarly to previous ones"; we
  instantiate a concrete rule set in that spirit (high scores for older
  English-speaking White workers, low for the youngest cohort, graded bands
  in between — documented substitution, DESIGN.md §2.7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.attributes import CategoricalAttribute, IntegerAttribute
from repro.core.population import Population
from repro.exceptions import ScoringError
from repro.marketplace.scoring import ScoringFunction

__all__ = [
    "AttributeCondition",
    "ScoreRule",
    "RuleBasedScoringFunction",
    "paper_biased_functions",
]


@dataclass(frozen=True)
class AttributeCondition:
    """A test on one protected attribute.

    For categorical attributes pass ``labels`` (the set of matching values);
    for integer attributes pass ``value_range`` = (low, high), inclusive on
    both ends over the *raw* values.
    """

    attribute: str
    labels: frozenset[str] | None = None
    value_range: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if (self.labels is None) == (self.value_range is None):
            raise ScoringError(
                f"condition on {self.attribute!r}: provide exactly one of "
                "labels / value_range"
            )

    def mask(self, population: Population) -> np.ndarray:
        """Boolean mask of the workers satisfying this condition."""
        attr = population.schema.protected_attribute(self.attribute)
        column = population.protected_column(self.attribute)
        if self.labels is not None:
            if not isinstance(attr, CategoricalAttribute):
                raise ScoringError(
                    f"condition on {self.attribute!r}: labels require a "
                    "categorical attribute"
                )
            codes = attr.encode(sorted(self.labels))
            return np.isin(column, codes)
        assert self.value_range is not None
        if not isinstance(attr, IntegerAttribute):
            raise ScoringError(
                f"condition on {self.attribute!r}: value_range requires an "
                "integer attribute"
            )
        low, high = self.value_range
        return (column >= low) & (column <= high)

    def describe(self) -> str:
        if self.labels is not None:
            return f"{self.attribute}∈{{{', '.join(sorted(self.labels))}}}"
        assert self.value_range is not None
        return f"{self.attribute}∈[{self.value_range[0]}, {self.value_range[1]}]"


@dataclass(frozen=True)
class ScoreRule:
    """If every condition matches (logical AND), draw the score uniformly
    from ``score_range``.  An empty condition tuple matches everyone."""

    conditions: tuple[AttributeCondition, ...]
    score_range: tuple[float, float]

    def __post_init__(self) -> None:
        low, high = self.score_range
        if not (0.0 <= low < high <= 1.0):
            raise ScoringError(
                f"score range must satisfy 0 <= low < high <= 1, got ({low}, {high})"
            )

    def mask(self, population: Population) -> np.ndarray:
        mask = np.ones(population.size, dtype=bool)
        for condition in self.conditions:
            mask &= condition.mask(population)
        return mask

    def describe(self) -> str:
        condition_str = " ∧ ".join(c.describe() for c in self.conditions) or "ALWAYS"
        low, high = self.score_range
        return f"{condition_str} -> U({low}, {high})"


class RuleBasedScoringFunction(ScoringFunction):
    """First-match rule list assigning score ranges on protected attributes.

    Parameters
    ----------
    name:
        Display name, e.g. ``"f6"``.
    rules:
        Tried in order; the first matching rule supplies the worker's range.
    default_range:
        Range for workers no rule matches.
    seed:
        Seed of the uniform draws; the same function object scores the same
        population identically on every call.
    """

    def __init__(
        self,
        name: str,
        rules: "list[ScoreRule] | tuple[ScoreRule, ...]",
        default_range: tuple[float, float] = (0.0, 1.0),
        seed: int = 0,
    ) -> None:
        super().__init__(name)
        if not rules:
            raise ScoringError(f"rule-based function {name!r} needs at least one rule")
        self.rules = tuple(rules)
        self.default_rule = ScoreRule((), default_range)
        self.seed = seed

    def scores(self, population: Population) -> np.ndarray:
        rng = np.random.default_rng(self.seed)
        uniform = rng.random(population.size)
        low = np.full(population.size, self.default_rule.score_range[0])
        high = np.full(population.size, self.default_rule.score_range[1])
        unmatched = np.ones(population.size, dtype=bool)
        for rule in self.rules:
            mask = rule.mask(population) & unmatched
            low[mask], high[mask] = rule.score_range
            unmatched &= ~mask
        return low + uniform * (high - low)

    def describe(self) -> str:
        """Human-readable rule list for reports."""
        lines = [f"{self.name}:"]
        lines += [f"  {rule.describe()}" for rule in self.rules]
        lines.append(f"  otherwise -> U{self.default_rule.score_range}")
        return "\n".join(lines)


def _cat(attribute: str, *labels: str) -> AttributeCondition:
    return AttributeCondition(attribute, labels=frozenset(labels))


def _rng(attribute: str, low: int, high: int) -> AttributeCondition:
    return AttributeCondition(attribute, value_range=(low, high))


def paper_biased_functions(seed: int = 7) -> dict[str, RuleBasedScoringFunction]:
    """The four biased functions of the paper's qualitative study.

    Attribute names follow :func:`repro.simulation.config.paper_schema`:
    ``gender`` (Male/Female), ``country`` (America/India/Other), ``ethnicity``
    (White/African-American/Indian/Other), ``language``
    (English/Indian/Other), ``year_of_birth`` in [1950, 2009].
    """
    f6 = RuleBasedScoringFunction(
        "f6",
        [
            ScoreRule((_cat("gender", "Male"),), (0.8, 1.0)),
            ScoreRule((_cat("gender", "Female"),), (0.0, 0.2)),
        ],
        seed=seed,
    )
    f7 = RuleBasedScoringFunction(
        "f7",
        [
            ScoreRule((_cat("country", "India"),), (0.5, 0.7)),
            ScoreRule((_cat("gender", "Male"), _cat("country", "America")), (0.8, 1.0)),
            ScoreRule((_cat("gender", "Female"), _cat("country", "America")), (0.0, 0.2)),
            ScoreRule((_cat("gender", "Female"), _cat("country", "Other")), (0.8, 1.0)),
            ScoreRule((_cat("gender", "Male"), _cat("country", "Other")), (0.0, 0.2)),
        ],
        seed=seed + 1,
    )
    f8 = RuleBasedScoringFunction(
        "f8",
        [
            ScoreRule((_cat("gender", "Female"), _cat("country", "America")), (0.8, 1.0)),
            ScoreRule((_cat("gender", "Female"), _cat("country", "India")), (0.5, 0.8)),
            ScoreRule((_cat("gender", "Female"), _cat("country", "Other")), (0.0, 0.2)),
        ],
        default_range=(0.0, 0.2),  # males unspecified by the paper; see module docstring
        seed=seed + 2,
    )
    f9 = RuleBasedScoringFunction(
        "f9",
        [
            ScoreRule(
                (
                    _cat("ethnicity", "White"),
                    _cat("language", "English"),
                    _rng("year_of_birth", 1950, 1979),
                ),
                (0.8, 1.0),
            ),
            ScoreRule((_cat("ethnicity", "White"),), (0.6, 0.9)),
            ScoreRule((_cat("ethnicity", "Indian"), _cat("language", "Indian")), (0.45, 0.7)),
            ScoreRule((_rng("year_of_birth", 1990, 2009),), (0.0, 0.3)),
            ScoreRule((_cat("language", "Other"),), (0.2, 0.5)),
        ],
        default_range=(0.3, 0.6),
        seed=seed + 3,
    )
    return {"f6": f6, "f7": f7, "f8": f8, "f9": f9}
