"""Tasks (jobs) posted on the marketplace.

The paper's setting: "A person who needs to hire someone for a job can
formulate a query and is shown a ranked list of people."  A :class:`Task` is
that query — a job description plus the requester's scoring function (the
weights over observed skill attributes the requester cares about).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.population import Population
from repro.exceptions import ScoringError
from repro.marketplace.scoring import LinearScoringFunction, ScoringFunction

__all__ = ["Task", "task_from_weights", "eligible_workers"]


@dataclass(frozen=True)
class Task:
    """A job posted by a requester.

    Attributes
    ----------
    task_id:
        Unique identifier on the platform.
    title:
        Short human-readable description, e.g. "help with HTML/CSS/JQuery".
    scoring:
        The function used to rank workers for this task.
    positions:
        How many workers the requester intends to hire (top-k of the ranking).
    tags:
        Free-form labels (skills, categories) used for browsing.
    requirements:
        Hard filters applied *before* ranking: mapping from observed
        attribute name to the minimum raw value a worker must have to be
        eligible (e.g. ``{"approval_rate": 90.0}``).  Real platforms let
        requesters filter this way, and the filter itself can be a bias
        channel — audits should run on the eligible pool the ranking
        actually sees.
    """

    task_id: str
    title: str
    scoring: ScoringFunction
    positions: int = 1
    tags: tuple[str, ...] = field(default=())
    requirements: "dict[str, float]" = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.task_id:
            raise ScoringError("task_id must be non-empty")
        if self.positions < 1:
            raise ScoringError(f"task {self.task_id!r}: positions must be >= 1")


def task_from_weights(
    task_id: str,
    title: str,
    weights: dict[str, float],
    positions: int = 1,
    tags: tuple[str, ...] = (),
    requirements: "dict[str, float] | None" = None,
) -> Task:
    """Build a task whose ranking uses a linear scoring function.

    This mirrors how a requester configures a query: one weight per skill
    attribute, zero meaning "not relevant for me", plus optional minimum
    skill requirements that filter the eligible pool before ranking.
    """
    scoring = LinearScoringFunction(f"task:{task_id}", weights)
    return Task(
        task_id=task_id,
        title=title,
        scoring=scoring,
        positions=positions,
        tags=tags,
        requirements=dict(requirements or {}),
    )


def eligible_workers(population: Population, task: Task) -> np.ndarray:
    """Boolean mask of the workers meeting a task's hard requirements."""
    mask = np.ones(population.size, dtype=bool)
    for attribute, minimum in task.requirements.items():
        mask &= population.observed_column(attribute) >= minimum
    return mask
