"""Ranked result lists.

When a requester posts a task, the platform scores every worker and shows a
ranked list — the object whose fairness this whole library audits.  Ranking
is by score descending with deterministic tie-breaking on worker index, so
identical inputs always produce identical rankings.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.population import Population
from repro.exceptions import ScoringError
from repro.marketplace.scoring import ScoringFunction

__all__ = ["Ranking", "rank_workers"]


@dataclass(frozen=True)
class Ranking:
    """An ordered list of workers with their scores.

    ``order[r]`` is the worker index shown at rank ``r`` (0 = top);
    ``scores[w]`` is worker ``w``'s score (indexed by worker, not rank).
    ``order`` may rank only a subset of the workers (tasks with hard
    requirements rank the eligible pool only), so it can be shorter than
    ``scores`` — but never reference a worker outside it.
    """

    order: np.ndarray
    scores: np.ndarray

    def __post_init__(self) -> None:
        if self.order.ndim != 1 or self.scores.ndim != 1:
            raise ScoringError("ranking order and scores must be one-dimensional")
        if self.order.shape[0] > self.scores.shape[0]:
            raise ScoringError(
                f"ranking lists {self.order.shape[0]} workers but only "
                f"{self.scores.shape[0]} scores exist"
            )
        if self.order.size and (
            self.order.min() < 0 or self.order.max() >= self.scores.shape[0]
        ):
            raise ScoringError("ranking order references workers without scores")

    @property
    def size(self) -> int:
        """Number of ranked workers."""
        return int(self.order.shape[0])

    def __len__(self) -> int:
        return self.size

    def top_k(self, k: int) -> np.ndarray:
        """Worker indices at the first ``k`` ranks."""
        if k < 0:
            raise ScoringError(f"k must be non-negative, got {k}")
        return self.order[:k]

    def rank_of(self, worker: int) -> int:
        """0-based rank at which a worker appears."""
        positions = np.nonzero(self.order == worker)[0]
        if positions.size == 0:
            raise ScoringError(f"worker {worker} is not in this ranking")
        return int(positions[0])

    def scores_by_rank(self) -> np.ndarray:
        """Scores in rank order (non-increasing)."""
        return self.scores[self.order]


def rank_workers(
    population: Population,
    scoring: ScoringFunction,
    eligible: np.ndarray | None = None,
) -> Ranking:
    """Score every worker and rank the eligible ones for display.

    Sort is descending by score; ties break on worker index (ascending) so
    rankings are reproducible.  ``eligible`` is an optional boolean mask —
    ineligible workers keep their scores but do not appear in the ranking
    (that is how task requirements work on real platforms).
    """
    scores = scoring(population)
    if eligible is None:
        candidates = np.arange(population.size, dtype=np.int64)
    else:
        eligible = np.asarray(eligible, dtype=bool)
        if eligible.shape != (population.size,):
            raise ScoringError(
                f"eligibility mask has shape {eligible.shape}, expected "
                f"({population.size},)"
            )
        candidates = np.nonzero(eligible)[0].astype(np.int64)
    # lexsort: last key is primary. Negate scores for descending order.
    order = candidates[np.lexsort((candidates, -scores[candidates]))]
    return Ranking(order=order, scores=scores)
