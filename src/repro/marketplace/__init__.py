"""The online-job-marketplace substrate: scoring, tasks, rankings, exposure
metrics and an end-to-end platform simulation."""

from repro.marketplace.assignment import Assignment, AssignmentPlan, assign_tasks
from repro.marketplace.biased import (
    AttributeCondition,
    RuleBasedScoringFunction,
    ScoreRule,
    paper_biased_functions,
)
from repro.marketplace.exposure import (
    exposure_disparity,
    group_exposure,
    position_exposure,
    top_k_representation,
)
from repro.marketplace.platform import HiringRecord, Marketplace
from repro.marketplace.ranking import Ranking, rank_workers
from repro.marketplace.scoring import (
    PAPER_ALPHAS,
    LinearScoringFunction,
    ScoringFunction,
    paper_functions,
)
from repro.marketplace.streaming import (
    MUTATIONS_SCHEMA,
    AppliedMutation,
    MutablePopulation,
    Mutation,
    random_mutation_mix,
    read_mutation_stream,
    write_mutation_stream,
)
from repro.marketplace.tasks import Task, eligible_workers, task_from_weights

__all__ = [
    "ScoringFunction",
    "LinearScoringFunction",
    "PAPER_ALPHAS",
    "paper_functions",
    "RuleBasedScoringFunction",
    "ScoreRule",
    "AttributeCondition",
    "paper_biased_functions",
    "Task",
    "task_from_weights",
    "eligible_workers",
    "Ranking",
    "rank_workers",
    "position_exposure",
    "group_exposure",
    "exposure_disparity",
    "top_k_representation",
    "Marketplace",
    "HiringRecord",
    "Assignment",
    "AssignmentPlan",
    "assign_tasks",
    "MUTATIONS_SCHEMA",
    "Mutation",
    "AppliedMutation",
    "MutablePopulation",
    "random_mutation_mix",
    "read_mutation_stream",
    "write_mutation_stream",
]
