"""End-to-end marketplace simulation.

A :class:`Marketplace` wires the pieces together the way the paper's
introduction describes the real platforms (TaskRabbit, Fiverr, Qapa,
MisterTemp'): requesters post tasks, the platform ranks the active workers
with the requester's scoring function, and the top-ranked workers get hired.
Running a stream of tasks yields hiring statistics per demographic group —
the observable consequence of an unfair scoring function, and the realistic
scenario the example applications audit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.attributes import CategoricalAttribute
from repro.core.population import Population
from repro.exceptions import ScoringError
from repro.marketplace.ranking import Ranking, rank_workers
from repro.marketplace.tasks import Task

__all__ = ["HiringRecord", "Marketplace"]


@dataclass(frozen=True)
class HiringRecord:
    """Outcome of one posted task: its ranking and the hired workers."""

    task: Task
    ranking: Ranking
    hired: np.ndarray

    @property
    def n_hired(self) -> int:
        return int(self.hired.shape[0])


@dataclass
class Marketplace:
    """An online job marketplace over a fixed set of active workers.

    Parameters
    ----------
    population:
        The active workers (the paper simulates 500 and 7300 of them).
    """

    population: Population
    history: list[HiringRecord] = field(default_factory=list)

    def post_task(self, task: Task) -> HiringRecord:
        """Rank the eligible workers for a task, hire the top ``task.positions``.

        Workers failing the task's hard requirements are filtered before
        ranking.  The record is appended to :attr:`history` and returned.
        """
        from repro.marketplace.tasks import eligible_workers

        eligible = eligible_workers(self.population, task)
        pool = int(eligible.sum())
        if task.positions > pool:
            raise ScoringError(
                f"task {task.task_id!r} wants {task.positions} hires, but only "
                f"{pool} of {self.population.size} workers meet its requirements"
            )
        ranking = rank_workers(self.population, task.scoring, eligible=eligible)
        hired = ranking.top_k(task.positions)
        record = HiringRecord(task=task, ranking=ranking, hired=hired)
        self.history.append(record)
        return record

    def run(self, tasks: "list[Task] | tuple[Task, ...]") -> list[HiringRecord]:
        """Post a stream of tasks; returns their records in order."""
        return [self.post_task(task) for task in tasks]

    # ------------------------------------------------------------- statistics

    def total_hires(self) -> np.ndarray:
        """Number of times each worker was hired across all history."""
        counts = np.zeros(self.population.size, dtype=np.int64)
        for record in self.history:
            counts[record.hired] += 1
        return counts

    def hire_share_by_group(self, attribute: str) -> dict[str, float]:
        """Fraction of all hires going to each value of a protected attribute.

        An unbiased platform over random workers gives each group a share
        close to its population share; a biased scoring function visibly
        skews these numbers — the demand-side symptom the audit explains.
        """
        hires = self.total_hires()
        total = hires.sum()
        attr = self.population.schema.protected_attribute(attribute)
        codes = self.population.partition_codes(attribute)
        out: dict[str, float] = {}
        for code in np.unique(codes):
            label = (
                attr.code_label(int(code))
                if isinstance(attr, CategoricalAttribute)
                else f"[{attr.code_label(int(code))}]"
            )
            out[label] = float(hires[codes == code].sum() / total) if total else 0.0
        return out

    def population_share(self, attribute: str) -> dict[str, float]:
        """Each group's share of the worker population (parity reference)."""
        attr = self.population.schema.protected_attribute(attribute)
        codes = self.population.partition_codes(attribute)
        out: dict[str, float] = {}
        for code in np.unique(codes):
            label = (
                attr.code_label(int(code))
                if isinstance(attr, CategoricalAttribute)
                else f"[{attr.code_label(int(code))}]"
            )
            out[label] = float((codes == code).mean())
        return out
