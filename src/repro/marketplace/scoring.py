"""Task-qualification scoring functions.

The paper scores workers with linear combinations of their observed (skill)
attributes:

    f(w) = sum_i alpha_i * b_i,   f : W -> [0, 1]

where each ``b_i`` is an observed attribute (min-max normalised to [0, 1] so
a convex combination stays in range) and ``alpha_i`` is a requester-chosen
weight — a weight of zero means the attribute is irrelevant to the requester.

:func:`paper_functions` builds the five simulation functions f1..f5 of the
evaluation section: ``f = alpha*b1 + (1-alpha)*b2`` with b1 = LanguageTest,
b2 = ApprovalRate, and alpha in {0, 0.3, 0.5, 0.7, 1}.  The paper states
that f4 uses only LanguageTest and f5 only ApprovalRate, pinning f4 <-> 1 and
f5 <-> 0; we assign the remaining weights as f1=0.5, f2=0.3, f3=0.7 (see
DESIGN.md §5 — the three mixtures behave nearly identically).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.population import Population
from repro.exceptions import ScoringError

__all__ = [
    "ScoringFunction",
    "LinearScoringFunction",
    "paper_functions",
    "PAPER_ALPHAS",
]

#: alpha used for each paper simulation function (f = alpha*b1 + (1-alpha)*b2).
PAPER_ALPHAS: dict[str, float] = {
    "f1": 0.5,
    "f2": 0.3,
    "f3": 0.7,
    "f4": 1.0,
    "f5": 0.0,
}


class ScoringFunction(abc.ABC):
    """A task-qualification function mapping workers to scores in [0, 1]."""

    def __init__(self, name: str) -> None:
        if not name:
            raise ScoringError("scoring function name must be non-empty")
        self.name = name

    @abc.abstractmethod
    def scores(self, population: Population) -> np.ndarray:
        """Score every worker; the result lies in [0, 1]."""

    def __call__(self, population: Population) -> np.ndarray:
        scores = np.asarray(self.scores(population), dtype=np.float64)
        if scores.shape != (population.size,):
            raise ScoringError(
                f"scoring function {self.name!r} returned shape {scores.shape}, "
                f"expected ({population.size},)"
            )
        if scores.size and (
            not np.all(np.isfinite(scores)) or scores.min() < 0.0 or scores.max() > 1.0
        ):
            raise ScoringError(
                f"scoring function {self.name!r} produced scores outside [0, 1]"
            )
        return scores

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class LinearScoringFunction(ScoringFunction):
    """The paper's scoring form: a convex combination of observed attributes.

    Parameters
    ----------
    name:
        Display name, e.g. ``"f1"``.
    weights:
        Mapping from observed attribute name to its weight alpha_i.
        Weights must be non-negative; attributes omitted get weight zero
        ("not relevant for the user in ranking the individuals").  Weights
        must sum to at most 1 so scores stay in [0, 1]; the common case is
        exactly 1.
    """

    def __init__(self, name: str, weights: dict[str, float]) -> None:
        super().__init__(name)
        if not weights:
            raise ScoringError(f"scoring function {name!r} needs at least one weight")
        total = 0.0
        for attr, weight in weights.items():
            if weight < 0:
                raise ScoringError(
                    f"scoring function {name!r}: weight of {attr!r} is negative"
                )
            total += weight
        if total > 1.0 + 1e-9:
            raise ScoringError(
                f"scoring function {name!r}: weights sum to {total}, must be <= 1 "
                "to keep scores in [0, 1]"
            )
        self.weights = dict(weights)

    def scores(self, population: Population) -> np.ndarray:
        out = np.zeros(population.size, dtype=np.float64)
        for attr, weight in self.weights.items():
            if weight == 0.0:
                continue
            out += weight * population.observed_normalized(attr)
        return out


def paper_functions(
    b1: str = "language_test", b2: str = "approval_rate"
) -> dict[str, LinearScoringFunction]:
    """The five simulation scoring functions f1..f5 of the evaluation section."""
    return {
        name: LinearScoringFunction(name, {b1: alpha, b2: 1.0 - alpha})
        for name, alpha in PAPER_ALPHAS.items()
    }
