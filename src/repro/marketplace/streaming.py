"""Mutable populations for streaming audits (``repro.mutations/v1``).

The batch pipeline treats a :class:`~repro.core.population.Population` as
frozen — the right model for reproducing the paper's tables, and the wrong
one for the paper's *setting*: an online marketplace where workers join,
leave, and get re-scored continuously.  This module adds the mutable
counterpart without touching the batch types:

* :class:`Mutation` — one of ``add`` / ``remove`` / ``update_score``, a
  frozen value object that round-trips through JSON exactly (the service
  journals them; the ``repro.mutations/v1`` stream stores them).
* :class:`MutablePopulation` — a columnar store with **stable integer
  worker ids** (ids survive removals; rows are swap-removed internally) and
  an append-only log of :class:`AppliedMutation` records that downstream
  consumers (the streaming atom state, the delta re-scorer) replay in
  O(Δ) instead of rebuilding from the full population.

Every mutation is validated *before* any state changes — a rejected
mutation (unknown id, duplicate id, non-finite or out-of-range score,
out-of-domain attribute value) raises
:class:`~repro.exceptions.MutationError` and leaves the population, its
log, and anything derived from them untouched.

Determinism contract: :meth:`MutablePopulation.to_population` materialises
workers in ascending-id order, so the frozen snapshot of a mutable
population is a pure function of its logical state, independent of the
internal slot order that swap-removal produces.  The streaming engine's
bit-identity guarantee is anchored on this.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

import numpy as np

from repro.core.attributes import CategoricalAttribute
from repro.core.histogram import HistogramSpec
from repro.core.population import Population
from repro.core.schema import WorkerSchema
from repro.exceptions import MetricError, MutationError, SchemaError
from repro.io.atomic import atomic_write_text
from repro.io.records import canonical_json, encode_record, scan_records

__all__ = [
    "MUTATIONS_SCHEMA",
    "Mutation",
    "AppliedMutation",
    "MutablePopulation",
    "write_mutation_stream",
    "read_mutation_stream",
    "random_mutation_mix",
]

#: Format tag of serialized mutation streams; bump on incompatible changes.
MUTATIONS_SCHEMA = "repro.mutations/v1"

#: The three mutation kinds of the streaming API.
MUTATION_KINDS = ("add", "remove", "update_score")


@dataclass(frozen=True)
class Mutation:
    """One population delta, as submitted by a client.

    ``add`` needs ``score`` and a complete ``protected`` mapping
    (``observed`` is optional, defaulting each attribute to its lower
    bound) and may carry an explicit ``worker_id`` (``None`` = let the
    population assign the next id).  ``remove`` needs ``worker_id``.
    ``update_score`` needs ``worker_id`` and ``score``.
    """

    kind: str
    worker_id: "int | None" = None
    score: "float | None" = None
    protected: "Mapping[str, Any] | None" = None
    observed: "Mapping[str, float] | None" = None

    def __post_init__(self) -> None:
        if self.kind not in MUTATION_KINDS:
            raise MutationError(
                f"unknown mutation kind {self.kind!r}; choose from {MUTATION_KINDS}"
            )
        if self.kind == "add":
            if self.score is None:
                raise MutationError("add mutation requires a score")
            if self.protected is None:
                raise MutationError("add mutation requires protected attribute values")
        else:
            if self.worker_id is None:
                raise MutationError(f"{self.kind} mutation requires a worker_id")
            if self.protected is not None or self.observed is not None:
                raise MutationError(
                    f"{self.kind} mutation must not carry attribute values"
                )
            if self.kind == "update_score" and self.score is None:
                raise MutationError("update_score mutation requires a score")
            if self.kind == "remove" and self.score is not None:
                raise MutationError("remove mutation must not carry a score")
        if self.worker_id is not None:
            if isinstance(self.worker_id, bool) or not isinstance(
                self.worker_id, (int, np.integer)
            ):
                raise MutationError(
                    f"worker_id must be an integer, got {self.worker_id!r}"
                )
            object.__setattr__(self, "worker_id", int(self.worker_id))

    # ------------------------------------------------------------- (de)serde

    def to_dict(self) -> dict:
        """JSON-safe record (``None`` fields omitted; exact round-trip)."""
        payload: dict = {"kind": self.kind}
        if self.worker_id is not None:
            payload["worker_id"] = int(self.worker_id)
        if self.score is not None:
            payload["score"] = float(self.score)
        if self.protected is not None:
            payload["protected"] = {
                str(k): (v if isinstance(v, str) else int(v))
                for k, v in self.protected.items()
            }
        if self.observed is not None:
            payload["observed"] = {
                str(k): float(v) for k, v in self.observed.items()
            }
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Mutation":
        """Rebuild from :meth:`to_dict` output; unknown keys rejected."""
        if not isinstance(payload, Mapping):
            raise MutationError(f"mutation record must be an object, got {payload!r}")
        fields = {f for f in cls.__dataclass_fields__}
        unknown = set(payload) - fields
        if unknown:
            raise MutationError(f"unknown Mutation fields: {sorted(unknown)}")
        if "kind" not in payload:
            raise MutationError("mutation record has no kind")
        return cls(**dict(payload))


@dataclass(frozen=True)
class AppliedMutation:
    """One mutation *after* application, enriched for O(Δ) consumers.

    ``codes`` is the worker's partition-code tuple (one code per protected
    attribute, in schema order) and ``bin`` its digitised score bin at
    application time — exactly what the streaming atom state needs to patch
    one count-cube cell without consulting the population.  For
    ``update_score``, ``old_bin`` carries the bin the score left.
    """

    seq: int
    kind: str
    worker_id: int
    codes: tuple[int, ...]
    bin: int
    old_bin: "int | None" = None
    mutation: "Mutation | None" = None


class MutablePopulation:
    """Columnar worker store with stable ids and an append-only mutation log.

    Rows live in dense arrays with capacity doubling; removal swaps the
    last row into the vacated slot, so every operation is O(1) amortised in
    the population size.  The logical identity of a worker is its integer
    id, never its slot.
    """

    def __init__(self, schema: WorkerSchema, hist_spec: "HistogramSpec | None" = None) -> None:
        self.schema = schema
        self.hist_spec = hist_spec or HistogramSpec()
        self._capacity = 8
        self._n = 0
        self._raw: dict[str, np.ndarray] = {
            attr.name: np.zeros(self._capacity, dtype=np.int64)
            for attr in schema.protected
        }
        self._codes: dict[str, np.ndarray] = {
            attr.name: np.zeros(self._capacity, dtype=np.int64)
            for attr in schema.protected
        }
        self._obs: dict[str, np.ndarray] = {
            attr.name: np.zeros(self._capacity, dtype=np.float64)
            for attr in schema.observed
        }
        self._scores = np.zeros(self._capacity, dtype=np.float64)
        self._bins = np.zeros(self._capacity, dtype=np.int64)
        self._ids = np.zeros(self._capacity, dtype=np.int64)
        self._id_slot: dict[int, int] = {}
        self._next_id = 0
        self._log: list[AppliedMutation] = []
        self._log_base = 0  # seq of the first retained log entry, minus one

    # ------------------------------------------------------------ constructors

    @classmethod
    def from_population(
        cls,
        population: Population,
        scores: np.ndarray,
        hist_spec: "HistogramSpec | None" = None,
        ids: "np.ndarray | None" = None,
    ) -> "MutablePopulation":
        """Seed a mutable population from a frozen one plus its scores.

        ``ids`` defaults to row numbers; explicit ids must be unique
        non-negative integers (duplicates raise
        :class:`~repro.exceptions.MutationError` — a duplicated id would
        silently double-count a worker in every derived histogram).
        """
        store = cls(population.schema, hist_spec)
        n = population.size
        scores = np.asarray(scores, dtype=np.float64)
        if scores.shape != (n,):
            raise MutationError(
                f"scores shape {scores.shape} does not match population size {n}"
            )
        if n and not np.all(np.isfinite(scores)):
            raise MutationError("scores contain non-finite values")
        if ids is None:
            ids = np.arange(n, dtype=np.int64)
        else:
            ids = np.asarray(ids, dtype=np.int64)
            if ids.shape != (n,):
                raise MutationError(
                    f"ids shape {ids.shape} does not match population size {n}"
                )
            if n and ids.min() < 0:
                raise MutationError("worker ids must be non-negative")
            if np.unique(ids).size != ids.size:
                raise MutationError("duplicate worker ids")
        store._reserve(n)
        store._n = n
        for attr in population.schema.protected:
            store._raw[attr.name][:n] = population.protected_column(attr.name)
            store._codes[attr.name][:n] = population.partition_codes(attr.name)
        for attr in population.schema.observed:
            store._obs[attr.name][:n] = population.observed_column(attr.name)
        store._scores[:n] = scores
        try:
            store._bins[:n] = store.hist_spec.bin_indices(scores)
        except MetricError as exc:
            raise MutationError(str(exc)) from exc
        store._ids[:n] = ids
        store._id_slot = {int(ids[i]): i for i in range(n)}
        store._next_id = int(ids.max()) + 1 if n else 0
        return store

    # ----------------------------------------------------------------- basics

    @property
    def size(self) -> int:
        """Number of live workers."""
        return self._n

    @property
    def version(self) -> int:
        """Number of mutations ever applied (the log's end sequence)."""
        return self._log_base + len(self._log)

    @property
    def next_id(self) -> int:
        """The id the next auto-assigned ``add`` will receive."""
        return self._next_id

    def __len__(self) -> int:
        return self._n

    def __contains__(self, worker_id: int) -> bool:
        return int(worker_id) in self._id_slot

    def __repr__(self) -> str:
        return (
            f"MutablePopulation(size={self._n}, version={self.version}, "
            f"protected={list(self.schema.protected_names)})"
        )

    def worker_ids(self) -> np.ndarray:
        """Ids of all live workers, ascending."""
        return np.sort(self._ids[: self._n])

    def score_of(self, worker_id: int) -> float:
        """Current score of one worker."""
        return float(self._scores[self._slot(worker_id)])

    # -------------------------------------------------------------- mutations

    def add(
        self,
        protected: Mapping[str, Any],
        score: float,
        observed: "Mapping[str, float] | None" = None,
        worker_id: "int | None" = None,
    ) -> AppliedMutation:
        """Add one worker; returns the applied-mutation record.

        All validation happens before any state changes.  Categorical
        values may be labels or codes; integer attributes take raw values.
        """
        mutation = Mutation(
            kind="add",
            worker_id=worker_id,
            score=score,
            protected=dict(protected),
            observed=dict(observed) if observed is not None else None,
        )
        return self.apply(mutation)

    def remove(self, worker_id: int) -> AppliedMutation:
        """Remove one worker by id (unknown ids raise ``MutationError``)."""
        return self.apply(Mutation(kind="remove", worker_id=worker_id))

    def update_score(self, worker_id: int, score: float) -> AppliedMutation:
        """Re-score one worker (unknown ids / bad scores raise)."""
        return self.apply(Mutation(kind="update_score", worker_id=worker_id, score=score))

    def apply(self, mutation: Mutation) -> AppliedMutation:
        """Validate and apply one mutation; append to the log; return it."""
        if mutation.kind == "add":
            applied = self._apply_add(mutation)
        elif mutation.kind == "remove":
            applied = self._apply_remove(mutation)
        else:
            applied = self._apply_update(mutation)
        self._log.append(applied)
        return applied

    def apply_all(self, mutations: Iterable[Mutation]) -> "list[AppliedMutation]":
        """Apply mutations in order, stopping at the first invalid one.

        The valid prefix stays applied; the offending mutation raises with
        its position so callers (the service) can report partial progress.
        """
        applied: list[AppliedMutation] = []
        for position, mutation in enumerate(mutations):
            try:
                applied.append(self.apply(mutation))
            except MutationError as exc:
                raise MutationError(
                    f"mutation {position} rejected after {len(applied)} applied: {exc}"
                ) from exc
        return applied

    # ---------------------------------------------------------- mutation guts

    def _apply_add(self, mutation: Mutation) -> AppliedMutation:
        protected = mutation.protected or {}
        missing = set(self.schema.protected_names) - set(protected)
        if missing:
            raise MutationError(f"add is missing protected values: {sorted(missing)}")
        extra = set(protected) - set(self.schema.protected_names)
        if extra:
            raise MutationError(f"add has undeclared protected values: {sorted(extra)}")
        observed = dict(mutation.observed or {})
        extra_obs = set(observed) - set(self.schema.observed_names)
        if extra_obs:
            raise MutationError(f"add has undeclared observed values: {sorted(extra_obs)}")

        raws: dict[str, int] = {}
        codes: dict[str, int] = {}
        for attr in self.schema.protected:
            value = protected[attr.name]
            try:
                if isinstance(attr, CategoricalAttribute) and isinstance(value, str):
                    raw = int(attr.encode([value])[0])
                else:
                    raw = int(value)
                code_arr = attr.partition_codes(np.asarray([raw], dtype=np.int64))
            except (SchemaError, TypeError, ValueError) as exc:
                raise MutationError(
                    f"bad value {value!r} for protected attribute {attr.name!r}: {exc}"
                ) from exc
            raws[attr.name] = raw
            codes[attr.name] = int(code_arr[0])
        obs_values: dict[str, float] = {}
        for attr in self.schema.observed:
            value = observed.get(attr.name, attr.low)
            try:
                attr.validate(np.asarray([value], dtype=np.float64))
            except (SchemaError, TypeError, ValueError) as exc:
                raise MutationError(
                    f"bad value {value!r} for observed attribute {attr.name!r}: {exc}"
                ) from exc
            obs_values[attr.name] = float(value)
        score = self._check_score(mutation.score)
        bin_ = int(self.hist_spec.bin_indices(np.asarray([score]))[0])

        worker_id = mutation.worker_id
        if worker_id is None:
            worker_id = self._next_id
        elif worker_id < 0:
            raise MutationError(f"worker id must be non-negative, got {worker_id}")
        elif worker_id in self._id_slot:
            raise MutationError(f"duplicate worker id {worker_id}")

        self._reserve(self._n + 1)
        slot = self._n
        for name, raw in raws.items():
            self._raw[name][slot] = raw
            self._codes[name][slot] = codes[name]
        for name, value in obs_values.items():
            self._obs[name][slot] = value
        self._scores[slot] = score
        self._bins[slot] = bin_
        self._ids[slot] = worker_id
        self._id_slot[worker_id] = slot
        self._n += 1
        self._next_id = max(self._next_id, worker_id + 1)
        return AppliedMutation(
            seq=self.version + 1,
            kind="add",
            worker_id=worker_id,
            codes=tuple(codes[name] for name in self.schema.protected_names),
            bin=bin_,
            mutation=mutation,
        )

    def _apply_remove(self, mutation: Mutation) -> AppliedMutation:
        worker_id = int(mutation.worker_id)  # type: ignore[arg-type]
        slot = self._slot(worker_id)
        codes = tuple(
            int(self._codes[name][slot]) for name in self.schema.protected_names
        )
        bin_ = int(self._bins[slot])
        last = self._n - 1
        if slot != last:
            # Swap-remove: the last row takes the vacated slot.
            for col in self._raw.values():
                col[slot] = col[last]
            for col in self._codes.values():
                col[slot] = col[last]
            for col in self._obs.values():
                col[slot] = col[last]
            self._scores[slot] = self._scores[last]
            self._bins[slot] = self._bins[last]
            moved_id = int(self._ids[last])
            self._ids[slot] = moved_id
            self._id_slot[moved_id] = slot
        del self._id_slot[worker_id]
        self._n = last
        return AppliedMutation(
            seq=self.version + 1,
            kind="remove",
            worker_id=worker_id,
            codes=codes,
            bin=bin_,
            mutation=mutation,
        )

    def _apply_update(self, mutation: Mutation) -> AppliedMutation:
        worker_id = int(mutation.worker_id)  # type: ignore[arg-type]
        slot = self._slot(worker_id)
        score = self._check_score(mutation.score)
        old_bin = int(self._bins[slot])
        new_bin = int(self.hist_spec.bin_indices(np.asarray([score]))[0])
        self._scores[slot] = score
        self._bins[slot] = new_bin
        return AppliedMutation(
            seq=self.version + 1,
            kind="update_score",
            worker_id=worker_id,
            codes=tuple(
                int(self._codes[name][slot]) for name in self.schema.protected_names
            ),
            bin=new_bin,
            old_bin=old_bin,
            mutation=mutation,
        )

    def _check_score(self, score: "float | None") -> float:
        try:
            value = float(score)  # type: ignore[arg-type]
        except (TypeError, ValueError) as exc:
            raise MutationError(f"score {score!r} is not a number") from exc
        if not np.isfinite(value):
            raise MutationError(f"score must be finite, got {value!r}")
        if not self.hist_spec.low <= value <= self.hist_spec.high:
            raise MutationError(
                f"score {value} outside histogram range "
                f"[{self.hist_spec.low}, {self.hist_spec.high}]"
            )
        return value

    def _slot(self, worker_id: int) -> int:
        try:
            return self._id_slot[int(worker_id)]
        except KeyError:
            raise MutationError(f"unknown worker id {worker_id}") from None

    def _reserve(self, needed: int) -> None:
        if needed <= self._capacity:
            return
        capacity = self._capacity
        while capacity < needed:
            capacity *= 2
        for cols in (self._raw, self._codes):
            for name in cols:
                grown = np.zeros(capacity, dtype=np.int64)
                grown[: self._n] = cols[name][: self._n]
                cols[name] = grown
        for name in self._obs:
            grown = np.zeros(capacity, dtype=np.float64)
            grown[: self._n] = self._obs[name][: self._n]
            self._obs[name] = grown
        for field in ("_scores", "_bins", "_ids"):
            old = getattr(self, field)
            grown = np.zeros(capacity, dtype=old.dtype)
            grown[: self._n] = old[: self._n]
            setattr(self, field, grown)
        self._capacity = capacity

    def partition_code_matrix(self) -> np.ndarray:
        """``(n, n_protected)`` partition codes of the live workers.

        Row order is internal slot order — callers that only *count* over
        it (the streaming atom state) are order-independent.
        """
        n = self._n
        return np.column_stack(
            [self._codes[name][:n] for name in self.schema.protected_names]
        ) if n else np.zeros((0, len(self.schema.protected_names)), dtype=np.int64)

    def bin_column(self) -> np.ndarray:
        """Digitised score bin of each live worker (slot order)."""
        return self._bins[: self._n].copy()

    # ------------------------------------------------------------ mutation log

    def log_since(self, seq: int) -> "list[AppliedMutation]":
        """Applied mutations with sequence number > ``seq``, in order.

        Raises if the requested history was already trimmed — a consumer
        that falls behind a trim must rebuild from current state instead of
        silently missing deltas.
        """
        if seq < self._log_base:
            raise MutationError(
                f"mutation log history before seq {self._log_base} was trimmed; "
                f"cannot replay from seq {seq}"
            )
        return self._log[seq - self._log_base :]

    def trim_log(self, upto_seq: int) -> None:
        """Drop log entries with sequence number ≤ ``upto_seq``."""
        upto_seq = min(upto_seq, self.version)
        if upto_seq <= self._log_base:
            return
        self._log = self._log[upto_seq - self._log_base :]
        self._log_base = upto_seq

    # ------------------------------------------------------------- snapshots

    def to_population(self) -> "tuple[Population, np.ndarray]":
        """Freeze current state as a batch ``(Population, scores)`` pair.

        Workers are materialised in ascending-id order, making the result a
        pure function of logical state (internal slot order — an artifact
        of swap-removal — never leaks).
        """
        n = self._n
        order = np.argsort(self._ids[:n])
        population = Population(
            self.schema,
            {name: col[:n][order] for name, col in self._raw.items()},
            {name: col[:n][order] for name, col in self._obs.items()},
        )
        return population, self._scores[:n][order].copy()

    def state_payload(self) -> dict:
        """JSON-safe columnar state, id-ordered (snapshot body).

        Floats serialise via ``repr`` shortest-round-trip, so a payload
        written and re-read reproduces every score bit-identically.
        """
        n = self._n
        order = np.argsort(self._ids[:n])
        return {
            "ids": [int(v) for v in self._ids[:n][order]],
            "protected": {
                name: [int(v) for v in col[:n][order]]
                for name, col in self._raw.items()
            },
            "observed": {
                name: [float(v) for v in col[:n][order]]
                for name, col in self._obs.items()
            },
            "scores": [float(v) for v in self._scores[:n][order]],
            "next_id": self._next_id,
            "version": self.version,
        }

    @classmethod
    def from_state_payload(
        cls,
        schema: WorkerSchema,
        payload: Mapping[str, Any],
        hist_spec: "HistogramSpec | None" = None,
    ) -> "MutablePopulation":
        """Rebuild from :meth:`state_payload` output (snapshot restore)."""
        try:
            ids = np.asarray(payload["ids"], dtype=np.int64)
            population = Population(
                schema,
                {
                    name: np.asarray(col, dtype=np.int64)
                    for name, col in payload["protected"].items()
                },
                {
                    name: np.asarray(col, dtype=np.float64)
                    for name, col in payload["observed"].items()
                },
            )
            scores = np.asarray(payload["scores"], dtype=np.float64)
        except (KeyError, TypeError, ValueError) as exc:
            raise MutationError(f"malformed population state payload: {exc}") from exc
        store = cls.from_population(population, scores, hist_spec, ids=ids)
        store._next_id = max(store._next_id, int(payload.get("next_id", 0)))
        version = int(payload.get("version", 0))
        store._log_base = version
        return store

    def state_digest(self) -> str:
        """SHA-256 over the canonical JSON of the id-ordered state.

        Two mutable populations with the same logical state produce the
        same digest regardless of mutation history or slot order — the
        integrity check snapshots store and ``verify-snapshot`` recomputes.
        """
        payload = self.state_payload()
        payload.pop("version", None)  # same state via different histories digests equal
        body = canonical_json(payload)
        return hashlib.sha256(body.encode("utf-8")).hexdigest()


# ------------------------------------------------------------------ streams


def write_mutation_stream(path: "str | Path", mutations: Iterable[Mutation]) -> int:
    """Write a ``repro.mutations/v1`` record stream (atomic); returns count."""
    lines = [encode_record({"type": "header", "schema": MUTATIONS_SCHEMA})]
    count = 0
    for mutation in mutations:
        lines.append(encode_record({"type": "mutation", "mutation": mutation.to_dict()}))
        count += 1
    atomic_write_text(Path(path), "\n".join(lines) + "\n")
    return count


def read_mutation_stream(path: "str | Path") -> "list[Mutation]":
    """Read a ``repro.mutations/v1`` stream; schema-gated, CRC-verified."""
    path = Path(path)
    if not path.exists():
        raise MutationError(f"no mutation stream at {path}")
    records, _, torn = scan_records(path, error=MutationError)
    if torn:
        raise MutationError(f"mutation stream {path} has a torn tail")
    if not records or records[0].get("type") != "header":
        raise MutationError(f"mutation stream {path} has no header record")
    if records[0].get("schema") != MUTATIONS_SCHEMA:
        raise MutationError(
            f"mutation stream {path} has schema {records[0].get('schema')!r}; "
            f"this build reads {MUTATIONS_SCHEMA!r}"
        )
    mutations: list[Mutation] = []
    for record in records[1:]:
        if record.get("type") != "mutation":
            raise MutationError(
                f"unexpected record type {record.get('type')!r} in mutation stream"
            )
        mutations.append(Mutation.from_dict(record.get("mutation", {})))
    return mutations


def random_mutation_mix(
    store: MutablePopulation,
    rng: np.random.Generator,
    count: int,
    *,
    weights: "tuple[float, float, float]" = (0.3, 0.2, 0.5),
) -> "list[Mutation]":
    """A seeded, applicable mix of add/remove/update mutations.

    Generated *without* touching ``store``: the helper tracks the id set it
    implies, so the returned list applies cleanly in order (benchmarks, the
    CI smoke test, and property tests all share this generator).  Adds
    carry explicit ids so the stream is self-contained.
    """
    schema = store.schema
    spec = store.hist_spec
    ids = [int(v) for v in store.worker_ids()]
    next_id = store.next_id
    mutations: list[Mutation] = []
    kinds = np.asarray(MUTATION_KINDS)
    probs = np.asarray(weights, dtype=np.float64)
    probs = probs / probs.sum()
    for _ in range(count):
        kind = str(rng.choice(kinds, p=probs)) if ids else "add"
        if kind == "add":
            protected = {}
            for attr in schema.protected:
                if isinstance(attr, CategoricalAttribute):
                    protected[attr.name] = int(rng.integers(attr.cardinality))
                else:
                    protected[attr.name] = int(rng.integers(attr.low, attr.high + 1))
            observed = {
                attr.name: float(rng.uniform(attr.low, attr.high))
                for attr in schema.observed
            }
            mutations.append(
                Mutation(
                    kind="add",
                    worker_id=next_id,
                    score=float(rng.uniform(spec.low, spec.high)),
                    protected=protected,
                    observed=observed,
                )
            )
            ids.append(next_id)
            next_id += 1
        elif kind == "remove":
            victim = ids.pop(int(rng.integers(len(ids))))
            mutations.append(Mutation(kind="remove", worker_id=victim))
        else:
            target = ids[int(rng.integers(len(ids)))]
            mutations.append(
                Mutation(
                    kind="update_score",
                    worker_id=target,
                    score=float(rng.uniform(spec.low, spec.high)),
                )
            )
    return mutations
