"""Exposure metrics over rankings.

The paper positions its histogram-distance view of unfairness against
exposure-based work (Singh & Joachims, "Fairness of Exposure in Rankings",
reference [8]).  This module implements the standard position-bias exposure
model so the two views can be compared on the same simulated rankings:

* a worker at rank ``r`` (0-based) receives exposure ``1 / log2(r + 2)``
  (the DCG discount);
* a group's exposure is the mean exposure of its members;
* disparity is the ratio of the min and max group exposures (1 = parity).
"""

from __future__ import annotations

import numpy as np

from repro.core.attributes import CategoricalAttribute
from repro.core.population import Population
from repro.exceptions import ScoringError
from repro.marketplace.ranking import Ranking

__all__ = [
    "position_exposure",
    "group_exposure",
    "exposure_disparity",
    "top_k_representation",
]


def position_exposure(n: int) -> np.ndarray:
    """Exposure of each rank position 0..n-1 under the DCG discount."""
    if n < 0:
        raise ScoringError(f"ranking length must be non-negative, got {n}")
    return 1.0 / np.log2(np.arange(n, dtype=np.float64) + 2.0)


def group_exposure(
    ranking: Ranking, population: Population, attribute: str
) -> dict[str, float]:
    """Mean exposure per value of one protected attribute.

    Integer attributes are grouped by their partition buckets.
    """
    attr = population.schema.protected_attribute(attribute)
    codes = population.partition_codes(attribute)
    # Workers outside the ranking (filtered out by task requirements)
    # receive zero exposure: they were never shown.
    exposures = np.zeros(population.size, dtype=np.float64)
    exposures[ranking.order] = position_exposure(ranking.size)
    out: dict[str, float] = {}
    for code in np.unique(codes):
        label = (
            attr.code_label(int(code))
            if isinstance(attr, CategoricalAttribute)
            else f"[{attr.code_label(int(code))}]"
        )
        out[label] = float(exposures[codes == code].mean())
    return out


def exposure_disparity(
    ranking: Ranking, population: Population, attribute: str
) -> float:
    """Min/max ratio of group exposures for one attribute (1.0 = parity)."""
    exposures = group_exposure(ranking, population, attribute)
    values = list(exposures.values())
    top = max(values)
    if top == 0.0:
        return 1.0
    return min(values) / top


def top_k_representation(
    ranking: Ranking, population: Population, attribute: str, k: int
) -> dict[str, float]:
    """Share of the top-k ranks held by each group vs its population share.

    Returns, per group label, the ratio (share of top-k) / (share of
    population); 1.0 means proportional representation, 0.0 means shut out.
    """
    if k < 1:
        raise ScoringError(f"k must be >= 1, got {k}")
    attr = population.schema.protected_attribute(attribute)
    codes = population.partition_codes(attribute)
    top_codes = codes[ranking.top_k(k)]
    out: dict[str, float] = {}
    for code in np.unique(codes):
        label = (
            attr.code_label(int(code))
            if isinstance(attr, CategoricalAttribute)
            else f"[{attr.code_label(int(code))}]"
        )
        population_share = float((codes == code).mean())
        top_share = float((top_codes == code).mean()) if k else 0.0
        out[label] = top_share / population_share if population_share else 0.0
    return out
