"""Worker schema: the set of protected and observed attributes of a population.

A :class:`WorkerSchema` is the static description of the data a marketplace
holds about its workers.  It is shared by the population store, the
generators, the scoring functions and the partitioning algorithms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.attributes import ObservedAttribute, ProtectedAttribute
from repro.exceptions import SchemaError

__all__ = ["WorkerSchema"]


@dataclass(frozen=True)
class WorkerSchema:
    """The attribute layout of a worker population.

    Parameters
    ----------
    protected:
        Protected attribute specs (categorical or bucketised integer).
        These define the partitioning search space.
    observed:
        Observed (skill) attribute specs.  Scoring functions combine these.
    """

    protected: tuple[ProtectedAttribute, ...]
    observed: tuple[ObservedAttribute, ...]

    def __post_init__(self) -> None:
        if not self.protected:
            raise SchemaError("a worker schema needs at least one protected attribute")
        if not self.observed:
            raise SchemaError("a worker schema needs at least one observed attribute")
        names = [a.name for a in self.protected] + [b.name for b in self.observed]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema: {sorted(names)}")

    @property
    def protected_names(self) -> tuple[str, ...]:
        """Names of the protected attributes, in declaration order."""
        return tuple(a.name for a in self.protected)

    @property
    def observed_names(self) -> tuple[str, ...]:
        """Names of the observed attributes, in declaration order."""
        return tuple(b.name for b in self.observed)

    def protected_attribute(self, name: str) -> ProtectedAttribute:
        """Look up a protected attribute spec by name."""
        for attr in self.protected:
            if attr.name == name:
                return attr
        raise SchemaError(f"no protected attribute named {name!r} in schema")

    def observed_attribute(self, name: str) -> ObservedAttribute:
        """Look up an observed attribute spec by name."""
        for attr in self.observed:
            if attr.name == name:
                return attr
        raise SchemaError(f"no observed attribute named {name!r} in schema")

    def search_space_size(self) -> int:
        """Number of cells in the full cross-product of protected partition codes.

        This bounds the size of the ``all-attributes`` partitioning and gives
        a feel for why exhaustive enumeration is intractable.
        """
        size = 1
        for attr in self.protected:
            size *= attr.cardinality
        return size
