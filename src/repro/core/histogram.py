"""Score histograms.

The paper quantifies unfairness through histograms of the scores each
partition receives: "we generate a histogram for each partition ... by
creating equal bins over the range of f and counting the number of workers
whose function values f(w) fall in each bin".

:class:`HistogramSpec` captures the binning (range of ``f`` and bin count);
the hot path used by the algorithms pre-digitises all scores once and builds
per-partition histograms with ``bincount`` over index arrays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import MetricError

__all__ = ["HistogramSpec"]


@dataclass(frozen=True)
class HistogramSpec:
    """Equal-width binning over the range of a scoring function.

    Parameters
    ----------
    bins:
        Number of equal-width bins (default 10, i.e. deciles of [0, 1]).
    low, high:
        Range of the scoring function.  Scores exactly equal to ``high``
        fall into the last bin.
    """

    bins: int = 10
    low: float = 0.0
    high: float = 1.0

    def __post_init__(self) -> None:
        if self.bins < 1:
            raise MetricError(f"histogram needs at least one bin, got {self.bins}")
        if not self.high > self.low:
            raise MetricError(
                f"histogram range is empty: low={self.low}, high={self.high}"
            )

    @property
    def bin_width(self) -> float:
        """Width of one bin in score units (the EMD ground-distance unit)."""
        return (self.high - self.low) / self.bins

    @property
    def edges(self) -> np.ndarray:
        """``bins + 1`` bin edges."""
        return np.linspace(self.low, self.high, self.bins + 1)

    @property
    def centers(self) -> np.ndarray:
        """Bin centers, useful for plotting and for moment computations."""
        edges = self.edges
        return (edges[:-1] + edges[1:]) / 2.0

    def bin_indices(self, scores: np.ndarray) -> np.ndarray:
        """Bin index of every score; scores == high land in the last bin.

        This is the one-off precomputation the partitioning algorithms rely
        on: once every worker has a bin index, the histogram of any partition
        is a ``bincount`` over its member rows.
        """
        scores = np.asarray(scores, dtype=np.float64)
        if scores.size and not np.all(np.isfinite(scores)):
            raise MetricError("scores contain non-finite values")
        if scores.size and (scores.min() < self.low or scores.max() > self.high):
            raise MetricError(
                f"scores must lie in [{self.low}, {self.high}], "
                f"found range [{scores.min()}, {scores.max()}]"
            )
        idx = np.floor((scores - self.low) / self.bin_width).astype(np.int64)
        return np.minimum(idx, self.bins - 1)

    def histogram(self, scores: np.ndarray) -> np.ndarray:
        """Raw counts per bin for a vector of scores."""
        return np.bincount(self.bin_indices(scores), minlength=self.bins).astype(np.int64)

    def normalized_histogram(self, scores: np.ndarray) -> np.ndarray:
        """Probability-mass histogram (counts / total).

        Raises :class:`MetricError` on an empty score vector: the paper's
        unfairness measure is undefined for empty partitions, which the
        partitioning layer therefore drops before reaching here.
        """
        counts = self.histogram(scores)
        total = counts.sum()
        if total == 0:
            raise MetricError("cannot normalise the histogram of an empty partition")
        return counts / total

    def histogram_from_bin_indices(self, bin_idx: np.ndarray) -> np.ndarray:
        """Counts per bin from pre-digitised scores (hot path)."""
        return np.bincount(bin_idx, minlength=self.bins).astype(np.int64)
