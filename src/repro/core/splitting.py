"""Splitting machinery: ``split`` and ``worstAttribute`` from the paper.

``split(W, a)`` partitions a group of workers by the partition codes of
protected attribute ``a`` (one child per non-empty code).

``worstAttribute(W, f, A)`` tries every remaining attribute, splits on it,
and returns the attribute whose induced partitioning exhibits the *highest*
average pairwise distance — "worst" in the sense of most unfair.  The paper
likens this local choice to the gain functions used to grow decision trees.

Two variants exist because the two algorithms ask the question at different
scopes: :func:`worst_attribute` splits *every* current partition on the
candidate (Algorithm 1, ``balanced``); :func:`worst_attribute_local` splits a
single partition and scores its children against the partition's siblings
(Algorithm 2, ``unbalanced``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.partition import Partition
from repro.core.population import Population
from repro.core.unfairness import UnfairnessEvaluator
from repro.exceptions import PartitioningError

__all__ = [
    "split_partition",
    "split_partitions",
    "worst_attribute",
    "worst_attribute_local",
    "AttributeChoice",
]


def split_partition(
    population: Population, partition: Partition, attribute: str
) -> list[Partition]:
    """Split one partition on one protected attribute.

    Returns the non-empty children, ordered by partition code.  Each child
    extends the parent's constraint path with ``(attribute, code)``.  A
    partition whose members all share one code yields a single child with
    the same member set.
    """
    if attribute in partition.constrained_attributes():
        raise PartitioningError(
            f"partition is already constrained on attribute {attribute!r}"
        )
    codes = population.partition_codes(attribute)[partition.indices]
    children = []
    for code in np.unique(codes):
        members = partition.indices[codes == code]
        children.append(
            Partition(members, partition.constraints + ((attribute, int(code)),))
        )
    return children


def split_partitions(
    population: Population, partitions: Sequence[Partition], attribute: str
) -> list[Partition]:
    """Split every partition in a set on the same attribute (balanced step)."""
    out: list[Partition] = []
    for partition in partitions:
        out.extend(split_partition(population, partition, attribute))
    return out


@dataclass(frozen=True)
class AttributeChoice:
    """Outcome of a ``worstAttribute`` evaluation.

    Attributes
    ----------
    attribute:
        The chosen (worst) attribute.
    children:
        The partitioning obtained by splitting on it (already computed, so
        callers never re-split).
    score:
        The average pairwise distance that partitioning exhibits.
    """

    attribute: str
    children: list[Partition]
    score: float


def worst_attribute(
    population: Population,
    partitions: Sequence[Partition],
    candidates: Sequence[str],
    evaluator: UnfairnessEvaluator,
) -> AttributeChoice:
    """The globally worst attribute: splitting all partitions on it maximises
    the average pairwise distance of the resulting partitioning.

    Ties are broken in candidate order, making runs deterministic.
    """
    if not candidates:
        raise PartitioningError("worst_attribute called with no candidate attributes")
    best: AttributeChoice | None = None
    for attribute in candidates:
        children = split_partitions(population, partitions, attribute)
        score = evaluator.unfairness(children)
        if best is None or score > best.score:
            best = AttributeChoice(attribute, children, score)
    assert best is not None
    return best


def worst_attribute_local(
    population: Population,
    partition: Partition,
    siblings: Sequence[Partition],
    candidates: Sequence[str],
    evaluator: UnfairnessEvaluator,
    cross_only: bool = False,
) -> AttributeChoice:
    """The locally worst attribute for a single partition.

    Each candidate is scored by the average distance the partition's children
    would exhibit next to the partition's ``siblings`` — by default over the
    union ``children ∪ siblings`` (see DESIGN.md §2.4), or children-vs-siblings
    pairs only when ``cross_only`` is set.
    """
    if not candidates:
        raise PartitioningError("worst_attribute_local called with no candidates")
    best: AttributeChoice | None = None
    for attribute in candidates:
        children = split_partition(population, partition, attribute)
        if cross_only:
            score = evaluator.cross_average(children, siblings)
        else:
            score = evaluator.union_average(children, siblings)
        if best is None or score > best.score:
            best = AttributeChoice(attribute, children, score)
    assert best is not None
    return best
