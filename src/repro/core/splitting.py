"""Splitting machinery: ``split`` and ``worstAttribute`` from the paper.

``split(W, a)`` partitions a group of workers by the partition codes of
protected attribute ``a`` (one child per non-empty code).

``worstAttribute(W, f, A)`` tries every remaining attribute, splits on it,
and returns the attribute whose induced partitioning exhibits the *highest*
average pairwise distance — "worst" in the sense of most unfair.  The paper
likens this local choice to the gain functions used to grow decision trees.

Two variants exist because the two algorithms ask the question at different
scopes: :func:`worst_attribute` splits *every* current partition on the
candidate (Algorithm 1, ``balanced``); :func:`worst_attribute_local` splits a
single partition and scores its children against the partition's siblings
(Algorithm 2, ``unbalanced``).

Both accept any evaluator implementing the query protocol —
``unfairness`` / ``union_average`` / ``cross_average`` — i.e. either the
reference :class:`~repro.core.unfairness.UnfairnessEvaluator` or the
:class:`~repro.engine.engine.EvaluationEngine`.  When the evaluator exposes
the engine's batch/incremental extensions (``score_many``, ``incremental``),
the candidate scoring fans out through the execution backend and reuses the
sibling-sibling pair sums across candidates; otherwise it falls back to one
query per candidate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np

from repro.core.partition import Partition
from repro.core.population import Population
from repro.exceptions import PartitioningError

__all__ = [
    "split_partition",
    "split_partitions",
    "worst_attribute",
    "worst_attribute_local",
    "AttributeChoice",
    "ObjectiveEvaluator",
]


class ObjectiveEvaluator(Protocol):
    """Query protocol shared by ``UnfairnessEvaluator`` and the engine."""

    def unfairness(self, partitioning: Sequence[Partition]) -> float: ...

    def union_average(
        self, group: Sequence[Partition], siblings: Sequence[Partition]
    ) -> float: ...

    def cross_average(
        self, group: Sequence[Partition], siblings: Sequence[Partition]
    ) -> float: ...


def split_partition(
    population: Population, partition: Partition, attribute: str
) -> list[Partition]:
    """Split one partition on one protected attribute.

    Returns the non-empty children, ordered by partition code.  Each child
    extends the parent's constraint path with ``(attribute, code)``.  A
    partition whose members all share one code yields a single child with
    the same member set.
    """
    if attribute in partition.constrained_attributes():
        raise PartitioningError(
            f"partition is already constrained on attribute {attribute!r}"
        )
    codes = population.partition_codes(attribute)[partition.indices]
    children = []
    for code in np.unique(codes):
        members = partition.indices[codes == code]
        children.append(
            Partition(members, partition.constraints + ((attribute, int(code)),))
        )
    return children


def split_partitions(
    population: Population, partitions: Sequence[Partition], attribute: str
) -> list[Partition]:
    """Split every partition in a set on the same attribute (balanced step)."""
    out: list[Partition] = []
    for partition in partitions:
        out.extend(split_partition(population, partition, attribute))
    return out


@dataclass(frozen=True)
class AttributeChoice:
    """Outcome of a ``worstAttribute`` evaluation.

    Attributes
    ----------
    attribute:
        The chosen (worst) attribute.
    children:
        The partitioning obtained by splitting on it (already computed, so
        callers never re-split).
    score:
        The average pairwise distance that partitioning exhibits.
    """

    attribute: str
    children: list[Partition]
    score: float


def worst_attribute(
    population: Population,
    partitions: Sequence[Partition],
    candidates: Sequence[str],
    evaluator: ObjectiveEvaluator,
) -> AttributeChoice:
    """The globally worst attribute: splitting all partitions on it maximises
    the average pairwise distance of the resulting partitioning.

    Ties are broken in candidate order, making runs deterministic.
    """
    if not candidates:
        raise PartitioningError("worst_attribute called with no candidate attributes")
    atom_scores = getattr(evaluator, "score_attribute_splits", None)
    if atom_scores is not None:
        scores = atom_scores(partitions, candidates)
        if scores is not None:
            # Atom path: every candidate was scored as a grouped aggregation
            # over the atom table; only the winner's children are ever
            # materialised as member arrays.
            best_i = 0
            for i in range(1, len(candidates)):
                if scores[i] > scores[best_i]:
                    best_i = i
            children = split_partitions(population, partitions, candidates[best_i])
            return AttributeChoice(candidates[best_i], children, scores[best_i])
    children_per_candidate = [
        split_partitions(population, partitions, attribute) for attribute in candidates
    ]
    score_many = getattr(evaluator, "score_many", None)
    if score_many is not None:
        scores = score_many(children_per_candidate)
    else:
        scores = [evaluator.unfairness(children) for children in children_per_candidate]
    best: AttributeChoice | None = None
    for attribute, children, score in zip(candidates, children_per_candidate, scores):
        if best is None or score > best.score:
            best = AttributeChoice(attribute, children, score)
    assert best is not None
    return best


def worst_attribute_local(
    population: Population,
    partition: Partition,
    siblings: Sequence[Partition],
    candidates: Sequence[str],
    evaluator: ObjectiveEvaluator,
    cross_only: bool = False,
    tracker: "object | None" = None,
) -> AttributeChoice:
    """The locally worst attribute for a single partition.

    Each candidate is scored by the average distance the partition's children
    would exhibit next to the partition's ``siblings`` — by default over the
    union ``children ∪ siblings`` (see DESIGN.md §2.4), or children-vs-siblings
    pairs only when ``cross_only`` is set.

    ``tracker`` is an incremental objective already seeded with ``siblings``
    (from ``evaluator.incremental(siblings)``); passing the one that scored
    the un-split partition keeps keep-vs-split comparisons in a single
    arithmetic path.
    """
    if not candidates:
        raise PartitioningError("worst_attribute_local called with no candidates")
    incremental = tracker
    if incremental is None and not cross_only:
        factory = getattr(evaluator, "incremental", None)
        if factory is not None:
            # Seed the tracker with the fixed siblings once: every candidate
            # then only pays for its children-vs-siblings block.
            incremental = factory(siblings)
    if (
        incremental is not None
        and not cross_only
        and hasattr(incremental, "score_add_pmfs")
    ):
        split_pmfs = getattr(evaluator, "split_pmfs", None)
        if split_pmfs is not None:
            stacks = split_pmfs(partition, candidates)
            if stacks is not None:
                # Atom path: candidate children are scored straight from
                # their histogram stacks; only the winner is materialised.
                best_i, best_score = 0, None
                for i, (pmfs, weights) in enumerate(stacks):
                    score = incremental.score_add_pmfs(pmfs, weights)
                    if best_score is None or score > best_score:
                        best_i, best_score = i, score
                children = split_partition(population, partition, candidates[best_i])
                assert best_score is not None
                return AttributeChoice(candidates[best_i], children, best_score)
    best: AttributeChoice | None = None
    for attribute in candidates:
        children = split_partition(population, partition, attribute)
        if cross_only:
            score = evaluator.cross_average(children, siblings)
        elif incremental is not None:
            score = incremental.score_add(children)
        else:
            score = evaluator.union_average(children, siblings)
        if best is None or score > best.score:
            best = AttributeChoice(attribute, children, score)
    assert best is not None
    return best
