"""The paper's optimisation objective: average pairwise histogram distance.

Definition 2 (Average Pairwise Unfairness):

    unfairness(P, f) = avg_{i<j} EMD( h(p_i, f), h(p_j, f) )

:class:`UnfairnessEvaluator` binds together a population, a score vector, a
histogram spec and a distance metric, and serves every unfairness query the
search algorithms make.  It pre-digitises all scores once, caches one
histogram per partition object, and counts partitioning evaluations (the
search-effort unit reported in results and budgeted by the exhaustive
algorithm).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.histogram import HistogramSpec
from repro.core.partition import Partition, Partitioning
from repro.core.population import Population
from repro.exceptions import PartitioningError
from repro.metrics.base import HistogramDistance, get_metric

__all__ = ["UnfairnessEvaluator", "unfairness"]


class UnfairnessEvaluator:
    """Evaluates average pairwise unfairness of partitionings of one population.

    Parameters
    ----------
    population:
        The shared worker store partitions index into.
    scores:
        The scoring function's value for every worker, inside the histogram
        spec's [low, high] range.
    hist_spec:
        Binning of the score range (paper default: equal bins over the range
        of f; we default to 10 bins over [0, 1]).
    metric:
        A registered metric name or a
        :class:`~repro.metrics.base.HistogramDistance` instance.
        Default: the paper's EMD in score units.
    weighting:
        ``"uniform"`` (the paper's Definition 2: every pair of partitions
        counts equally) or ``"size"`` (pair {i, j} weighted by
        ``|p_i| * |p_j|`` — large groups matter more, which damps the
        small-cell sampling noise that dominates the uniform objective on
        deep partitionings of random data).
    """

    def __init__(
        self,
        population: Population,
        scores: np.ndarray,
        hist_spec: HistogramSpec | None = None,
        metric: "str | HistogramDistance" = "emd",
        weighting: str = "uniform",
    ) -> None:
        self.population = population
        self.spec = hist_spec or HistogramSpec()
        self.metric = get_metric(metric)
        if weighting not in ("uniform", "size"):
            raise PartitioningError(
                f"weighting must be 'uniform' or 'size', got {weighting!r}"
            )
        self.weighting = weighting
        scores = np.asarray(scores, dtype=np.float64)
        if scores.shape != (population.size,):
            raise PartitioningError(
                f"scores have shape {scores.shape}, expected ({population.size},)"
            )
        self.scores = scores
        self._bin_idx = self.spec.bin_indices(scores)
        self._pmf_cache: dict[Partition, np.ndarray] = {}
        #: Number of partitioning evaluations served so far (search effort).
        self.n_evaluations = 0

    # ----------------------------------------------------------- histograms

    def pmf(self, partition: Partition) -> np.ndarray:
        """Normalised score histogram of one partition (cached per object)."""
        cached = self._pmf_cache.get(partition)
        if cached is None:
            counts = self.spec.histogram_from_bin_indices(self._bin_idx[partition.indices])
            cached = counts / partition.size
            cached.setflags(write=False)
            self._pmf_cache[partition] = cached
        return cached

    def pmf_matrix(self, partitions: Sequence[Partition]) -> np.ndarray:
        """Stacked (k, bins) matrix of normalised histograms."""
        if not partitions:
            return np.zeros((0, self.spec.bins), dtype=np.float64)
        return np.vstack([self.pmf(p) for p in partitions])

    # ----------------------------------------------------------- objectives

    def unfairness(self, partitioning: "Partitioning | Sequence[Partition]") -> float:
        """Average pairwise distance between all partition histograms.

        This is the paper's ``averageEMD`` over a set of partitions; it
        returns 0.0 when there are fewer than two partitions.
        """
        partitions = list(partitioning)
        self.n_evaluations += 1
        if len(partitions) < 2:
            return 0.0
        weights = None
        if self.weighting == "size":
            weights = np.array([p.size for p in partitions], dtype=np.float64)
        return self.metric.average_pairwise(
            self.pmf_matrix(partitions), self.spec, weights
        )

    def union_average(
        self, group: Sequence[Partition], siblings: Sequence[Partition]
    ) -> float:
        """Average pairwise distance over ``group ∪ siblings``.

        This is our reading of Algorithm 2's two-argument
        ``averageEMD(X, S, f)``: the unfairness the overall partitioning
        would exhibit locally if ``group`` stood next to ``siblings``.
        """
        return self.unfairness(list(group) + list(siblings))

    def cross_average(
        self, group: Sequence[Partition], siblings: Sequence[Partition]
    ) -> float:
        """Average distance over pairs (g, s) with g in group, s in siblings.

        The alternative reading of ``averageEMD(X, S, f)`` (no within-set
        pairs); exposed for the stopping-condition ablation.
        """
        self.n_evaluations += 1
        group = list(group)
        siblings = list(siblings)
        if not group or not siblings:
            return 0.0
        return self.metric.average_cross(
            self.pmf_matrix(group), self.pmf_matrix(siblings), self.spec
        )

    def pairwise_matrix(self, partitions: Sequence[Partition]) -> np.ndarray:
        """Dense matrix of pairwise distances, for reporting and analysis."""
        # The engine's kernels vectorise every registered metric (not just
        # EMD); lazy import keeps core free of an engine dependency at load.
        from repro.engine.kernels import pairwise_matrix

        return pairwise_matrix(self.metric, self.pmf_matrix(list(partitions)), self.spec)


def unfairness(
    population: Population,
    scores: np.ndarray,
    partitioning: "Partitioning | Sequence[Partition]",
    hist_spec: HistogramSpec | None = None,
    metric: "str | HistogramDistance" = "emd",
    weighting: str = "uniform",
) -> float:
    """One-shot convenience wrapper around :class:`UnfairnessEvaluator`."""
    evaluator = UnfairnessEvaluator(population, scores, hist_spec, metric, weighting)
    return evaluator.unfairness(partitioning)
