"""Attribute specifications for workers in an online job marketplace.

The paper distinguishes two families of worker attributes:

* **Protected attributes** (gender, country, year of birth, language,
  ethnicity, years of experience) — inherent properties on which the
  partitioning search operates.  Each protected attribute exposes a small
  finite set of *partition codes*: categorical attributes use one code per
  value, numeric attributes are discretised into at most a handful of
  equal-width buckets (the paper ran its exhaustive baseline with "each
  attribute [having] only a maximum of 5 values").
* **Observed attributes** (language-test score, approval rate) — the skill
  signals a scoring function combines into a qualification score in [0, 1].

Attribute specs are immutable value objects; populations store raw column
data and delegate encoding/labelling to the specs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import SchemaError

__all__ = [
    "CategoricalAttribute",
    "IntegerAttribute",
    "ObservedAttribute",
    "ProtectedAttribute",
]


@dataclass(frozen=True)
class CategoricalAttribute:
    """A protected attribute with an explicit finite set of string values.

    Parameters
    ----------
    name:
        Attribute name, e.g. ``"gender"``.
    values:
        Ordered tuple of distinct value labels.  The position of a label is
        its integer *code*; populations store codes, not labels.
    """

    name: str
    values: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if len(self.values) < 2:
            raise SchemaError(
                f"categorical attribute {self.name!r} needs at least 2 values, "
                f"got {len(self.values)}"
            )
        if len(set(self.values)) != len(self.values):
            raise SchemaError(f"categorical attribute {self.name!r} has duplicate values")

    @property
    def cardinality(self) -> int:
        """Number of partition codes (= number of values)."""
        return len(self.values)

    def encode(self, labels: "list[str] | np.ndarray") -> np.ndarray:
        """Map value labels to integer codes.

        Raises :class:`SchemaError` if any label is outside the domain.
        """
        index = {v: i for i, v in enumerate(self.values)}
        try:
            return np.asarray([index[str(v)] for v in labels], dtype=np.int64)
        except KeyError as exc:
            raise SchemaError(
                f"value {exc.args[0]!r} is not in the domain of attribute {self.name!r}"
            ) from exc

    def decode(self, codes: np.ndarray) -> list[str]:
        """Map integer codes back to value labels."""
        self.validate_codes(codes)
        return [self.values[int(c)] for c in codes]

    def partition_codes(self, raw: np.ndarray) -> np.ndarray:
        """Partition code of each row.  For categoricals, raw values *are* codes."""
        self.validate_codes(raw)
        return np.asarray(raw, dtype=np.int64)

    def code_label(self, code: int) -> str:
        """Human-readable label for one partition code."""
        if not 0 <= code < self.cardinality:
            raise SchemaError(f"code {code} out of range for attribute {self.name!r}")
        return self.values[code]

    def validate_codes(self, raw: np.ndarray) -> None:
        """Check that every stored value is a legal code for this attribute."""
        raw = np.asarray(raw)
        if raw.size and (raw.min() < 0 or raw.max() >= self.cardinality):
            raise SchemaError(
                f"attribute {self.name!r}: codes must lie in [0, {self.cardinality}), "
                f"found range [{raw.min()}, {raw.max()}]"
            )


@dataclass(frozen=True)
class IntegerAttribute:
    """A protected attribute with an integer range, e.g. Year of Birth ∈ [1950, 2009].

    For partitioning, the range is discretised into ``buckets`` equal-width
    intervals.  The raw integer values remain available on the population;
    only the partitioning machinery sees bucket codes.
    """

    name: str
    low: int
    high: int
    buckets: int = 5

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if self.high <= self.low:
            raise SchemaError(
                f"integer attribute {self.name!r}: high ({self.high}) must exceed low ({self.low})"
            )
        span = self.high - self.low + 1
        if not 2 <= self.buckets <= span:
            raise SchemaError(
                f"integer attribute {self.name!r}: buckets must be in [2, {span}], got {self.buckets}"
            )

    @property
    def cardinality(self) -> int:
        """Number of partition codes (= number of buckets)."""
        return self.buckets

    @property
    def bucket_edges(self) -> np.ndarray:
        """``buckets + 1`` integer-aligned edges covering [low, high]."""
        return np.linspace(self.low, self.high + 1, self.buckets + 1)

    def partition_codes(self, raw: np.ndarray) -> np.ndarray:
        """Bucket index of each raw integer value."""
        self.validate_codes(raw)
        raw = np.asarray(raw, dtype=np.float64)
        codes = np.digitize(raw, self.bucket_edges[1:-1], right=False)
        return codes.astype(np.int64)

    def code_label(self, code: int) -> str:
        """Human-readable integer interval for one bucket, e.g. ``"1950-1961"``."""
        if not 0 <= code < self.buckets:
            raise SchemaError(f"code {code} out of range for attribute {self.name!r}")
        edges = self.bucket_edges
        lo = int(np.ceil(edges[code]))
        hi = int(np.ceil(edges[code + 1])) - 1
        return f"{lo}-{hi}"

    def validate_codes(self, raw: np.ndarray) -> None:
        """Check that every stored value lies inside [low, high]."""
        raw = np.asarray(raw)
        if raw.size and (raw.min() < self.low or raw.max() > self.high):
            raise SchemaError(
                f"attribute {self.name!r}: values must lie in [{self.low}, {self.high}], "
                f"found range [{raw.min()}, {raw.max()}]"
            )


#: Union type of the protected attribute specs.
ProtectedAttribute = CategoricalAttribute | IntegerAttribute


@dataclass(frozen=True)
class ObservedAttribute:
    """An observed (skill) attribute with a continuous range.

    The paper's observed attributes (LanguageTest, ApprovalRate) live in
    [25, 100]; scoring functions operate on the min-max normalised value in
    [0, 1] so that a convex combination of observed attributes stays in [0, 1].
    """

    name: str
    low: float = 0.0
    high: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")
        if not self.high > self.low:
            raise SchemaError(
                f"observed attribute {self.name!r}: high ({self.high}) must exceed low ({self.low})"
            )

    def normalize(self, raw: np.ndarray) -> np.ndarray:
        """Min-max normalise raw values into [0, 1]."""
        raw = np.asarray(raw, dtype=np.float64)
        self.validate(raw)
        return (raw - self.low) / (self.high - self.low)

    def denormalize(self, normalized: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`normalize`."""
        normalized = np.asarray(normalized, dtype=np.float64)
        return normalized * (self.high - self.low) + self.low

    def validate(self, raw: np.ndarray) -> None:
        """Check that every value lies inside [low, high] and is finite."""
        raw = np.asarray(raw, dtype=np.float64)
        if raw.size == 0:
            return
        if not np.all(np.isfinite(raw)):
            raise SchemaError(f"observed attribute {self.name!r} contains non-finite values")
        if raw.min() < self.low or raw.max() > self.high:
            raise SchemaError(
                f"observed attribute {self.name!r}: values must lie in "
                f"[{self.low}, {self.high}], found range [{raw.min()}, {raw.max()}]"
            )
