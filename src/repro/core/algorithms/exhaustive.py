"""Exact brute-force search over all attribute-split partitionings.

The paper: "we also implemented an exhaustive algorithm that solves our
optimization problem exactly by generating all possible partitionings in a
brute-force manner ... However, this algorithm failed to terminate after
running for two days with only 6 attributes ... even when each attribute had
only a maximum of 5 values."

The space enumerated here is the space both heuristics navigate: *unbalanced
split trees*, where every node independently either stays a leaf or splits on
one attribute not used on its root path.  Splits that produce a single
non-empty child are skipped (they change no member set).  Distinct trees can
induce the same partitioning (e.g. fully splitting on a then b, or b then a),
so candidates are deduplicated on their member sets before evaluation.

Deduplicated candidates are scored in fixed-size batches through
``engine.score_many`` — the fan-out point the process backend parallelises —
with the argmax taken in enumeration order (strict improvement only), so the
winner is identical across chunk sizes and backends.

The search is budgeted: exceeding ``budget`` candidate partitionings raises
:class:`~repro.exceptions.BudgetExceededError` — the bounded-compute analogue
of the paper's two-day timeout.  :func:`count_split_trees` computes the size
of the space analytically, which the blow-up benchmark (experiment E5) uses
to show why the brute force is hopeless at the paper's scale.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterator, Sequence

import numpy as np

from repro.core.algorithms.base import PartitioningAlgorithm, register_algorithm
from repro.core.partition import Partition
from repro.core.population import Population
from repro.core.splitting import split_partition
from repro.engine.context import SearchContext
from repro.exceptions import BudgetExceededError

__all__ = ["ExhaustiveAlgorithm", "count_split_trees"]

#: Candidates per ``score_many`` batch; large enough to amortise backend
#: dispatch, small enough to keep peak memory flat on huge enumerations.
_BATCH_SIZE = 256


@register_algorithm
class ExhaustiveAlgorithm(PartitioningAlgorithm):
    """Budgeted exact optimum over all attribute-split partitionings.

    Parameters
    ----------
    budget:
        Maximum number of candidate partitionings to evaluate before raising
        :class:`~repro.exceptions.BudgetExceededError`.
    """

    name = "exhaustive"

    def __init__(self, budget: int = 200_000) -> None:
        if budget < 1:
            raise ValueError(f"budget must be positive, got {budget}")
        self.budget = budget

    def _search(self, context: SearchContext) -> list[Partition]:
        population, engine = context.population, context.engine
        root = Partition(population.all_indices())
        attributes = tuple(population.schema.protected_names)
        best: list[Partition] | None = None
        best_score = -np.inf
        seen: set[frozenset[tuple[int, ...]]] = set()
        count = 0
        pending: list[list[Partition]] = []
        for candidate in self._enumerate(population, root, attributes):
            # Per-candidate deadline poll: a cutoff run scores exactly the
            # enumeration-order prefix an unbounded run scores first, so its
            # argmax is the prefix argmax (first-wins tie-breaks preserved).
            if context.should_stop():
                break
            key = frozenset(p.members_key() for p in candidate)
            if key in seen:
                continue
            seen.add(key)
            count += 1
            if count > self.budget:
                raise BudgetExceededError(self.budget)
            pending.append(candidate)
            if len(pending) >= _BATCH_SIZE:
                best, best_score = self._flush(context, pending, best, best_score)
                pending = []
        if pending:
            best, best_score = self._flush(context, pending, best, best_score)
        if best is None:
            # Deadline expired before the first candidate was even scored;
            # the root-only partitioning is the empty-prefix partial result.
            best = [root]
        context.metrics.set_gauge("exhaustive.candidates", count)
        return best

    @staticmethod
    def _flush(
        context: SearchContext,
        pending: list[list[Partition]],
        best: "list[Partition] | None",
        best_score: float,
    ) -> tuple["list[Partition] | None", float]:
        """Score one batch and fold it into the running argmax (first wins)."""
        with context.tracer.span(
            "exhaustive.batch", n_candidates=len(pending)
        ) as span:
            for candidate, score in zip(pending, context.engine.score_many(pending)):
                if score > best_score:
                    best, best_score = candidate, score
            span.set(best_objective=best_score)
        return best, best_score

    def _enumerate(
        self,
        population: Population,
        partition: Partition,
        attributes: tuple[str, ...],
    ) -> Iterator[list[Partition]]:
        """All partitionings of one partition's members: keep it whole, or
        split on any unused attribute and recurse independently per child."""
        yield [partition]
        for i, attribute in enumerate(attributes):
            children = split_partition(population, partition, attribute)
            if len(children) < 2:
                continue
            rest = attributes[:i] + attributes[i + 1 :]
            yield from self._combine(population, children, rest)

    def _combine(
        self,
        population: Population,
        children: Sequence[Partition],
        attributes: tuple[str, ...],
    ) -> Iterator[list[Partition]]:
        """Cartesian product of the sub-partitionings of each child, lazily."""
        if not children:
            yield []
            return
        first, rest = children[0], children[1:]
        for head in self._enumerate(population, first, attributes):
            for tail in self._combine(population, rest, attributes):
                yield head + tail


def count_split_trees(cardinalities: Sequence[int]) -> int:
    """Number of unbalanced split trees for attributes of given cardinalities.

    Assumes every attribute-value cell is non-empty (the worst case), so the
    count only depends on the multiset of cardinalities:

        T({}) = 1
        T(C)  = 1 + sum_{c in C} T(C - {c}) ** c

    This over-counts partitionings slightly (different trees can coincide)
    but is the number of *candidates* a brute force must generate, which is
    the quantity that explodes.  For the paper's setting (six attributes with
    cardinalities 2, 3, 5, 3, 4, 5) the result has ~370 decimal digits —
    hence "failed to terminate after two days".
    """
    for c in cardinalities:
        if c < 2:
            raise ValueError(f"attribute cardinalities must be >= 2, got {c}")

    @lru_cache(maxsize=None)
    def count(cards: tuple[int, ...]) -> int:
        total = 1
        for i, c in enumerate(cards):
            rest = cards[:i] + cards[i + 1 :]
            total += count(rest) ** c
        return total

    return count(tuple(sorted(cardinalities)))
