"""Partitioning-search algorithms.

Importing this package registers every algorithm:

========================  ============================================================
name                      description
========================  ============================================================
``balanced``              paper Algorithm 1 — level-wise greedy worst-attribute splits
``unbalanced``            paper Algorithm 2 — per-partition local greedy splits
``r-balanced``            Algorithm 1 with random attributes (paper baseline)
``r-unbalanced``          Algorithm 2 with random attributes (paper baseline)
``all-attributes``        full cross-product partitioning (paper baseline)
``single-attribute``      best single protected attribute (prior-work baseline)
``exhaustive``            budgeted exact optimum over all split partitionings
``beam``                  beam search over balanced trees (extension, not in paper)
========================  ============================================================
"""

from repro.core.algorithms.balanced import BalancedAlgorithm, RandomBalancedAlgorithm
from repro.core.algorithms.base import (
    AlgorithmResult,
    PartitioningAlgorithm,
    available_algorithms,
    get_algorithm,
    register_algorithm,
)
from repro.core.algorithms.baselines import (
    AllAttributesAlgorithm,
    SingleAttributeAlgorithm,
)
from repro.core.algorithms.beam import BeamSearchAlgorithm
from repro.core.algorithms.exhaustive import ExhaustiveAlgorithm, count_split_trees
from repro.core.algorithms.unbalanced import (
    RandomUnbalancedAlgorithm,
    UnbalancedAlgorithm,
)

#: The five algorithms compared in the paper's Tables 1-3, in table order.
PAPER_ALGORITHMS: tuple[str, ...] = (
    "unbalanced",
    "r-unbalanced",
    "balanced",
    "r-balanced",
    "all-attributes",
)

__all__ = [
    "AlgorithmResult",
    "PartitioningAlgorithm",
    "BalancedAlgorithm",
    "RandomBalancedAlgorithm",
    "UnbalancedAlgorithm",
    "RandomUnbalancedAlgorithm",
    "AllAttributesAlgorithm",
    "SingleAttributeAlgorithm",
    "ExhaustiveAlgorithm",
    "BeamSearchAlgorithm",
    "PAPER_ALGORITHMS",
    "available_algorithms",
    "get_algorithm",
    "register_algorithm",
    "count_split_trees",
]
