"""Algorithm 1 of the paper: ``balanced``.

Grows a *balanced* partitioning tree: at every step, one attribute is chosen
and **all** current partitions are split on it, so every leaf is constrained
on the same attribute set.  The attribute is the "worst" one — the candidate
whose induced partitioning exhibits the highest average pairwise distance —
and the search stops as soon as even the worst remaining attribute fails to
increase the objective (or no attributes remain).

Pseudo-code (Algorithm 1)::

    a = worstAttribute(W, f, A);  A -= a
    current  = split(W, a); currentAvg = averageEMD(current, f)
    while A != ∅:
        a = worstAttribute(current, f, A);  A -= a
        children = split(current, a); childrenAvg = averageEMD(children, f)
        if currentAvg >= childrenAvg: break
        current, currentAvg = children, childrenAvg
    output current

All objective queries go through the run's
:class:`~repro.engine.engine.EvaluationEngine` (via ``worst_attribute``,
which batches the per-attribute candidates through the engine's backend).
"""

from __future__ import annotations

from repro.core.algorithms.base import PartitioningAlgorithm, register_algorithm
from repro.core.partition import Partition
from repro.core.splitting import split_partitions, worst_attribute
from repro.engine.context import SearchContext

__all__ = ["BalancedAlgorithm", "RandomBalancedAlgorithm"]


@register_algorithm
class BalancedAlgorithm(PartitioningAlgorithm):
    """Greedy level-wise tree growth on the worst attribute (paper Algorithm 1)."""

    name = "balanced"

    def _search(self, context: SearchContext) -> list[Partition]:
        population, engine = context.population, context.engine
        tracer = context.tracer
        remaining = list(population.schema.protected_names)
        root = Partition(population.all_indices())
        if context.should_stop():
            return [root]

        with tracer.span("balanced.level", level=0, frontier=1) as span:
            choice = worst_attribute(population, [root], remaining, engine)
            span.set(attribute=choice.attribute, best_objective=choice.score)
        remaining.remove(choice.attribute)
        current, current_avg = choice.children, choice.score

        level = 0
        while remaining:
            if context.should_stop():
                break
            level += 1
            with tracer.span(
                "balanced.level", level=level, frontier=len(current)
            ) as span:
                choice = worst_attribute(population, current, remaining, engine)
                span.set(attribute=choice.attribute, best_objective=choice.score)
            remaining.remove(choice.attribute)
            if current_avg >= choice.score:
                break
            current, current_avg = choice.children, choice.score
        context.metrics.set_gauge("balanced.levels", level + 1)
        context.metrics.set_gauge("balanced.frontier", len(current))
        return current


@register_algorithm
class RandomBalancedAlgorithm(PartitioningAlgorithm):
    """The ``r-balanced`` baseline: Algorithm 1 with a random split attribute.

    Identical level-wise growth and stopping rule, but the attribute at every
    step is drawn uniformly from the remaining ones instead of being the
    worst.  The paper uses this to isolate the value of the worst-attribute
    heuristic.
    """

    name = "r-balanced"

    def _search(self, context: SearchContext) -> list[Partition]:
        population, engine, rng = context.population, context.engine, context.rng
        tracer = context.tracer
        remaining = list(population.schema.protected_names)
        root = Partition(population.all_indices())
        if context.should_stop():
            return [root]

        attribute = str(rng.choice(remaining))
        remaining.remove(attribute)
        current = split_partitions(population, [root], attribute)
        current_avg = engine.unfairness(current)

        level = 0
        while remaining:
            # Poll before the rng draw so a cutoff run's draw sequence stays
            # a prefix of the unbounded run's (bit-identical tie-breaks).
            if context.should_stop():
                break
            level += 1
            attribute = str(rng.choice(remaining))
            remaining.remove(attribute)
            with tracer.span(
                "r-balanced.level",
                level=level,
                frontier=len(current),
                attribute=attribute,
            ) as span:
                children = split_partitions(population, current, attribute)
                children_avg = engine.unfairness(children)
                span.set(best_objective=max(current_avg, children_avg))
            if current_avg >= children_avg:
                break
            current, current_avg = children, children_avg
        return current
