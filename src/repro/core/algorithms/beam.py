"""Beam search over balanced split trees — an extension beyond the paper.

The paper's ``balanced`` commits greedily to the single worst attribute at
every level and stops at the first level that fails to improve, which can
miss attribute *orders* whose value only shows up later (the classic
decision-tree greediness trap; the toy example of Figure 1 exhibits a
gender-first optimum that a language-first greedy never revisits).

:class:`BeamSearchAlgorithm` keeps the ``beam_width`` best partitionings at
every level instead of one, expanding each by every remaining attribute and
returning the best partitioning *seen at any level* (so it can still return
a shallow tree when deeper ones only dilute the average).  With
``beam_width=1`` it degenerates to a variant of ``balanced`` whose stopping
rule is "best seen" rather than "first non-improvement"; with unbounded
width it is exhaustive over attribute orders of balanced trees.

The search space is balanced trees (every leaf constrained on the same
attribute sequence), so its cost per level is ``beam_width x remaining
attributes`` evaluations — polynomial, unlike the full unbalanced space.
All of one level's expansions are scored as a single batch through
``engine.score_many``, which fans out across cores under the process
backend.
"""

from __future__ import annotations

from repro.core.algorithms.base import PartitioningAlgorithm, register_algorithm
from repro.core.partition import Partition
from repro.core.splitting import split_partitions
from repro.engine.context import SearchContext

__all__ = ["BeamSearchAlgorithm"]


@register_algorithm
class BeamSearchAlgorithm(PartitioningAlgorithm):
    """Beam search over balanced attribute-split sequences.

    Parameters
    ----------
    beam_width:
        Number of candidate partitionings kept per level (default 3).
    """

    name = "beam"

    def __init__(self, beam_width: int = 3) -> None:
        if beam_width < 1:
            raise ValueError(f"beam_width must be >= 1, got {beam_width}")
        self.beam_width = beam_width

    def _search(self, context: SearchContext) -> list[Partition]:
        population, engine = context.population, context.engine
        root = Partition(population.all_indices())
        all_attributes = tuple(population.schema.protected_names)

        # Beam entries: (score, partitions, remaining attributes).
        beam: list[tuple[float, list[Partition], tuple[str, ...]]] = [
            (0.0, [root], all_attributes)
        ]
        best_score, best_partitions = 0.0, [root]

        level = 0
        while True:
            if context.should_stop():
                break
            level += 1
            with context.tracer.span(
                "beam.level", level=level, beam=len(beam)
            ) as span:
                expansions: list[tuple[list[Partition], tuple[str, ...]]] = []
                seen: set[frozenset[tuple[int, ...]]] = set()
                for __, partitions, remaining in beam:
                    for attribute in remaining:
                        children = split_partitions(population, partitions, attribute)
                        key = frozenset(p.members_key() for p in children)
                        if key in seen:
                            continue
                        seen.add(key)
                        rest = tuple(a for a in remaining if a != attribute)
                        expansions.append((children, rest))
                if not expansions:
                    break
                scores = engine.score_many([children for children, __ in expansions])
                candidates = [
                    (score, children, rest)
                    for score, (children, rest) in zip(scores, expansions)
                ]
                candidates.sort(key=lambda entry: -entry[0])
                beam = candidates[: self.beam_width]
                if beam[0][0] > best_score:
                    best_score, best_partitions = beam[0][0], beam[0][1]
                span.set(
                    expansions=len(expansions),
                    frontier=len(best_partitions),
                    best_objective=best_score,
                )
                # Prune exhausted states; the loop ends when no state can grow.
                beam = [entry for entry in beam if entry[2]]
                if not beam:
                    break
        return best_partitions
