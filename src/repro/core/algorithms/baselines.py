"""Non-adaptive baselines: ``all-attributes`` and ``single-attribute``.

``all-attributes`` is the paper's third baseline: split the workers on
*every* protected attribute, producing the full cross-product partitioning
(empty cells dropped).  It is the deepest tree either heuristic could ever
reach, so comparing against it shows whether the stopping conditions give
anything up.

``single-attribute`` is an additional baseline representing prior work that
audits one pre-declared protected attribute at a time (e.g. Hannak et al.'s
TaskRabbit study, reference [4] of the paper): it evaluates each attribute
in isolation and returns the best single split.  The gap between it and the
subgroup-searching algorithms measures the value of combining attributes.
"""

from __future__ import annotations

from repro.core.algorithms.base import PartitioningAlgorithm, register_algorithm
from repro.core.partition import Partition
from repro.core.splitting import split_partitions, worst_attribute
from repro.engine.context import SearchContext

__all__ = ["AllAttributesAlgorithm", "SingleAttributeAlgorithm"]


@register_algorithm
class AllAttributesAlgorithm(PartitioningAlgorithm):
    """Split on every protected attribute: the full partitioning baseline."""

    name = "all-attributes"

    def _search(self, context: SearchContext) -> list[Partition]:
        population = context.population
        current = [Partition(population.all_indices())]
        for level, attribute in enumerate(population.schema.protected_names):
            if context.should_stop():
                break
            with context.tracer.span(
                "all-attributes.split",
                level=level,
                attribute=attribute,
                frontier=len(current),
            ):
                current = split_partitions(population, current, attribute)
        return current


@register_algorithm
class SingleAttributeAlgorithm(PartitioningAlgorithm):
    """Best split on exactly one protected attribute (prior-work setting)."""

    name = "single-attribute"

    def _search(self, context: SearchContext) -> list[Partition]:
        population = context.population
        root = Partition(population.all_indices())
        if context.should_stop():
            return [root]
        with context.tracer.span("single-attribute.scan") as span:
            choice = worst_attribute(
                population,
                [root],
                list(population.schema.protected_names),
                context.engine,
            )
            span.set(attribute=choice.attribute, best_objective=choice.score)
        return choice.children
