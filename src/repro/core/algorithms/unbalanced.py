"""Algorithm 2 of the paper: ``unbalanced``.

Grows an *unbalanced* partitioning tree: after an initial split of the whole
population on the worst attribute (as in ``balanced``), every resulting
partition independently decides whether to split further.  A partition is
replaced by its children only if doing so raises the average distance it
exhibits next to its siblings — a local what-if on the overall objective.

Pseudo-code (Algorithm 2, invoked once per child of the initial split)::

    unbalanced(current, siblings, f, A):
        if A == ∅: output current; return
        currentAvg  = averageEMD(current, siblings, f)
        a = worstAttribute(current, f, A);  A -= a
        children    = split(current, a)
        childrenAvg = averageEMD(children, siblings, f)
        if currentAvg >= childrenAvg: output current
        else:
            for p in children: unbalanced({p}, children - {p}, f, A)

The two-argument ``averageEMD(X, S, f)`` is read as the average pairwise
distance over the union X ∪ S (DESIGN.md §2.4); pass ``cross_only=True`` to
use only X-vs-S pairs instead (the stopping-condition ablation).
"""

from __future__ import annotations

import numpy as np

from repro.core.algorithms.base import PartitioningAlgorithm, register_algorithm
from repro.core.partition import Partition
from repro.core.population import Population
from repro.core.splitting import (
    split_partition,
    worst_attribute,
    worst_attribute_local,
)
from repro.core.unfairness import UnfairnessEvaluator

__all__ = ["UnbalancedAlgorithm", "RandomUnbalancedAlgorithm"]


class _UnbalancedBase(PartitioningAlgorithm):
    """Shared recursion for ``unbalanced`` and ``r-unbalanced``."""

    def __init__(self, cross_only: bool = False) -> None:
        self.cross_only = cross_only

    def _local_average(
        self,
        evaluator: UnfairnessEvaluator,
        group: list[Partition],
        siblings: list[Partition],
    ) -> float:
        if self.cross_only:
            return evaluator.cross_average(group, siblings)
        return evaluator.union_average(group, siblings)

    def _choose_attribute(
        self,
        population: Population,
        partition: Partition,
        siblings: list[Partition],
        candidates: list[str],
        evaluator: UnfairnessEvaluator,
        rng: np.random.Generator,
    ) -> tuple[str, list[Partition], float]:
        """Return (attribute, children, children_avg) for one local step."""
        raise NotImplementedError

    def _initial_split(
        self,
        population: Population,
        root: Partition,
        candidates: list[str],
        evaluator: UnfairnessEvaluator,
        rng: np.random.Generator,
    ) -> tuple[str, list[Partition]]:
        """First split of the whole population (worst attribute for the
        heuristic, random for the baseline)."""
        raise NotImplementedError

    def _search(
        self,
        population: Population,
        evaluator: UnfairnessEvaluator,
        rng: np.random.Generator,
    ) -> list[Partition]:
        candidates = list(population.schema.protected_names)
        root = Partition(population.all_indices())
        attribute, first_level = self._initial_split(
            population, root, candidates, evaluator, rng
        )
        remaining = [a for a in candidates if a != attribute]

        output: list[Partition] = []
        for partition in first_level:
            siblings = [p for p in first_level if p is not partition]
            self._recurse(
                population, partition, siblings, remaining, evaluator, rng, output
            )
        return output

    def _recurse(
        self,
        population: Population,
        current: Partition,
        siblings: list[Partition],
        candidates: list[str],
        evaluator: UnfairnessEvaluator,
        rng: np.random.Generator,
        output: list[Partition],
    ) -> None:
        if not candidates:
            output.append(current)
            return
        current_avg = self._local_average(evaluator, [current], siblings)
        attribute, children, children_avg = self._choose_attribute(
            population, current, siblings, candidates, evaluator, rng
        )
        if current_avg >= children_avg:
            output.append(current)
            return
        remaining = [a for a in candidates if a != attribute]
        for child in children:
            child_siblings = [p for p in children if p is not child]
            self._recurse(
                population, child, child_siblings, remaining, evaluator, rng, output
            )


@register_algorithm
class UnbalancedAlgorithm(_UnbalancedBase):
    """Locally greedy tree growth on the worst attribute (paper Algorithm 2)."""

    name = "unbalanced"

    def _initial_split(
        self,
        population: Population,
        root: Partition,
        candidates: list[str],
        evaluator: UnfairnessEvaluator,
        rng: np.random.Generator,
    ) -> tuple[str, list[Partition]]:
        choice = worst_attribute(population, [root], candidates, evaluator)
        return choice.attribute, choice.children

    def _choose_attribute(
        self,
        population: Population,
        partition: Partition,
        siblings: list[Partition],
        candidates: list[str],
        evaluator: UnfairnessEvaluator,
        rng: np.random.Generator,
    ) -> tuple[str, list[Partition], float]:
        choice = worst_attribute_local(
            population, partition, siblings, candidates, evaluator, self.cross_only
        )
        return choice.attribute, choice.children, choice.score


@register_algorithm
class RandomUnbalancedAlgorithm(_UnbalancedBase):
    """The ``r-unbalanced`` baseline: Algorithm 2 with random split attributes.

    Keeps the local replace-if-better stopping rule but draws the candidate
    attribute uniformly at every step.
    """

    name = "r-unbalanced"

    def _initial_split(
        self,
        population: Population,
        root: Partition,
        candidates: list[str],
        evaluator: UnfairnessEvaluator,
        rng: np.random.Generator,
    ) -> tuple[str, list[Partition]]:
        attribute = str(rng.choice(candidates))
        return attribute, split_partition(population, root, attribute)

    def _choose_attribute(
        self,
        population: Population,
        partition: Partition,
        siblings: list[Partition],
        candidates: list[str],
        evaluator: UnfairnessEvaluator,
        rng: np.random.Generator,
    ) -> tuple[str, list[Partition], float]:
        attribute = str(rng.choice(candidates))
        children = split_partition(population, partition, attribute)
        score = self._local_average(evaluator, children, siblings)
        return attribute, children, score
