"""Algorithm 2 of the paper: ``unbalanced``.

Grows an *unbalanced* partitioning tree: after an initial split of the whole
population on the worst attribute (as in ``balanced``), every resulting
partition independently decides whether to split further.  A partition is
replaced by its children only if doing so raises the average distance it
exhibits next to its siblings — a local what-if on the overall objective.

Pseudo-code (Algorithm 2, invoked once per child of the initial split)::

    unbalanced(current, siblings, f, A):
        if A == ∅: output current; return
        currentAvg  = averageEMD(current, siblings, f)
        a = worstAttribute(current, f, A);  A -= a
        children    = split(current, a)
        childrenAvg = averageEMD(children, siblings, f)
        if currentAvg >= childrenAvg: output current
        else:
            for p in children: unbalanced({p}, children - {p}, f, A)

The two-argument ``averageEMD(X, S, f)`` is read as the average pairwise
distance over the union X ∪ S (DESIGN.md §2.4); pass ``cross_only=True`` to
use only X-vs-S pairs instead (the stopping-condition ablation).

This recursion is the engine's incremental objective's natural habitat: the
siblings are fixed across the whole local decision, so one
``engine.incremental(siblings)`` tracker scores the un-split partition *and*
every candidate split by adding only the new children-vs-siblings block —
the sibling-sibling pair sum is computed once and reused.  Scoring keep and
split through the same tracker also keeps degenerate comparisons (a split
that changes no member set) exact ties, as in the reference evaluator.
"""

from __future__ import annotations

from repro.core.algorithms.base import PartitioningAlgorithm, register_algorithm
from repro.core.partition import Partition
from repro.core.splitting import (
    split_partition,
    worst_attribute,
    worst_attribute_local,
)
from repro.engine.context import SearchContext

__all__ = ["UnbalancedAlgorithm", "RandomUnbalancedAlgorithm"]


class _UnbalancedBase(PartitioningAlgorithm):
    """Shared recursion for ``unbalanced`` and ``r-unbalanced``."""

    def __init__(self, cross_only: bool = False) -> None:
        self.cross_only = cross_only

    def _choose_attribute(
        self,
        context: SearchContext,
        partition: Partition,
        siblings: list[Partition],
        candidates: list[str],
        tracker: "object | None",
    ) -> tuple[str, list[Partition], float]:
        """Return (attribute, children, children_avg) for one local step."""
        raise NotImplementedError

    def _initial_split(
        self,
        context: SearchContext,
        root: Partition,
        candidates: list[str],
    ) -> tuple[str, list[Partition]]:
        """First split of the whole population (worst attribute for the
        heuristic, random for the baseline)."""
        raise NotImplementedError

    def _search(self, context: SearchContext) -> list[Partition]:
        candidates = list(context.population.schema.protected_names)
        root = Partition(context.population.all_indices())
        if context.should_stop():
            return [root]
        attribute, first_level = self._initial_split(context, root, candidates)
        remaining = [a for a in candidates if a != attribute]

        output: list[Partition] = []
        for partition in first_level:
            siblings = [p for p in first_level if p is not partition]
            self._recurse(context, partition, siblings, remaining, output)
        return output

    def _recurse(
        self,
        context: SearchContext,
        current: Partition,
        siblings: list[Partition],
        candidates: list[str],
        output: list[Partition],
    ) -> None:
        # Deadline poll per node: once expired, this node and every node
        # still pending in the deterministic DFS order are emitted unsplit,
        # so the cutoff result is the processed prefix plus the untouched
        # remainder of the frontier.
        if not candidates or context.should_stop():
            output.append(current)
            return
        with context.tracer.span(
            "unbalanced.node",
            depth=len(current.constraints),
            size=current.size,
            siblings=len(siblings),
            candidates=len(candidates),
        ) as span:
            if self.cross_only:
                tracker = None
                current_avg = context.engine.cross_average([current], siblings)
            else:
                tracker = context.engine.incremental(siblings)
                current_avg = tracker.score_add([current])
            attribute, children, children_avg = self._choose_attribute(
                context, current, siblings, candidates, tracker
            )
            split = children_avg > current_avg
            span.set(
                attribute=attribute,
                best_objective=max(current_avg, children_avg),
                split=split,
            )
        if not split:
            output.append(current)
            return
        remaining = [a for a in candidates if a != attribute]
        for child in children:
            child_siblings = [p for p in children if p is not child]
            self._recurse(context, child, child_siblings, remaining, output)


@register_algorithm
class UnbalancedAlgorithm(_UnbalancedBase):
    """Locally greedy tree growth on the worst attribute (paper Algorithm 2)."""

    name = "unbalanced"

    def _initial_split(
        self,
        context: SearchContext,
        root: Partition,
        candidates: list[str],
    ) -> tuple[str, list[Partition]]:
        choice = worst_attribute(context.population, [root], candidates, context.engine)
        return choice.attribute, choice.children

    def _choose_attribute(
        self,
        context: SearchContext,
        partition: Partition,
        siblings: list[Partition],
        candidates: list[str],
        tracker: "object | None",
    ) -> tuple[str, list[Partition], float]:
        choice = worst_attribute_local(
            context.population,
            partition,
            siblings,
            candidates,
            context.engine,
            self.cross_only,
            tracker=tracker,
        )
        return choice.attribute, choice.children, choice.score


@register_algorithm
class RandomUnbalancedAlgorithm(_UnbalancedBase):
    """The ``r-unbalanced`` baseline: Algorithm 2 with random split attributes.

    Keeps the local replace-if-better stopping rule but draws the candidate
    attribute uniformly at every step.
    """

    name = "r-unbalanced"

    def _initial_split(
        self,
        context: SearchContext,
        root: Partition,
        candidates: list[str],
    ) -> tuple[str, list[Partition]]:
        attribute = str(context.rng.choice(candidates))
        return attribute, split_partition(context.population, root, attribute)

    def _choose_attribute(
        self,
        context: SearchContext,
        partition: Partition,
        siblings: list[Partition],
        candidates: list[str],
        tracker: "object | None",
    ) -> tuple[str, list[Partition], float]:
        attribute = str(context.rng.choice(candidates))
        children = split_partition(context.population, partition, attribute)
        if tracker is not None:
            score = tracker.score_add(children)
        elif self.cross_only:
            score = context.engine.cross_average(children, siblings)
        else:
            score = context.engine.union_average(children, siblings)
        return attribute, children, score
