"""Common interface, result type and registry for partitioning algorithms.

Every algorithm searches for a full disjoint partitioning of a population on
its protected attributes that maximises average pairwise histogram distance
(Definition 1 of the paper).  They differ only in how they navigate the
exponential space; all of them run through the same entry point::

    result = get_algorithm("balanced").run(population, scores)

which yields an :class:`AlgorithmResult` carrying the partitioning, its
unfairness, wall-clock runtime and search-effort statistics — the quantities
the paper reports in Tables 1–3.

Evaluation is served by one :class:`~repro.engine.engine.EvaluationEngine`
per run (cache, vectorized kernels, incremental updates, pluggable
backends); algorithms receive it inside a
:class:`~repro.engine.context.SearchContext` and never construct evaluator
machinery themselves.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass

import numpy as np

from repro.core.histogram import HistogramSpec
from repro.core.partition import Partition, Partitioning
from repro.core.population import Population
from repro.core.schema import WorkerSchema
from repro.engine.backends import ExecutionBackend
from repro.engine.context import SearchContext
from repro.engine.engine import EvaluationEngine
from repro.exceptions import PartitioningError
from repro.metrics.base import HistogramDistance
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "AlgorithmResult",
    "PartitioningAlgorithm",
    "available_algorithms",
    "get_algorithm",
    "register_algorithm",
]


@dataclass(frozen=True)
class AlgorithmResult:
    """Outcome of one algorithm run.

    Attributes
    ----------
    algorithm:
        Registry name of the algorithm that produced this result.
    partitioning:
        The returned full disjoint partitioning.
    unfairness:
        Its average pairwise distance (the objective value; "Average EMD" in
        the paper's tables when the metric is EMD).
    runtime_seconds:
        Wall-clock search time, the paper's "time (in secs)" column.
    n_evaluations:
        Number of partitioning evaluations the search performed.
    metric:
        Name of the histogram distance that was optimised.
    cache_hits:
        Objective queries answered from the engine's value cache.
    n_full_evaluations:
        Queries that recomputed the objective from scratch.
    n_incremental_evaluations:
        Queries answered by an O(k·Δ) incremental frontier update.
    pair_distances_computed:
        Individual pairwise distances actually materialised.
    pair_distances_full:
        The naive dense cost — C(k, 2) summed over every query — that a
        cache-less, closed-form-less evaluator would have paid.
    backend:
        Execution backend the run used (``sequential`` / ``process``).
    workers:
        Degree of parallelism of that backend.
    deadline_hit:
        True when the search stopped at an iteration boundary because its
        cooperative deadline expired; the partitioning is then the partial
        result at the cutoff (bit-identical to the same-iteration prefix of
        an unbounded run), not the search's natural fixpoint.
    """

    algorithm: str
    partitioning: Partitioning
    unfairness: float
    runtime_seconds: float
    n_evaluations: int
    metric: str
    cache_hits: int = 0
    n_full_evaluations: int = 0
    n_incremental_evaluations: int = 0
    pair_distances_computed: int = 0
    pair_distances_full: int = 0
    backend: str = "sequential"
    workers: int = 1
    deadline_hit: bool = False

    def describe(self, schema: WorkerSchema) -> str:
        """Multi-line human-readable summary of the result."""
        lines = [
            f"algorithm     : {self.algorithm}",
            f"unfairness    : {self.unfairness:.4f} ({self.metric})",
            f"partitions    : {self.partitioning.k}",
            f"attributes    : {', '.join(self.partitioning.attributes_used()) or '(none)'}",
            f"runtime       : {self.runtime_seconds:.4f}s "
            f"({self.n_evaluations} partitioning evaluations)",
            f"engine        : backend={self.backend} workers={self.workers} "
            f"cache_hits={self.cache_hits} "
            f"pair_distances={self.pair_distances_computed}/{self.pair_distances_full}",
        ]
        if self.deadline_hit:
            lines.append("deadline      : hit — partial result at the cutoff boundary")
        lines.extend("  " + d for d in self.partitioning.describe(schema))
        return "\n".join(lines)


class PartitioningAlgorithm(abc.ABC):
    """Base class: timing, engine setup and result assembly.

    Subclasses implement :meth:`_search`, returning the leaf partitions of
    the partitioning they settled on.
    """

    #: Registry key; subclasses must set this.
    name: str = ""

    def run(
        self,
        population: Population,
        scores: np.ndarray,
        hist_spec: HistogramSpec | None = None,
        metric: "str | HistogramDistance" = "emd",
        rng: "np.random.Generator | int | None" = None,
        weighting: str = "uniform",
        backend: "str | ExecutionBackend | None" = None,
        workers: "int | None" = None,
        engine_mode: str = "incremental",
        tracer: "Tracer | NullTracer | None" = None,
        metrics: "MetricsRegistry | None" = None,
        retry_policy=None,
        fault_config=None,
        use_atoms: "bool | None" = None,
        deadline=None,
        engine_factory=None,
        kernel: "str | None" = None,
    ) -> AlgorithmResult:
        """Search for the most unfair partitioning of ``population`` under ``scores``.

        Parameters
        ----------
        population:
            Worker store whose protected attributes define the search space.
        scores:
            One score per worker in the histogram spec's range.
        hist_spec:
            Score binning (default: 10 equal bins over [0, 1]).
        metric:
            Histogram distance to maximise (default: the paper's EMD).
        rng:
            Randomness source; only the ``r-*`` baselines use it.
        weighting:
            ``"uniform"`` (the paper's objective) or ``"size"`` (pairs
            weighted by group sizes; see
            :class:`~repro.core.unfairness.UnfairnessEvaluator`).
        backend:
            Execution backend for batched candidate evaluation
            (``"sequential"`` default, ``"process"`` for a worker pool).
        workers:
            Pool size for the process backend.
        engine_mode:
            ``"incremental"`` (default) or ``"full"`` — see
            :class:`~repro.engine.engine.EvaluationEngine`.
        tracer, metrics:
            Observability hooks forwarded to the engine (see
            :mod:`repro.obs`).  With a real tracer the whole run is wrapped
            in an ``algorithm.<name>`` span; the default no-op tracer makes
            the instrumentation free.
        retry_policy, fault_config:
            Fault tolerance and fault injection for the backend (see
            :mod:`repro.engine.resilience` / :mod:`repro.engine.faults`).
        use_atoms:
            Atom-table fast path switch forwarded to the engine (default
            on in incremental mode; ``False`` forces the member-array cost
            model — results are bit-identical either way).
        deadline:
            Optional cooperative compute budget (a
            :class:`~repro.engine.deadline.Deadline` or any object with an
            ``expired()`` method).  The search polls it at iteration
            boundaries and, once spent, returns the partial result reached
            so far with ``deadline_hit=True`` instead of running on.
        engine_factory:
            Optional callable constructing (or re-using) the evaluation
            engine; called with the same keyword arguments
            :class:`~repro.engine.engine.EvaluationEngine` would receive.
            The streaming layer passes one that keeps a persistent
            :class:`~repro.engine.streaming.StreamingEngine` warm across
            re-audits instead of rebuilding per run.
        kernel:
            Kernel backend for the distance computations (``"numpy"`` /
            ``"scalar"`` / ``"numba"``; ``None`` = default).  Bit-identical
            across backends — purely a cost-model switch, like
            ``use_atoms``.
        """
        if population.size == 0:
            raise PartitioningError("cannot partition an empty population")
        factory = engine_factory if engine_factory is not None else EvaluationEngine
        engine = factory(
            population,
            scores,
            hist_spec=hist_spec,
            metric=metric,
            weighting=weighting,
            backend=backend,
            workers=workers,
            mode=engine_mode,
            tracer=tracer,
            metrics=metrics,
            retry_policy=retry_policy,
            fault_config=fault_config,
            use_atoms=use_atoms,
            kernel=kernel,
        )
        generator = (
            np.random.default_rng(rng)
            if not isinstance(rng, np.random.Generator)
            else rng
        )
        context = SearchContext(
            population=population, engine=engine, rng=generator, deadline=deadline
        )
        run_tracer = tracer if tracer is not None else NULL_TRACER
        start = time.perf_counter()
        try:
            with run_tracer.span(
                f"algorithm.{self.name}",
                algorithm=self.name,
                population=population.size,
                backend=engine.backend.name,
            ) as run_span:
                partitions = self._search(context)
                partitioning = Partitioning(partitions, population.size)
                final_unfairness = engine.unfairness(partitioning)
                run_span.set(
                    unfairness=final_unfairness,
                    n_partitions=partitioning.k,
                    deadline_hit=context.deadline_hit,
                )
        finally:
            engine.close()
        elapsed = time.perf_counter() - start
        engine.metrics.inc("algorithm.runs")
        engine.metrics.observe("algorithm.run_seconds", elapsed)
        stats = engine.stats
        return AlgorithmResult(
            algorithm=self.name,
            partitioning=partitioning,
            unfairness=final_unfairness,
            runtime_seconds=elapsed,
            n_evaluations=stats.n_evaluations,
            metric=engine.metric.name,
            cache_hits=stats.cache_hits,
            n_full_evaluations=stats.n_full_evaluations,
            n_incremental_evaluations=stats.n_incremental_evaluations,
            pair_distances_computed=stats.pair_distances_computed,
            pair_distances_full=stats.pair_distances_full,
            backend=stats.backend,
            workers=stats.workers,
            deadline_hit=context.deadline_hit,
        )

    @abc.abstractmethod
    def _search(self, context: SearchContext) -> list[Partition]:
        """Return the leaf partitions of the chosen partitioning."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


_REGISTRY: dict[str, type[PartitioningAlgorithm]] = {}


def register_algorithm(cls: type[PartitioningAlgorithm]) -> type[PartitioningAlgorithm]:
    """Class decorator: register an algorithm under its ``name``."""
    if not cls.name:
        raise PartitioningError(f"algorithm class {cls.__name__} has no name")
    _REGISTRY[cls.name] = cls
    return cls


def get_algorithm(name: str, **options: object) -> PartitioningAlgorithm:
    """Instantiate a registered algorithm by name.

    Keyword options are forwarded to the algorithm's constructor (e.g.
    ``get_algorithm("exhaustive", budget=10_000)``).
    """
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise PartitioningError(
            f"unknown algorithm {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(**options)  # type: ignore[arg-type]


def available_algorithms() -> tuple[str, ...]:
    """Names of all registered algorithms."""
    return tuple(sorted(_REGISTRY))
