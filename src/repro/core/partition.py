"""Partitions and partitionings of a worker population.

A :class:`Partition` is a group of workers defined by a conjunction of
protected-attribute constraints (the path from the root of a split tree),
stored as an array of row indices into a shared
:class:`~repro.core.population.Population` — splitting never copies worker
data.

A :class:`Partitioning` is the object the paper's optimisation problem ranges
over: a full disjoint cover of the population by partitions.  Empty cells are
never materialised (an empty partition has no score histogram), so
"full disjoint" here means the member index arrays are pairwise disjoint and
their union is the whole population.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.core.attributes import CategoricalAttribute
from repro.core.population import Population
from repro.core.schema import WorkerSchema
from repro.exceptions import PartitioningError

__all__ = ["Partition", "Partitioning"]

#: One constraint: (protected attribute name, partition code).
Constraint = tuple[str, int]


class Partition:
    """A non-empty group of workers selected by attribute constraints.

    Identity semantics: two Partition objects are distinct cache keys even if
    they contain the same members (use :meth:`same_members` to compare
    contents).  This keeps histogram caching trivially correct.
    """

    __slots__ = ("indices", "constraints")

    def __init__(self, indices: np.ndarray, constraints: tuple[Constraint, ...] = ()) -> None:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.ndim != 1:
            raise PartitioningError("partition indices must be one-dimensional")
        if indices.size == 0:
            raise PartitioningError("partitions must be non-empty; drop empty cells instead")
        indices = np.sort(indices)
        if np.any(indices[1:] == indices[:-1]):
            raise PartitioningError("partition contains duplicate worker indices")
        indices.setflags(write=False)
        self.indices = indices
        self.constraints = tuple(constraints)

    @property
    def size(self) -> int:
        """Number of workers in this partition."""
        return int(self.indices.shape[0])

    def constrained_attributes(self) -> tuple[str, ...]:
        """Names of the attributes this partition is constrained on."""
        return tuple(name for name, _ in self.constraints)

    def label(self, schema: WorkerSchema) -> str:
        """Human-readable description, e.g. ``"gender=Male ∧ language=English"``."""
        if not self.constraints:
            return "ALL"
        parts = []
        for name, code in self.constraints:
            attr = schema.protected_attribute(name)
            if isinstance(attr, CategoricalAttribute):
                parts.append(f"{name}={attr.code_label(code)}")
            else:
                parts.append(f"{name}∈[{attr.code_label(code)}]")
        return " ∧ ".join(parts)

    def same_members(self, other: "Partition") -> bool:
        """True if both partitions contain exactly the same workers."""
        return self.indices.shape == other.indices.shape and bool(
            np.array_equal(self.indices, other.indices)
        )

    def members_key(self) -> bytes:
        """Hashable canonical key of the member set (for deduplication).

        The raw bytes of the sorted int64 index array: one memcpy instead
        of n Python int boxings, and a smaller hash target.  Keys are only
        comparable between partitions of the same population.
        """
        return self.indices.tobytes()

    def __repr__(self) -> str:
        constraint_str = ", ".join(f"{n}={c}" for n, c in self.constraints) or "ALL"
        return f"Partition(size={self.size}, {constraint_str})"


class Partitioning:
    """A full disjoint partitioning of a population.

    Construction validates the paper's constraints: partitions are pairwise
    disjoint and their union covers every worker.
    """

    def __init__(self, partitions: Sequence[Partition], population_size: int) -> None:
        partitions = list(partitions)
        if not partitions:
            raise PartitioningError("a partitioning needs at least one partition")
        total = sum(p.size for p in partitions)
        if total != population_size:
            raise PartitioningError(
                f"partitioning covers {total} workers, population has {population_size}"
            )
        combined = np.concatenate([p.indices for p in partitions])
        combined.sort()
        if combined.size != population_size or not np.array_equal(
            combined, np.arange(population_size, dtype=np.int64)
        ):
            raise PartitioningError(
                "partitions are not a full disjoint cover of the population"
            )
        self.partitions = partitions
        self.population_size = population_size

    @classmethod
    def single(cls, population: Population) -> "Partitioning":
        """The trivial partitioning: all workers in one root partition."""
        return cls([Partition(population.all_indices())], population.size)

    @property
    def k(self) -> int:
        """Number of partitions."""
        return len(self.partitions)

    def __iter__(self) -> Iterator[Partition]:
        return iter(self.partitions)

    def __len__(self) -> int:
        return len(self.partitions)

    def attributes_used(self) -> tuple[str, ...]:
        """All attributes constrained in at least one partition, sorted."""
        used: set[str] = set()
        for p in self.partitions:
            used.update(p.constrained_attributes())
        return tuple(sorted(used))

    def max_depth(self) -> int:
        """Depth of the deepest partition in the underlying split tree."""
        return max(len(p.constraints) for p in self.partitions)

    def canonical_key(self) -> frozenset[bytes]:
        """Content-based key: the set of member sets.

        Two partitionings with the same key group the workers identically
        even if they were reached through different split trees; the
        exhaustive algorithm uses this to avoid re-evaluating duplicates.
        """
        return frozenset(p.members_key() for p in self.partitions)

    def describe(self, schema: WorkerSchema) -> list[str]:
        """One label per partition, ordered largest first."""
        ordered = sorted(self.partitions, key=lambda p: (-p.size, p.constraints))
        return [f"{p.label(schema)} (n={p.size})" for p in ordered]

    def __repr__(self) -> str:
        return f"Partitioning(k={self.k}, population_size={self.population_size})"
