"""Split trees reconstructed from partition constraint paths.

The heuristic algorithms conceptually grow a tree of splits (Figure 1 of the
paper shows one); operationally they only keep the leaf partitions, each of
which carries its root-to-leaf constraint path.  This module rebuilds the
tree from those paths for reporting — rendering the kind of picture Figure 1
shows, and answering structural questions (which attribute was split where,
how deep is each branch).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.attributes import CategoricalAttribute
from repro.core.partition import Partition, Partitioning
from repro.core.schema import WorkerSchema
from repro.exceptions import PartitioningError

__all__ = ["SplitTreeNode", "build_split_tree", "render_split_tree"]


@dataclass
class SplitTreeNode:
    """One node of a reconstructed split tree.

    A leaf carries the partition it represents; an internal node carries the
    attribute its children split on.
    """

    constraints: tuple[tuple[str, int], ...]
    partition: Partition | None = None
    split_attribute: str | None = None
    children: list["SplitTreeNode"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def depth(self) -> int:
        """Length of the longest root-to-leaf path below (and including) this node."""
        if self.is_leaf:
            return 0
        return 1 + max(child.depth for child in self.children)

    def leaves(self) -> list["SplitTreeNode"]:
        """All leaf nodes below (or equal to) this node, left to right."""
        if self.is_leaf:
            return [self]
        out: list[SplitTreeNode] = []
        for child in self.children:
            out.extend(child.leaves())
        return out


def build_split_tree(partitioning: "Partitioning | Sequence[Partition]") -> SplitTreeNode:
    """Reconstruct the split tree whose leaves are the given partitions.

    Every partition's constraint path must be consistent with a single tree
    (the output of any algorithm in this library is); otherwise
    :class:`~repro.exceptions.PartitioningError` is raised.
    """
    partitions = list(partitioning)
    root = SplitTreeNode(constraints=())
    for partition in partitions:
        node = root
        for depth, (attribute, code) in enumerate(partition.constraints):
            if node.partition is not None:
                raise PartitioningError(
                    "inconsistent constraint paths: a leaf would need children"
                )
            if node.split_attribute is None:
                node.split_attribute = attribute
            elif node.split_attribute != attribute:
                raise PartitioningError(
                    f"inconsistent constraint paths: node splits on both "
                    f"{node.split_attribute!r} and {attribute!r}"
                )
            prefix = partition.constraints[: depth + 1]
            child = next((c for c in node.children if c.constraints == prefix), None)
            if child is None:
                child = SplitTreeNode(constraints=prefix)
                node.children.append(child)
            node = child
        if node.children or node.partition is not None:
            raise PartitioningError("inconsistent constraint paths: duplicate leaf")
        node.partition = partition
    return root


def _constraint_label(schema: WorkerSchema, attribute: str, code: int) -> str:
    attr = schema.protected_attribute(attribute)
    if isinstance(attr, CategoricalAttribute):
        return f"{attribute}={attr.code_label(code)}"
    return f"{attribute}∈[{attr.code_label(code)}]"


def render_split_tree(
    tree: SplitTreeNode, schema: WorkerSchema, indent: str = "  "
) -> str:
    """Render a split tree as indented text, Figure-1 style.

    Example output for the paper's toy data::

        ALL
          gender=Male  [split on language]
            language=English (n=3)
            ...
          gender=Female (n=4)
    """
    lines: list[str] = []

    def visit(node: SplitTreeNode, depth: int) -> None:
        if node.constraints:
            attribute, code = node.constraints[-1]
            label = _constraint_label(schema, attribute, code)
        else:
            label = "ALL"
        if node.is_leaf and node.partition is not None:
            lines.append(f"{indent * depth}{label} (n={node.partition.size})")
        else:
            suffix = f"  [split on {node.split_attribute}]" if node.split_attribute else ""
            lines.append(f"{indent * depth}{label}{suffix}")
        for child in sorted(node.children, key=lambda c: c.constraints):
            visit(child, depth + 1)

    visit(tree, 0)
    return "\n".join(lines)
