"""Core of the reproduction: the data model (attributes, schema, population,
histograms, partitions), the unfairness objective, and the search algorithms.
"""

from repro.core.attributes import (
    CategoricalAttribute,
    IntegerAttribute,
    ObservedAttribute,
)
from repro.core.audit import AuditReport, FairnessAuditor, GroupSummary
from repro.core.histogram import HistogramSpec
from repro.core.partition import Partition, Partitioning
from repro.core.population import Population, WorkerView
from repro.core.schema import WorkerSchema
from repro.core.tree import SplitTreeNode, build_split_tree, render_split_tree
from repro.core.unfairness import UnfairnessEvaluator, unfairness

__all__ = [
    "CategoricalAttribute",
    "IntegerAttribute",
    "ObservedAttribute",
    "WorkerSchema",
    "Population",
    "WorkerView",
    "HistogramSpec",
    "Partition",
    "Partitioning",
    "UnfairnessEvaluator",
    "unfairness",
    "SplitTreeNode",
    "build_split_tree",
    "render_split_tree",
    "FairnessAuditor",
    "AuditReport",
    "GroupSummary",
]
