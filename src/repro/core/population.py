"""Column-oriented store of a worker population.

A :class:`Population` holds one numpy column per attribute.  Protected
categorical columns store integer codes (see
:class:`repro.core.attributes.CategoricalAttribute`); protected integer
columns store raw integers; observed columns store floats.

Partitioning algorithms never copy worker rows — partitions are arrays of row
indices into a shared population, so splitting is O(partition size) and the
whole search works on views.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Mapping

import numpy as np

from repro.core.attributes import CategoricalAttribute
from repro.core.schema import WorkerSchema
from repro.exceptions import PopulationError

__all__ = ["Population", "WorkerView"]


@dataclass(frozen=True)
class WorkerView:
    """A read-only view of a single worker row, for display and tests."""

    index: int
    protected: dict[str, Any]
    observed: dict[str, float]

    def __str__(self) -> str:
        parts = [f"{k}={v}" for k, v in self.protected.items()]
        parts += [f"{k}={v:.3g}" for k, v in self.observed.items()]
        return f"worker[{self.index}]({', '.join(parts)})"


class Population:
    """An immutable, column-oriented collection of workers.

    Parameters
    ----------
    schema:
        The attribute layout.
    protected:
        Mapping from protected attribute name to an integer column.  For
        categorical attributes the column holds codes in
        ``[0, cardinality)``; for integer attributes it holds raw values in
        ``[low, high]``.
    observed:
        Mapping from observed attribute name to a float column in
        ``[low, high]`` of the corresponding spec.
    """

    def __init__(
        self,
        schema: WorkerSchema,
        protected: Mapping[str, np.ndarray],
        observed: Mapping[str, np.ndarray],
    ) -> None:
        self.schema = schema
        self._protected: dict[str, np.ndarray] = {}
        self._observed: dict[str, np.ndarray] = {}

        sizes = set()
        for attr in schema.protected:
            if attr.name not in protected:
                raise PopulationError(f"missing protected column {attr.name!r}")
            col = np.asarray(protected[attr.name], dtype=np.int64)
            if col.ndim != 1:
                raise PopulationError(f"column {attr.name!r} must be one-dimensional")
            attr.validate_codes(col)
            col = col.copy()
            col.setflags(write=False)
            self._protected[attr.name] = col
            sizes.add(col.shape[0])
        for attr in schema.observed:
            if attr.name not in observed:
                raise PopulationError(f"missing observed column {attr.name!r}")
            col = np.asarray(observed[attr.name], dtype=np.float64)
            if col.ndim != 1:
                raise PopulationError(f"column {attr.name!r} must be one-dimensional")
            attr.validate(col)
            col = col.copy()
            col.setflags(write=False)
            self._observed[attr.name] = col
            sizes.add(col.shape[0])

        extra = (set(protected) - set(schema.protected_names)) | (
            set(observed) - set(schema.observed_names)
        )
        if extra:
            raise PopulationError(f"columns not declared in schema: {sorted(extra)}")
        if len(sizes) > 1:
            raise PopulationError(f"columns have inconsistent lengths: {sorted(sizes)}")
        self._size = sizes.pop() if sizes else 0
        self._partition_codes: dict[str, np.ndarray] = {}

    # ------------------------------------------------------------------ basics

    @property
    def size(self) -> int:
        """Number of workers."""
        return self._size

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return (
            f"Population(size={self._size}, "
            f"protected={list(self.schema.protected_names)}, "
            f"observed={list(self.schema.observed_names)})"
        )

    # ------------------------------------------------------------------ columns

    def protected_column(self, name: str) -> np.ndarray:
        """Raw protected column (codes for categoricals, raw ints otherwise)."""
        try:
            return self._protected[name]
        except KeyError:
            raise PopulationError(f"no protected column named {name!r}") from None

    def observed_column(self, name: str) -> np.ndarray:
        """Raw observed column (floats in the attribute's [low, high])."""
        try:
            return self._observed[name]
        except KeyError:
            raise PopulationError(f"no observed column named {name!r}") from None

    def observed_normalized(self, name: str) -> np.ndarray:
        """Observed column min-max normalised to [0, 1]."""
        return self.schema.observed_attribute(name).normalize(self.observed_column(name))

    def partition_codes(self, name: str) -> np.ndarray:
        """Partition codes of a protected attribute (bucketised for integers).

        Cached: partitioning algorithms call this in tight loops.
        """
        if name not in self._partition_codes:
            attr = self.schema.protected_attribute(name)
            codes = attr.partition_codes(self.protected_column(name))
            codes.setflags(write=False)
            self._partition_codes[name] = codes
        return self._partition_codes[name]

    # ------------------------------------------------------------------ rows

    def worker(self, index: int) -> WorkerView:
        """Decode one worker row into labels for display/tests."""
        if not 0 <= index < self._size:
            raise PopulationError(f"worker index {index} out of range [0, {self._size})")
        protected: dict[str, Any] = {}
        for attr in self.schema.protected:
            raw = self._protected[attr.name][index]
            if isinstance(attr, CategoricalAttribute):
                protected[attr.name] = attr.values[int(raw)]
            else:
                protected[attr.name] = int(raw)
        observed = {
            attr.name: float(self._observed[attr.name][index]) for attr in self.schema.observed
        }
        return WorkerView(index=index, protected=protected, observed=observed)

    def __iter__(self) -> Iterator[WorkerView]:
        for i in range(self._size):
            yield self.worker(i)

    # ------------------------------------------------------------------ subsets

    def subset(self, indices: np.ndarray) -> "Population":
        """A new population containing only the given rows (copies columns)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size and (indices.min() < 0 or indices.max() >= self._size):
            raise PopulationError("subset indices out of range")
        if np.unique(indices).size != indices.size:
            # A repeated row would double-count a worker in every histogram
            # and atom count derived from the subset.
            raise PopulationError("subset indices contain duplicates")
        return Population(
            self.schema,
            {name: col[indices] for name, col in self._protected.items()},
            {name: col[indices] for name, col in self._observed.items()},
        )

    def all_indices(self) -> np.ndarray:
        """Row indices of the full population (the root partition's members)."""
        return np.arange(self._size, dtype=np.int64)
