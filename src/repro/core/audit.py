"""High-level fairness auditing API.

:class:`FairnessAuditor` is the one-stop entry point a platform operator or
requester would use: give it the worker population, hand it a scoring
function (or raw scores), and it returns the most unfair partitioning a
chosen algorithm can find, wrapped in an :class:`AuditReport` that explains
*which* demographic groups the function treats differently and by how much.

    >>> auditor = FairnessAuditor(population)
    >>> report = auditor.audit(scoring_function)          # doctest: +SKIP
    >>> print(report.render())                            # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.algorithms import AlgorithmResult, get_algorithm
from repro.core.histogram import HistogramSpec
from repro.core.partition import Partition
from repro.core.population import Population
from repro.core.tree import build_split_tree, render_split_tree
from repro.core.unfairness import UnfairnessEvaluator
from repro.metrics.base import HistogramDistance

__all__ = ["FairnessAuditor", "AuditReport", "GroupSummary"]


@dataclass(frozen=True)
class GroupSummary:
    """Descriptive statistics of one partition found by the audit."""

    label: str
    size: int
    mean_score: float
    median_score: float
    min_score: float
    max_score: float

    def __str__(self) -> str:
        return (
            f"{self.label}: n={self.size}, mean={self.mean_score:.3f}, "
            f"median={self.median_score:.3f}, range=[{self.min_score:.3f}, "
            f"{self.max_score:.3f}]"
        )


@dataclass(frozen=True)
class AuditReport:
    """Everything an audit produced, with rendering helpers."""

    population: Population
    scores: np.ndarray
    result: AlgorithmResult
    groups: tuple[GroupSummary, ...]
    pairwise: np.ndarray

    @property
    def unfairness(self) -> float:
        """The objective value of the returned partitioning."""
        return self.result.unfairness

    def most_separated_pair(self) -> tuple[GroupSummary, GroupSummary, float]:
        """The two groups with the largest pairwise distance."""
        if len(self.groups) < 2:
            raise ValueError("the audit found a single group; no pairs to compare")
        i, j = np.unravel_index(int(np.argmax(self.pairwise)), self.pairwise.shape)
        return self.groups[i], self.groups[j], float(self.pairwise[i, j])

    def render(self, histograms: bool = False) -> str:
        """Multi-line report: headline, per-group stats and the split tree.

        With ``histograms=True``, appends a Figure-1-style ASCII histogram
        per group (largest groups first).
        """
        lines = [
            f"Fairness audit ({self.result.algorithm}, metric={self.result.metric})",
            f"  unfairness     : {self.unfairness:.4f}",
            f"  groups found   : {len(self.groups)}",
            f"  attributes used: "
            f"{', '.join(self.result.partitioning.attributes_used()) or '(none)'}",
            f"  runtime        : {self.result.runtime_seconds:.4f}s",
            "",
            "Groups (largest first):",
        ]
        lines += [f"  {g}" for g in sorted(self.groups, key=lambda g: -g.size)]
        if len(self.groups) >= 2:
            a, b, distance = self.most_separated_pair()
            lines += [
                "",
                f"Most separated pair (distance {distance:.4f}):",
                f"  {a}",
                f"  {b}",
            ]
        lines += [
            "",
            "Split tree:",
            render_split_tree(
                build_split_tree(self.result.partitioning), self.population.schema
            ),
        ]
        if histograms:
            from repro.reporting.histograms import render_partition_histograms

            lines += [
                "",
                "Score histograms:",
                render_partition_histograms(
                    self.population, self.scores, self.result.partitioning
                ),
            ]
        return "\n".join(lines)


class FairnessAuditor:
    """Audits scoring functions over a fixed worker population.

    Parameters
    ----------
    population:
        The workers being ranked.
    hist_spec:
        Score binning (default: 10 equal bins over [0, 1]).
    metric:
        Histogram distance quantifying group separation (default: EMD).
    weighting:
        ``"uniform"`` (the paper's objective) or ``"size"`` (pairs weighted
        by group sizes; damps small-cell sampling noise).
    """

    def __init__(
        self,
        population: Population,
        hist_spec: HistogramSpec | None = None,
        metric: "str | HistogramDistance" = "emd",
        weighting: str = "uniform",
    ) -> None:
        self.population = population
        self.hist_spec = hist_spec or HistogramSpec()
        self.metric = metric
        self.weighting = weighting

    def audit(
        self,
        scoring: "np.ndarray | object",
        algorithm: str = "balanced",
        rng: "np.random.Generator | int | None" = None,
        backend: "str | None" = None,
        workers: "int | None" = None,
        tracer=None,
        metrics=None,
        retry_policy=None,
        fault_config=None,
        deadline=None,
        kernel: "str | None" = None,
        **algorithm_options: object,
    ) -> AuditReport:
        """Find the most unfair partitioning under one scoring function.

        ``scoring`` is either a callable mapping the population to a score
        vector (any :class:`~repro.marketplace.scoring.ScoringFunction`) or a
        precomputed score array.  ``backend`` / ``workers`` select the
        evaluation engine's execution backend (see
        :class:`~repro.engine.engine.EvaluationEngine`); ``tracer`` /
        ``metrics`` attach observability hooks (see :mod:`repro.obs`);
        ``retry_policy`` / ``fault_config`` attach fault tolerance and chaos
        injection (see ``docs/robustness.md``); ``deadline`` caps the search
        cooperatively (see :mod:`repro.engine.deadline` — an expired run
        returns a flagged partial result).
        """
        from repro.obs.tracer import NULL_TRACER

        run_tracer = tracer if tracer is not None else NULL_TRACER
        scores = scoring(self.population) if callable(scoring) else np.asarray(scoring)
        with run_tracer.span("audit.search", algorithm=algorithm):
            result = get_algorithm(algorithm, **algorithm_options).run(
                self.population,
                scores,
                hist_spec=self.hist_spec,
                metric=self.metric,
                rng=rng,
                weighting=self.weighting,
                backend=backend,
                workers=workers,
                tracer=tracer,
                metrics=metrics,
                retry_policy=retry_policy,
                fault_config=fault_config,
                deadline=deadline,
                kernel=kernel,
            )
        with run_tracer.span("audit.report", n_groups=result.partitioning.k):
            groups = tuple(
                self._summarise(partition, scores) for partition in result.partitioning
            )
            evaluator = UnfairnessEvaluator(
                self.population, scores, self.hist_spec, self.metric, self.weighting
            )
            pairwise = evaluator.pairwise_matrix(result.partitioning.partitions)
        return AuditReport(
            population=self.population,
            scores=scores,
            result=result,
            groups=groups,
            pairwise=pairwise,
        )

    def audit_task(
        self,
        task: object,
        algorithm: str = "balanced",
        rng: "np.random.Generator | int | None" = None,
        backend: "str | None" = None,
        workers: "int | None" = None,
        tracer=None,
        metrics=None,
        retry_policy=None,
        fault_config=None,
        kernel: "str | None" = None,
        **algorithm_options: object,
    ) -> AuditReport:
        """Audit a task's ranking over the pool its requirements admit.

        Real platforms filter workers on hard requirements before ranking
        (see :class:`repro.marketplace.tasks.Task`); fairness of the shown
        ranking is a property of the *eligible* pool, which is what this
        audits.  The returned report's population is that subpopulation.
        """
        from repro.marketplace.tasks import eligible_workers

        mask = eligible_workers(self.population, task)
        pool = self.population.subset(np.nonzero(mask)[0])
        auditor = FairnessAuditor(pool, self.hist_spec, self.metric, self.weighting)
        return auditor.audit(
            task.scoring,
            algorithm=algorithm,
            rng=rng,
            backend=backend,
            workers=workers,
            tracer=tracer,
            metrics=metrics,
            retry_policy=retry_policy,
            fault_config=fault_config,
            kernel=kernel,
            **algorithm_options,
        )

    def compare_algorithms(
        self,
        scoring: "np.ndarray | object",
        algorithms: "tuple[str, ...] | list[str]",
        rng_seed: int = 0,
        backend: "str | None" = None,
        workers: "int | None" = None,
        **algorithm_options: object,
    ) -> dict[str, AuditReport]:
        """Audit with several algorithms, one report each (same scores)."""
        scores = scoring(self.population) if callable(scoring) else np.asarray(scoring)
        return {
            name: self.audit(
                scores,
                algorithm=name,
                rng=rng_seed,
                backend=backend,
                workers=workers,
                **algorithm_options,
            )
            for name in algorithms
        }

    def _summarise(self, partition: Partition, scores: np.ndarray) -> GroupSummary:
        member_scores = scores[partition.indices]
        return GroupSummary(
            label=partition.label(self.population.schema),
            size=partition.size,
            mean_score=float(member_scores.mean()),
            median_score=float(np.median(member_scores)),
            min_score=float(member_scores.min()),
            max_score=float(member_scores.max()),
        )
