"""Histogram-distance interface and registry.

The paper's unfairness measure is the average pairwise Earth Mover's Distance
between partition score histograms, but its future-work section explicitly
mentions "investigating other formulations and metrics for fairness instead
of the Earth Mover's Distance".  All algorithms in this library therefore
take a pluggable :class:`HistogramDistance`; :mod:`repro.metrics.divergences`
provides the standard alternatives.

Distances operate on *normalised* histograms (probability mass vectors) that
share a common :class:`repro.core.histogram.HistogramSpec`.
"""

from __future__ import annotations

import abc
import itertools

import numpy as np

from repro.core.histogram import HistogramSpec
from repro.exceptions import MetricError

__all__ = [
    "HistogramDistance",
    "available_metrics",
    "get_metric",
    "register_metric",
]


class HistogramDistance(abc.ABC):
    """A distance between two normalised score histograms.

    Subclasses implement :meth:`distance`; the aggregate helpers
    (:meth:`average_pairwise`, :meth:`average_cross`) have generic O(k²)
    implementations that concrete metrics may override with faster
    closed forms (EMD does).
    """

    #: Registry key; subclasses must set this.
    name: str = ""

    @abc.abstractmethod
    def distance(self, p: np.ndarray, q: np.ndarray, spec: HistogramSpec) -> float:
        """Distance between two probability-mass histograms under ``spec``."""

    def __call__(self, p: np.ndarray, q: np.ndarray, spec: HistogramSpec) -> float:
        p = _check_pmf(p, spec)
        q = _check_pmf(q, spec)
        return self.distance(p, q, spec)

    def average_pairwise(
        self,
        pmfs: np.ndarray,
        spec: HistogramSpec,
        weights: np.ndarray | None = None,
    ) -> float:
        """(Weighted) average of ``distance`` over all unordered pairs of rows.

        This is the paper's ``averageEMD`` over a set of partitions.  Returns
        0.0 for fewer than two histograms (a partitioning with a single
        partition exhibits no unfairness).  With ``weights`` (one per
        histogram), pair {i, j} carries weight ``weights[i] * weights[j]`` —
        the size-weighted objective variant (DESIGN.md; the paper's
        Definition 2 is the unweighted case).
        """
        pmfs = np.atleast_2d(np.asarray(pmfs, dtype=np.float64))
        k = pmfs.shape[0]
        if k < 2:
            return 0.0
        if weights is None:
            total = 0.0
            for i, j in itertools.combinations(range(k), 2):
                total += self.distance(pmfs[i], pmfs[j], spec)
            return total / (k * (k - 1) / 2)
        w = np.asarray(weights, dtype=np.float64)
        if w.shape != (k,):
            raise MetricError(f"weights shape {w.shape} does not match {k} histograms")
        if w.min() < 0:
            raise MetricError("pair weights must be non-negative")
        total = 0.0
        for i, j in itertools.combinations(range(k), 2):
            total += w[i] * w[j] * self.distance(pmfs[i], pmfs[j], spec)
        weight_pairs = (w.sum() ** 2 - np.dot(w, w)) / 2.0
        return total / weight_pairs if weight_pairs > 0 else 0.0

    def average_cross(
        self, left: np.ndarray, right: np.ndarray, spec: HistogramSpec
    ) -> float:
        """Average of ``distance`` over all pairs (row of left, row of right)."""
        left = np.atleast_2d(np.asarray(left, dtype=np.float64))
        right = np.atleast_2d(np.asarray(right, dtype=np.float64))
        if left.shape[0] == 0 or right.shape[0] == 0:
            return 0.0
        total = 0.0
        for i in range(left.shape[0]):
            for j in range(right.shape[0]):
                total += self.distance(left[i], right[j], spec)
        return total / (left.shape[0] * right.shape[0])

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


def _check_pmf(p: np.ndarray, spec: HistogramSpec) -> np.ndarray:
    p = np.asarray(p, dtype=np.float64)
    if p.ndim != 1 or p.shape[0] != spec.bins:
        raise MetricError(
            f"histogram has shape {p.shape}, expected ({spec.bins},) for this spec"
        )
    if p.size and not np.all(np.isfinite(p)):
        raise MetricError("histogram contains non-finite mass")
    if p.min() < 0:
        raise MetricError("histogram contains negative mass")
    total = p.sum()
    if not np.isclose(total, 1.0, atol=1e-8):
        raise MetricError(f"histogram mass must sum to 1, got {total}")
    return p


_REGISTRY: dict[str, HistogramDistance] = {}


def register_metric(metric: HistogramDistance) -> HistogramDistance:
    """Register a metric instance under its ``name`` for lookup by string."""
    if not metric.name:
        raise MetricError(f"metric {metric!r} has no name")
    _REGISTRY[metric.name] = metric
    return metric


def get_metric(name: "str | HistogramDistance") -> HistogramDistance:
    """Resolve a metric by name (or pass an instance through)."""
    if isinstance(name, HistogramDistance):
        return name
    try:
        return _REGISTRY[name]
    except KeyError:
        raise MetricError(
            f"unknown metric {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_metrics() -> tuple[str, ...]:
    """Names of all registered metrics."""
    return tuple(sorted(_REGISTRY))
