"""Earth Mover's Distance between one-dimensional score histograms.

For histograms over the same equal-width binning, with ground distance equal
to the distance between bin centers, the EMD has the classic closed form

    EMD(p, q) = bin_width * sum_k | CDF_p(k) - CDF_q(k) |

(Werman et al.; also the 1-D Wasserstein-1 distance).  Measuring the ground
distance in *score units* (bin_width, not bin index) is what makes the
paper's Table 3 readable: a function that scores one group above 0.8 and
another below 0.2 produces an EMD of roughly 0.8 — exactly the value the
paper reports for ``balanced`` on the gender-biased function f6.

Two aggregate fast paths matter for the partitioning search:

* :func:`pairwise_emd_matrix` — the dense k×k matrix, O(k² · bins), used for
  reporting and small k.
* :meth:`EMDDistance.average_pairwise` — the average over all pairs in
  O(bins · k log k), using the fact that for each bin the sum over pairs of
  |CDF_i - CDF_j| is a sorted-prefix-sum computation.  This keeps the
  ``all-attributes`` baseline (hundreds to thousands of partitions) cheap.
"""

from __future__ import annotations

import numpy as np

from repro.core.histogram import HistogramSpec
from repro.exceptions import MetricError
from repro.metrics.base import HistogramDistance, register_metric

__all__ = [
    "EMDDistance",
    "emd",
    "pairwise_emd_matrix",
    "average_pairwise_emd",
    "sum_pairwise_abs_differences",
]


def emd(p: np.ndarray, q: np.ndarray, bin_width: float = 1.0) -> float:
    """EMD between two probability-mass histograms on a shared binning.

    ``bin_width`` is the ground distance between adjacent bins; pass
    ``spec.bin_width`` to measure in score units, or 1.0 to measure in bins.
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    if p.shape != q.shape:
        raise MetricError(f"histogram shapes differ: {p.shape} vs {q.shape}")
    delta = np.cumsum(p - q)
    return float(bin_width * np.abs(delta).sum())


def pairwise_emd_matrix(pmfs: np.ndarray, bin_width: float = 1.0) -> np.ndarray:
    """Dense matrix of EMDs between all rows of a (k, bins) pmf matrix."""
    pmfs = np.atleast_2d(np.asarray(pmfs, dtype=np.float64))
    cdfs = np.cumsum(pmfs, axis=1)
    k = cdfs.shape[0]
    out = np.zeros((k, k), dtype=np.float64)
    for i in range(k):
        out[i, i + 1 :] = bin_width * np.abs(cdfs[i + 1 :] - cdfs[i]).sum(axis=1)
    return out + out.T


def sum_pairwise_abs_differences(
    values: np.ndarray, weights: np.ndarray | None = None
) -> float:
    """(Weighted) sum over unordered pairs of |values[i] - values[j]|, O(n log n).

    Unweighted: with ``x`` sorted ascending, sum_{i<j} (x[j] - x[i]) equals
    sum_j x[j] * (2j - n + 1) for 0-based j.  Weighted: each pair {i, j}
    contributes ``weights[i] * weights[j] * |x_i - x_j|``; with x sorted,
    sum_{i<j} w_i w_j (x_j - x_i) = sum_j w_j (x_j * W_<j - S_<j) where
    W_<j and S_<j are prefix sums of w and w*x.
    """
    x = np.asarray(values, dtype=np.float64)
    n = x.shape[0]
    if n < 2:
        return 0.0
    if weights is None:
        x = np.sort(x)
        coeff = 2.0 * np.arange(n) - (n - 1)
        return float(np.dot(x, coeff))
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != x.shape:
        raise MetricError(f"weights shape {w.shape} does not match values {x.shape}")
    order = np.argsort(x, kind="stable")
    x, w = x[order], w[order]
    weight_prefix = np.concatenate([[0.0], np.cumsum(w)[:-1]])
    weighted_x_prefix = np.concatenate([[0.0], np.cumsum(w * x)[:-1]])
    return float(np.sum(w * (x * weight_prefix - weighted_x_prefix)))


def average_pairwise_emd(
    pmfs: np.ndarray, bin_width: float = 1.0, weights: np.ndarray | None = None
) -> float:
    """(Weighted) average EMD over all unordered pairs, O(bins · k log k).

    The EMD between rows i and j is bin_width * sum_k |CDF_i[k] - CDF_j[k]|,
    so the sum over pairs decomposes per bin into a sum of pairwise absolute
    differences of one column of the CDF matrix.

    ``weights`` (one per histogram, e.g. partition sizes) makes the average
    pair-weighted: pair {i, j} carries weight ``weights[i] * weights[j]``.
    The unweighted case is the paper's Definition 2.
    """
    pmfs = np.atleast_2d(np.asarray(pmfs, dtype=np.float64))
    k = pmfs.shape[0]
    if k < 2:
        return 0.0
    cdfs = np.cumsum(pmfs, axis=1)
    if weights is None:
        total = sum(
            sum_pairwise_abs_differences(cdfs[:, b]) for b in range(cdfs.shape[1])
        )
        n_pairs = k * (k - 1) / 2
        return float(bin_width * total / n_pairs)
    w = np.asarray(weights, dtype=np.float64)
    if w.shape != (k,):
        raise MetricError(f"weights shape {w.shape} does not match {k} histograms")
    if w.min() < 0:
        raise MetricError("pair weights must be non-negative")
    total = sum(
        sum_pairwise_abs_differences(cdfs[:, b], w) for b in range(cdfs.shape[1])
    )
    weight_pairs = (w.sum() ** 2 - np.dot(w, w)) / 2.0
    if weight_pairs <= 0:
        return 0.0
    return float(bin_width * total / weight_pairs)


class EMDDistance(HistogramDistance):
    """The paper's unfairness metric: 1-D EMD in score units."""

    name = "emd"

    def distance(self, p: np.ndarray, q: np.ndarray, spec: HistogramSpec) -> float:
        return emd(p, q, spec.bin_width)

    def average_pairwise(
        self,
        pmfs: np.ndarray,
        spec: HistogramSpec,
        weights: np.ndarray | None = None,
    ) -> float:
        return average_pairwise_emd(pmfs, spec.bin_width, weights)

    def average_cross(
        self, left: np.ndarray, right: np.ndarray, spec: HistogramSpec
    ) -> float:
        left = np.atleast_2d(np.asarray(left, dtype=np.float64))
        right = np.atleast_2d(np.asarray(right, dtype=np.float64))
        if left.shape[0] == 0 or right.shape[0] == 0:
            return 0.0
        lc = np.cumsum(left, axis=1)
        rc = np.cumsum(right, axis=1)
        # (nl, nr, bins) broadcast is fine here: cross sets are small (a node
        # and its siblings), unlike the all-pairs case handled above.
        diffs = np.abs(lc[:, None, :] - rc[None, :, :]).sum(axis=2)
        return float(spec.bin_width * diffs.mean())


register_metric(EMDDistance())
