"""Histogram distances: the paper's EMD plus the future-work alternatives.

Importing this package registers all metrics; resolve one with
:func:`repro.metrics.base.get_metric`.
"""

from repro.metrics.base import (
    HistogramDistance,
    available_metrics,
    get_metric,
    register_metric,
)
from repro.metrics.divergences import (
    HellingerDistance,
    JensenShannonDistance,
    KolmogorovSmirnovDistance,
    TotalVariationDistance,
)
from repro.metrics.emd import (
    EMDDistance,
    average_pairwise_emd,
    emd,
    pairwise_emd_matrix,
    sum_pairwise_abs_differences,
)
from repro.metrics.transport import (
    ThresholdedEMDDistance,
    ground_distance_matrix,
    transport_emd,
)

__all__ = [
    "HistogramDistance",
    "available_metrics",
    "get_metric",
    "register_metric",
    "EMDDistance",
    "emd",
    "pairwise_emd_matrix",
    "average_pairwise_emd",
    "sum_pairwise_abs_differences",
    "KolmogorovSmirnovDistance",
    "TotalVariationDistance",
    "JensenShannonDistance",
    "HellingerDistance",
    "ThresholdedEMDDistance",
    "transport_emd",
    "ground_distance_matrix",
]
