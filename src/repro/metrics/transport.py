"""General EMD via the transportation linear program, and thresholded EMD.

The paper cites Pele & Werman, *Fast and robust earth mover's distances*
(ICCV 2009, reference [7]) as its EMD.  On one-dimensional equal-width
histograms the EMD has the closed form implemented in
:mod:`repro.metrics.emd`; this module supplies the general machinery that
reference actually describes:

* :func:`transport_emd` — EMD between two histograms under an *arbitrary*
  ground-distance matrix, solved exactly as a transportation LP
  (``scipy.optimize.linprog``, HiGHS).  Histogram sizes here are tiny
  (tens of bins), so the LP is instantaneous.
* :class:`ThresholdedEMDDistance` — Pele & Werman's robust EMD with ground
  distance ``min(d, threshold)``: moving mass further than the threshold
  costs no more than the threshold, which caps the influence of extreme
  outlier bins.  Registered as ``"emd-t"``.

Both are validated against the closed form in tests (with the plain
``|i - j| * bin_width`` ground distance they must agree exactly).
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.core.histogram import HistogramSpec
from repro.exceptions import MetricError
from repro.metrics.base import HistogramDistance, register_metric

__all__ = [
    "ground_distance_matrix",
    "transport_emd",
    "ThresholdedEMDDistance",
]


def ground_distance_matrix(
    spec: HistogramSpec, threshold: float | None = None
) -> np.ndarray:
    """Pairwise bin-center distances, optionally clamped at ``threshold``.

    Entry (i, j) is ``|center_i - center_j|`` in score units — the cost of
    moving one unit of probability mass from bin i to bin j.
    """
    centers = spec.centers
    distances = np.abs(centers[:, None] - centers[None, :])
    if threshold is not None:
        if threshold <= 0:
            raise MetricError(f"threshold must be positive, got {threshold}")
        distances = np.minimum(distances, threshold)
    return distances


def transport_emd(p: np.ndarray, q: np.ndarray, distances: np.ndarray) -> float:
    """Exact EMD between two equal-mass histograms for any ground distance.

    Solves  min <F, D>  s.t.  F 1 = p,  F^T 1 = q,  F >= 0  (the classic
    transportation problem).  ``p`` and ``q`` must carry the same total
    mass (normalised histograms do).
    """
    p = np.asarray(p, dtype=np.float64)
    q = np.asarray(q, dtype=np.float64)
    distances = np.asarray(distances, dtype=np.float64)
    n = p.shape[0]
    if q.shape != (n,) or distances.shape != (n, n):
        raise MetricError(
            f"inconsistent shapes: p={p.shape}, q={q.shape}, D={distances.shape}"
        )
    if not np.isclose(p.sum(), q.sum(), atol=1e-8):
        raise MetricError(
            f"EMD needs equal total mass, got {p.sum()} vs {q.sum()}"
        )
    if np.any(distances < 0):
        raise MetricError("ground distances must be non-negative")

    # Rescale q so total masses match to machine precision — a float-epsilon
    # mismatch otherwise makes the equality system strictly infeasible.
    if q.sum() > 0:
        q = q * (p.sum() / q.sum())

    # Flatten the flow matrix row-major: F[i, j] = x[i * n + j].
    cost = distances.reshape(-1)
    # Row sums equal p (n constraints), column sums equal q.  With equal
    # masses the last row and last column constraints are each implied by
    # the others, so drop BOTH.  Dropping only one is not enough: the free
    # constraint then has to absorb the floating-point residual
    # ``p.sum() - q[:-1].sum()``, which can round to a (tiny) negative
    # number when ``q[-1]`` is near zero — and a negative required flow
    # makes HiGHS report the system infeasible.  With both dropped, the
    # free last row/column can always absorb the residual non-negatively.
    row_constraints = np.zeros((n, n * n))
    col_constraints = np.zeros((n, n * n))
    for i in range(n):
        row_constraints[i, i * n : (i + 1) * n] = 1.0
        col_constraints[i, i::n] = 1.0
    a_eq = np.vstack([row_constraints[:-1], col_constraints[:-1]])
    b_eq = np.concatenate([p[:-1], q[:-1]])

    result = linprog(cost, A_eq=a_eq, b_eq=b_eq, method="highs")
    if not result.success:  # pragma: no cover - HiGHS solves feasible LPs
        raise MetricError(f"transport LP failed: {result.message}")
    # HiGHS solves the rescaled system to its own tolerance, so the reported
    # objective can land marginally above the analytic upper bound: no
    # transport plan can cost more than moving ALL the mass at the largest
    # ground distance.  Clamp to ``max(D) * total_mass`` (for a thresholded
    # ground distance this is ``threshold * total_mass``, the bound
    # ThresholdedEMDDistance advertises) and to non-negativity below.
    upper_bound = float(distances.max() * p.sum())
    return float(min(max(result.fun, 0.0), upper_bound))


class ThresholdedEMDDistance(HistogramDistance):
    """Pele & Werman's robust EMD: ground distance clamped at a threshold.

    Parameters
    ----------
    threshold:
        Maximum per-unit moving cost in score units.  With a threshold at
        or above the score range this equals the plain EMD; small
        thresholds make the metric insensitive to *how far* beyond the
        threshold mass has moved (robustness to outliers).
    """

    name = "emd-t"

    def __init__(self, threshold: float = 0.3) -> None:
        if threshold <= 0:
            raise MetricError(f"threshold must be positive, got {threshold}")
        self.threshold = threshold

    def distance(self, p: np.ndarray, q: np.ndarray, spec: HistogramSpec) -> float:
        distances = ground_distance_matrix(spec, self.threshold)
        return transport_emd(p, q, distances)

    def __repr__(self) -> str:
        return f"ThresholdedEMDDistance(threshold={self.threshold})"


register_metric(ThresholdedEMDDistance())
