"""Alternative histogram distances.

The paper's future work section states: "We are also investigating other
formulations and metrics for fairness instead of the Earth Mover's Distance."
This module provides the standard candidates so the optimisation objective
can be swapped without touching the algorithms:

* Kolmogorov–Smirnov statistic (max CDF gap),
* total variation distance,
* Jensen–Shannon divergence (and its square-root metric),
* Hellinger distance.

All of them operate on normalised histograms sharing one
:class:`~repro.core.histogram.HistogramSpec` and are registered in the metric
registry under their ``name``.
"""

from __future__ import annotations

import numpy as np

from repro.core.histogram import HistogramSpec
from repro.exceptions import MetricError
from repro.metrics.base import HistogramDistance, register_metric

__all__ = [
    "KolmogorovSmirnovDistance",
    "TotalVariationDistance",
    "JensenShannonDistance",
    "HellingerDistance",
]


class KolmogorovSmirnovDistance(HistogramDistance):
    """Maximum absolute gap between the two histogram CDFs, in [0, 1]."""

    name = "ks"

    def distance(self, p: np.ndarray, q: np.ndarray, spec: HistogramSpec) -> float:
        return float(np.abs(np.cumsum(p - q)).max())


class TotalVariationDistance(HistogramDistance):
    """Half the L1 distance between the mass vectors, in [0, 1]."""

    name = "tv"

    def distance(self, p: np.ndarray, q: np.ndarray, spec: HistogramSpec) -> float:
        return float(0.5 * np.abs(p - q).sum())


class JensenShannonDistance(HistogramDistance):
    """Square root of the Jensen–Shannon divergence (a true metric), in [0, 1].

    Uses base-2 logarithms so the underlying divergence is bounded by 1.
    """

    name = "js"

    def distance(self, p: np.ndarray, q: np.ndarray, spec: HistogramSpec) -> float:
        m = 0.5 * (p + q)
        divergence = 0.5 * _kl(p, m) + 0.5 * _kl(q, m)
        # Clip tiny negative values from floating-point noise before sqrt.
        return float(np.sqrt(max(divergence, 0.0)))


class HellingerDistance(HistogramDistance):
    """Hellinger distance between the mass vectors, in [0, 1]."""

    name = "hellinger"

    def distance(self, p: np.ndarray, q: np.ndarray, spec: HistogramSpec) -> float:
        return float(np.sqrt(0.5 * ((np.sqrt(p) - np.sqrt(q)) ** 2).sum()))


def _kl(p: np.ndarray, q: np.ndarray) -> float:
    """KL(p || q) in bits, with the 0·log(0) = 0 convention."""
    mask = p > 0
    if np.any(q[mask] == 0):
        raise MetricError("KL divergence undefined: p has mass where q has none")
    return float(np.sum(p[mask] * np.log2(p[mask] / q[mask])))


register_metric(KolmogorovSmirnovDistance())
register_metric(TotalVariationDistance())
register_metric(JensenShannonDistance())
register_metric(HellingerDistance())
