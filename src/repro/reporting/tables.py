"""Paper-style text tables for experiment results.

The formatter mirrors the layout of the paper's Tables 1-3 (algorithms as
rows, scoring functions as columns) and can print our measured values side by
side with the paper's reported values for EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Callable

from repro.simulation.runner import ExperimentResult, ExperimentRow

__all__ = ["format_table", "format_comparison_table"]


def _grid(
    headers: list[str], rows: list[list[str]], title: str | None = None
) -> str:
    widths = [
        max(len(str(cell)) for cell in column)
        for column in zip(headers, *rows)
    ]
    def line(cells: list[str]) -> str:
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))

    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append("  ".join("-" * w for w in widths))
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def format_table(
    result: ExperimentResult,
    value: "Callable[[ExperimentRow], float] | str" = "unfairness",
    title: str | None = None,
    precision: int = 3,
) -> str:
    """One value per (algorithm, function) cell, paper-table layout.

    ``value`` is an :class:`~repro.simulation.runner.ExperimentRow` attribute
    name (``"unfairness"``, ``"runtime_seconds"``, ``"n_partitions"``, ...)
    or a callable extracting a float from a row.
    """
    extract = (lambda row: getattr(row, value)) if isinstance(value, str) else value
    functions = list(result.functions())
    headers = ["Algorithm"] + functions
    rows = []
    for algorithm in result.algorithms():
        cells = [algorithm]
        for function in functions:
            cells.append(f"{extract(result.cell(algorithm, function)):.{precision}f}")
        rows.append(cells)
    return _grid(headers, rows, title)


def format_comparison_table(
    result: ExperimentResult,
    reference: dict[str, dict[str, float]],
    value: "Callable[[ExperimentRow], float] | str" = "unfairness",
    title: str | None = None,
    precision: int = 3,
) -> str:
    """Measured values next to the paper's, as ``measured (paper ref)``.

    ``reference`` has the shape of the constants in
    :mod:`repro.reporting.paper_reference`.
    """
    extract = (lambda row: getattr(row, value)) if isinstance(value, str) else value
    functions = list(result.functions())
    headers = ["Algorithm"] + functions
    rows = []
    for algorithm in result.algorithms():
        cells = [algorithm]
        for function in functions:
            measured = extract(result.cell(algorithm, function))
            paper = reference.get(algorithm, {}).get(function)
            if paper is None:
                cells.append(f"{measured:.{precision}f} (n/a)")
            else:
                cells.append(f"{measured:.{precision}f} ({paper:.{precision}f})")
        rows.append(cells)
    return _grid(headers, rows, title)
