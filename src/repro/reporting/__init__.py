"""Reporting: paper-style tables and the paper's reference numbers."""

from repro.reporting.paper_reference import (
    PAPER_FUNCTIONS_BIASED,
    PAPER_FUNCTIONS_RANDOM,
    TABLE1_EMD,
    TABLE1_RUNTIME,
    TABLE2_EMD,
    TABLE2_RUNTIME,
    TABLE3_EMD,
)
from repro.reporting.histograms import (
    render_histogram,
    render_partition_histograms,
)
from repro.reporting.tables import format_comparison_table, format_table

__all__ = [
    "format_table",
    "format_comparison_table",
    "render_histogram",
    "render_partition_histograms",
    "TABLE1_EMD",
    "TABLE1_RUNTIME",
    "TABLE2_EMD",
    "TABLE2_RUNTIME",
    "TABLE3_EMD",
    "PAPER_FUNCTIONS_RANDOM",
    "PAPER_FUNCTIONS_BIASED",
]
