"""ASCII rendering of score histograms.

Figure 1 of the paper shows one histogram per partition; this module renders
the same picture in a terminal so audit reports can *show* the distributions
whose distance the objective measures, e.g.::

    gender=Male (n=3687)
      [0.0, 0.1) ▏
      ...
      [0.8, 0.9) ██████████████████████████
      [0.9, 1.0] ██████████████████████████

Rendering is width-normalised per histogram (the EMD compares probability
mass, not counts), with counts available in a side column.
"""

from __future__ import annotations

import numpy as np

from repro.core.histogram import HistogramSpec
from repro.core.partition import Partition, Partitioning
from repro.core.population import Population
from repro.core.schema import WorkerSchema
from repro.exceptions import MetricError

__all__ = ["render_histogram", "render_partition_histograms"]

_BLOCKS = " ▏▎▍▌▋▊▉█"


def _bar(fraction: float, width: int) -> str:
    """A unicode bar of ``fraction * width`` character cells."""
    if not 0.0 <= fraction <= 1.0 + 1e-9:
        raise MetricError(f"bar fraction must be in [0, 1], got {fraction}")
    cells = fraction * width
    full = int(cells)
    remainder = cells - full
    partial = _BLOCKS[int(remainder * 8)] if full < width else ""
    return "█" * full + partial


def render_histogram(
    counts: np.ndarray,
    spec: HistogramSpec,
    width: int = 30,
    show_counts: bool = True,
) -> str:
    """Render one histogram as ASCII bars, one line per bin.

    Bars are scaled so the fullest bin spans ``width`` cells.
    """
    counts = np.asarray(counts, dtype=np.float64)
    if counts.shape != (spec.bins,):
        raise MetricError(
            f"histogram has shape {counts.shape}, expected ({spec.bins},)"
        )
    if counts.size and counts.min() < 0:
        raise MetricError("histogram counts must be non-negative")
    peak = counts.max() if counts.size else 0.0
    edges = spec.edges
    lines = []
    for i in range(spec.bins):
        closing = "]" if i == spec.bins - 1 else ")"
        label = f"[{edges[i]:.2f}, {edges[i + 1]:.2f}{closing}"
        bar = _bar(counts[i] / peak if peak else 0.0, width)
        suffix = f" {int(counts[i])}" if show_counts else ""
        lines.append(f"{label} {bar}{suffix}")
    return "\n".join(lines)


def render_partition_histograms(
    population: Population,
    scores: np.ndarray,
    partitioning: "Partitioning | list[Partition]",
    spec: HistogramSpec | None = None,
    width: int = 30,
    max_partitions: int = 8,
) -> str:
    """Figure-1-style picture: one labelled histogram per partition.

    Partitions are shown largest first; if there are more than
    ``max_partitions``, the remainder is summarised in one line (an audit of
    random data can return hundreds of cells — showing them all helps no
    one).
    """
    spec = spec or HistogramSpec()
    scores = np.asarray(scores, dtype=np.float64)
    schema: WorkerSchema = population.schema
    partitions = sorted(list(partitioning), key=lambda p: (-p.size, p.constraints))
    shown = partitions[:max_partitions]
    blocks = []
    for partition in shown:
        histogram = spec.histogram(scores[partition.indices])
        blocks.append(
            f"{partition.label(schema)} (n={partition.size})\n"
            + render_histogram(histogram, spec, width)
        )
    if len(partitions) > len(shown):
        hidden = len(partitions) - len(shown)
        blocks.append(f"... and {hidden} smaller partitions not shown")
    return "\n\n".join(blocks)
