"""The paper's reported numbers, transcribed from Tables 1-3.

Benchmarks print these next to our measured values so EXPERIMENTS.md can
record paper-vs-measured for every artefact.  Values are keyed as
``TABLE[algorithm][function] -> value``.

Runtimes are the authors' wall-clock seconds on their machine with their
implementation; our vectorised implementation is orders of magnitude faster,
so runtimes are compared on *shape* (orderings, growth), never absolutely.
"""

from __future__ import annotations

__all__ = [
    "TABLE1_EMD",
    "TABLE1_RUNTIME",
    "TABLE2_EMD",
    "TABLE2_RUNTIME",
    "TABLE3_EMD",
    "PAPER_FUNCTIONS_RANDOM",
    "PAPER_FUNCTIONS_BIASED",
]

#: Function columns of Tables 1-2 and Table 3, in paper order.
PAPER_FUNCTIONS_RANDOM: tuple[str, ...] = ("f1", "f2", "f3", "f4", "f5")
PAPER_FUNCTIONS_BIASED: tuple[str, ...] = ("f6", "f7", "f8", "f9")

#: Table 1 — average EMD, 500 workers, random functions.
TABLE1_EMD: dict[str, dict[str, float]] = {
    "unbalanced": {"f1": 0.195, "f2": 0.191, "f3": 0.179, "f4": 0.247, "f5": 0.257},
    "r-unbalanced": {"f1": 0.193, "f2": 0.193, "f3": 0.177, "f4": 0.243, "f5": 0.253},
    "balanced": {"f1": 0.196, "f2": 0.194, "f3": 0.177, "f4": 0.246, "f5": 0.253},
    "r-balanced": {"f1": 0.195, "f2": 0.194, "f3": 0.177, "f4": 0.246, "f5": 0.253},
    "all-attributes": {"f1": 0.195, "f2": 0.193, "f3": 0.177, "f4": 0.246, "f5": 0.253},
}

#: Table 1 — runtime in seconds (authors' implementation and machine).
TABLE1_RUNTIME: dict[str, dict[str, float]] = {
    "unbalanced": {"f1": 20.987, "f2": 23.715, "f3": 22.823, "f4": 29.504, "f5": 28.845},
    "r-unbalanced": {"f1": 28.33, "f2": 26.871, "f3": 28.354, "f4": 27.333, "f5": 28.372},
    "balanced": {"f1": 311.17, "f2": 323.16, "f3": 326.68, "f4": 330.61, "f5": 327.22},
    "r-balanced": {"f1": 131.87, "f2": 122.49, "f3": 119.97, "f4": 127.06, "f5": 124.46},
    "all-attributes": {"f1": 42.708, "f2": 42.494, "f3": 42.597, "f4": 42.235, "f5": 42.337},
}

#: Table 2 — average EMD, 7300 workers, random functions.
TABLE2_EMD: dict[str, dict[str, float]] = {
    "unbalanced": {"f1": 0.161, "f2": 0.162, "f3": 0.151, "f4": 0.208, "f5": 0.209},
    "r-unbalanced": {"f1": 0.162, "f2": 0.163, "f3": 0.151, "f4": 0.208, "f5": 0.209},
    "balanced": {"f1": 0.163, "f2": 0.163, "f3": 0.151, "f4": 0.210, "f5": 0.211},
    "r-balanced": {"f1": 0.163, "f2": 0.163, "f3": 0.122, "f4": 0.210, "f5": 0.211},
    "all-attributes": {"f1": 0.163, "f2": 0.163, "f3": 0.151, "f4": 0.210, "f5": 0.211},
}

#: Table 2 — runtime in seconds (authors' implementation and machine).
TABLE2_RUNTIME: dict[str, dict[str, float]] = {
    "unbalanced": {
        "f1": 1169.224, "f2": 1246.651, "f3": 1205.963, "f4": 1292.506, "f5": 1245.037,
    },
    "r-unbalanced": {
        "f1": 1401.36, "f2": 1391.541, "f3": 1358.795, "f4": 1290.977, "f5": 1397.894,
    },
    "balanced": {
        "f1": 5733.528, "f2": 5745.611, "f3": 5693.681, "f4": 5840.131, "f5": 5808.715,
    },
    "r-balanced": {
        "f1": 3174.327, "f2": 3240.727, "f3": 2358.744, "f4": 3115.123, "f5": 3120.553,
    },
    "all-attributes": {
        "f1": 1453.626, "f2": 1449.466, "f3": 1450.712, "f4": 469.839, "f5": 1467.606,
    },
}

#: Table 3 — average EMD, 7300 workers, biased functions.
TABLE3_EMD: dict[str, dict[str, float]] = {
    "unbalanced": {"f6": 0.040, "f7": 0.164, "f8": 0.460, "f9": 0.317},
    "r-unbalanced": {"f6": 0.399, "f7": 0.362, "f8": 0.322, "f9": 0.350},
    "balanced": {"f6": 0.800, "f7": 0.427, "f8": 0.460, "f9": 0.359},
    "r-balanced": {"f6": 0.496, "f7": 0.368, "f8": 0.330, "f9": 0.301},
    "all-attributes": {"f6": 0.420, "f7": 0.368, "f8": 0.337, "f9": 0.359},
}
