"""Persistence: populations to/from CSV, experiment results to JSON."""

from repro.io.serialization import (
    audit_report_to_dict,
    load_experiment_rows,
    load_population,
    save_audit_report,
    save_experiment_result,
    save_population,
    schema_from_dict,
    schema_to_dict,
)

__all__ = [
    "save_population",
    "load_population",
    "schema_to_dict",
    "schema_from_dict",
    "save_experiment_result",
    "load_experiment_rows",
    "audit_report_to_dict",
    "save_audit_report",
]
