"""Persistence: populations to/from CSV, experiment results to JSON, and
crash-safe write primitives shared by every durable store."""

from repro.io.atomic import (
    atomic_write_bytes,
    atomic_write_text,
    ensure_directory,
    fsync_directory,
    fsync_handle,
)
from repro.io.records import (
    canonical_json,
    decode_line,
    encode_record,
    scan_records,
)
from repro.io.serialization import (
    audit_report_to_dict,
    load_experiment_rows,
    load_population,
    save_audit_report,
    save_experiment_result,
    save_population,
    schema_from_dict,
    schema_to_dict,
)

__all__ = [
    "save_population",
    "load_population",
    "schema_to_dict",
    "schema_from_dict",
    "save_experiment_result",
    "load_experiment_rows",
    "audit_report_to_dict",
    "save_audit_report",
    "atomic_write_bytes",
    "atomic_write_text",
    "ensure_directory",
    "fsync_directory",
    "fsync_handle",
    "canonical_json",
    "decode_line",
    "encode_record",
    "scan_records",
]
