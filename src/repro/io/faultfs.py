"""Injectable filesystem fault plane (chaos mode for durable I/O).

Every durable write in the system — journal appends, group-commit fsyncs,
snapshot/checkpoint replaces — funnels through this module's free
functions (:func:`write`, :func:`fsync`) instead of calling the OS
directly.  With no plane installed they are zero-cost pass-throughs; with
a :class:`FaultPlane` installed (``serve --chaos <spec>``, tests) each
operation rolls a **deterministic, seeded** die and may fail the way real
disks fail:

* ``enospc`` — :class:`OSError` ``ENOSPC`` before any byte is written;
* ``eio``    — :class:`OSError` ``EIO`` before any byte is written;
* ``torn``   — a *prefix* of the payload is written, then ``EIO`` — the
  classic partial write a crash-consistent log must truncate away;
* ``fsync``  — the write buffers fine but ``fsync`` raises ``EIO`` (the
  infamous fsync-gate failure mode: durability was never promised);
* ``slow``   — the operation sleeps ``slow_seconds`` first (a saturated
  or dying device).

Decisions reuse the CRC32 schedule of :class:`repro.engine.faults.FaultConfig`
— seed + stable per-operation key, never global randomness — so the same
spec produces the same fault sequence on every run, and faults are
*transient*: each operation consumes a fresh key, so a retry (the
degraded-mode probe loop in :class:`~repro.service.server.AuditService`)
eventually lands.

The module also hosts the :class:`CrashPointRegistry`: named kill
switches compiled into every fsync/replace boundary.  Arming one via the
``REPRO_CRASH_POINT`` environment variable makes the process ``os._exit``
the *n*-th time that boundary is crossed (``REPRO_CRASH_POINT_SKIP``
skips the first *n* hits) — the substrate of the crash-point torture
harness in ``tests/test_crash_points.py``.
"""

from __future__ import annotations

import errno
import os
import threading
import time
import zlib
from dataclasses import dataclass, replace

__all__ = [
    "CRASH_EXIT_CODE",
    "ENV_CRASH_POINT",
    "ENV_CRASH_POINT_SKIP",
    "DiskFaultConfig",
    "FaultPlane",
    "CrashPointRegistry",
    "registry",
    "crash_point",
    "install",
    "uninstall",
    "active",
    "write",
    "fsync",
    "seeded_roll",
]

#: Exit status used by an armed crash point — distinctive, so the torture
#: harness can tell "killed at the boundary" from an ordinary crash.
CRASH_EXIT_CODE = 86

ENV_CRASH_POINT = "REPRO_CRASH_POINT"
ENV_CRASH_POINT_SKIP = "REPRO_CRASH_POINT_SKIP"


def seeded_roll(seed: int, kind: str, key: str, rate: float) -> bool:
    """Deterministic Bernoulli draw: CRC32 of ``seed:kind:key`` vs ``rate``.

    Identical to :meth:`repro.engine.faults.FaultConfig.roll` — stable
    across processes and hash randomisation — so one seed drives one
    reproducible fault schedule across every chaos seam.
    """
    if rate <= 0.0:
        return False
    token = f"{seed}:{kind}:{key}".encode()
    return (zlib.crc32(token) / 0x1_0000_0000) < rate


@dataclass(frozen=True)
class DiskFaultConfig:
    """Seeded disk-fault schedule: which durable ops fail, how often, how."""

    enospc_rate: float = 0.0
    eio_rate: float = 0.0
    fsync_rate: float = 0.0
    torn_rate: float = 0.0
    slow_rate: float = 0.0
    slow_seconds: float = 0.01
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("enospc_rate", "eio_rate", "fsync_rate", "torn_rate", "slow_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.slow_seconds < 0:
            raise ValueError(f"slow_seconds must be >= 0, got {self.slow_seconds}")

    @property
    def enabled(self) -> bool:
        """True when any disk fault can fire."""
        return (
            self.enospc_rate
            + self.eio_rate
            + self.fsync_rate
            + self.torn_rate
            + self.slow_rate
        ) > 0

    def roll(self, kind: str, key: str) -> bool:
        return seeded_roll(self.seed, kind, key, getattr(self, f"{kind}_rate"))

    @classmethod
    def parse(cls, spec: str) -> "DiskFaultConfig":
        """Build from ``enospc=0.05,fsync=0.02,seed=7`` (see ChaosConfig)."""
        config = cls()
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"disk fault spec entry {part!r} is not key=value")
            key, _, raw = part.partition("=")
            key = key.strip().lower().replace("-", "_")
            if key in ("enospc", "eio", "fsync", "torn", "slow"):
                config = replace(config, **{f"{key}_rate": float(raw)})
            elif key == "slow_seconds":
                config = replace(config, slow_seconds=float(raw))
            elif key == "seed":
                config = replace(config, seed=int(raw))
            else:
                raise ValueError(f"unknown disk fault spec key {key!r}")
        return config


class FaultPlane:
    """One process-wide decision point for injected disk faults.

    Keys are ``<label>:<op>-<n>`` where *n* is a per-(label, op) counter —
    so the schedule is deterministic per seam (``journal``, snapshot file
    name, …) regardless of thread interleaving across seams.  Fired faults
    are counted into ``chaos.faults_injected`` (plus a per-kind counter)
    on the attached metrics registry, if any.
    """

    def __init__(self, config: DiskFaultConfig, metrics=None) -> None:
        self.config = config
        self.metrics = metrics
        self._lock = threading.Lock()
        self._ops: "dict[tuple[str, str], int]" = {}

    def _key(self, op: str, label: str) -> str:
        with self._lock:
            count = self._ops.get((label, op), 0)
            self._ops[(label, op)] = count + 1
        return f"{label}:{op}-{count}"

    def _fired(self, kind: str) -> None:
        if self.metrics is not None:
            self.metrics.inc("chaos.faults_injected")
            self.metrics.inc(f"chaos.disk_{kind}")

    def write(self, handle, data, label: str) -> None:
        """Write ``data`` (str or bytes) to ``handle``, or fail like a disk."""
        config = self.config
        key = self._key("write", label)
        if config.roll("slow", key):
            self._fired("slow")
            time.sleep(config.slow_seconds)
        if config.roll("enospc", key):
            self._fired("enospc")
            raise OSError(errno.ENOSPC, f"injected ENOSPC at {key!r}")
        if config.roll("eio", key):
            self._fired("eio")
            raise OSError(errno.EIO, f"injected EIO at {key!r}")
        if config.roll("torn", key) and len(data) > 1:
            self._fired("torn")
            handle.write(data[: max(1, len(data) // 2)])
            raise OSError(errno.EIO, f"injected torn write at {key!r}")
        handle.write(data)

    def fsync(self, fileno: int, label: str) -> None:
        """fsync ``fileno``, or raise ``EIO`` without any durability promise."""
        config = self.config
        key = self._key("fsync", label)
        if config.roll("slow", key):
            self._fired("slow")
            time.sleep(config.slow_seconds)
        if config.roll("fsync", key):
            self._fired("fsync")
            raise OSError(errno.EIO, f"injected fsync failure at {key!r}")
        os.fsync(fileno)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlane({self.config})"


# The installed plane.  Plain attribute + GIL is enough: install/uninstall
# happen at service start/stop, reads are a single load on the hot path.
_active: "FaultPlane | None" = None


def install(plane: FaultPlane) -> None:
    """Route every durable write/fsync in this process through ``plane``."""
    global _active
    _active = plane


def uninstall() -> None:
    global _active
    _active = None


def active() -> "FaultPlane | None":
    return _active


def write(handle, data, label: str = "file") -> None:
    """``handle.write(data)`` through the installed fault plane (if any)."""
    plane = _active
    if plane is None or not plane.config.enabled:
        handle.write(data)
        return
    plane.write(handle, data, label)


def fsync(fileno: int, label: str = "file") -> None:
    """``os.fsync(fileno)`` through the installed fault plane (if any)."""
    plane = _active
    if plane is None or not plane.config.enabled:
        os.fsync(fileno)
        return
    plane.fsync(fileno, label)


class CrashPointRegistry:
    """Named kill switches at every fsync/replace boundary.

    ``hit(name)`` is a no-op counter until the process is *armed* for that
    name (environment: ``REPRO_CRASH_POINT=<name>``, optionally
    ``REPRO_CRASH_POINT_SKIP=<n>`` to survive the first *n* crossings).
    An armed hit calls ``os._exit(CRASH_EXIT_CODE)`` — no atexit handlers,
    no buffer flushes, exactly like a power cut at that instant.  ``seen``
    records crossing counts for in-process coverage assertions.
    """

    def __init__(self, environ=None) -> None:
        env = os.environ if environ is None else environ
        self._lock = threading.Lock()
        self.seen: "dict[str, int]" = {}
        self.armed = env.get(ENV_CRASH_POINT) or None
        try:
            self.skip = int(env.get(ENV_CRASH_POINT_SKIP, "0") or "0")
        except ValueError:
            self.skip = 0

    def hit(self, name: str) -> None:
        with self._lock:
            self.seen[name] = self.seen.get(name, 0) + 1
            if self.armed != name:
                return
            if self.skip > 0:
                self.skip -= 1
                return
        os._exit(CRASH_EXIT_CODE)  # pragma: no cover - kills the process


#: Process-global registry, armed from the environment at import time so a
#: subprocess can be killed at a boundary with zero code changes.
registry = CrashPointRegistry()


def crash_point(name: str) -> None:
    """Cross the named crash boundary (dies here when armed)."""
    registry.hit(name)
