"""Persistence: populations to/from CSV, results and reports to JSON.

CSV files carry value *labels* (not codes) so they are human-readable and
round-trip exactly; the schema travels in a JSON sidecar (or inline dict) so
a population can be reconstructed without the generating code.
"""

from __future__ import annotations

import csv
import json
from dataclasses import asdict
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.attributes import (
    CategoricalAttribute,
    IntegerAttribute,
    ObservedAttribute,
)
from repro.core.population import Population
from repro.core.schema import WorkerSchema
from repro.exceptions import PopulationError, SchemaError
from repro.simulation.runner import ExperimentResult

__all__ = [
    "schema_to_dict",
    "schema_from_dict",
    "save_population",
    "load_population",
    "save_experiment_result",
    "load_experiment_rows",
    "audit_report_to_dict",
    "save_audit_report",
]


# --------------------------------------------------------------------- schema


def schema_to_dict(schema: WorkerSchema) -> dict[str, Any]:
    """JSON-serialisable description of a worker schema."""
    protected = []
    for attr in schema.protected:
        if isinstance(attr, CategoricalAttribute):
            protected.append(
                {"kind": "categorical", "name": attr.name, "values": list(attr.values)}
            )
        else:
            protected.append(
                {
                    "kind": "integer",
                    "name": attr.name,
                    "low": attr.low,
                    "high": attr.high,
                    "buckets": attr.buckets,
                }
            )
    observed = [
        {"name": attr.name, "low": attr.low, "high": attr.high}
        for attr in schema.observed
    ]
    return {"protected": protected, "observed": observed}


def schema_from_dict(data: dict[str, Any]) -> WorkerSchema:
    """Inverse of :func:`schema_to_dict`."""
    protected: list[CategoricalAttribute | IntegerAttribute] = []
    for spec in data.get("protected", []):
        kind = spec.get("kind")
        if kind == "categorical":
            protected.append(CategoricalAttribute(spec["name"], tuple(spec["values"])))
        elif kind == "integer":
            protected.append(
                IntegerAttribute(
                    spec["name"], spec["low"], spec["high"], spec.get("buckets", 5)
                )
            )
        else:
            raise SchemaError(f"unknown protected attribute kind: {kind!r}")
    observed = tuple(
        ObservedAttribute(spec["name"], spec["low"], spec["high"])
        for spec in data.get("observed", [])
    )
    return WorkerSchema(protected=tuple(protected), observed=observed)


# ----------------------------------------------------------------- population


def save_population(population: Population, csv_path: "str | Path") -> None:
    """Write a population to CSV (labels, not codes) plus a schema sidecar.

    The sidecar is ``<csv_path>.schema.json``.
    """
    csv_path = Path(csv_path)
    schema = population.schema
    with csv_path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(list(schema.protected_names) + list(schema.observed_names))
        for worker in population:
            row = [worker.protected[name] for name in schema.protected_names]
            row += [repr(worker.observed[name]) for name in schema.observed_names]
            writer.writerow(row)
    sidecar = csv_path.with_suffix(csv_path.suffix + ".schema.json")
    sidecar.write_text(json.dumps(schema_to_dict(schema), indent=2))


def load_population(
    csv_path: "str | Path", schema: WorkerSchema | None = None
) -> Population:
    """Read a population written by :func:`save_population`.

    If ``schema`` is omitted, the sidecar written alongside the CSV is used.
    """
    csv_path = Path(csv_path)
    if schema is None:
        sidecar = csv_path.with_suffix(csv_path.suffix + ".schema.json")
        if not sidecar.exists():
            raise PopulationError(
                f"no schema given and no sidecar found at {sidecar}"
            )
        schema = schema_from_dict(json.loads(sidecar.read_text()))

    with csv_path.open(newline="") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise PopulationError(f"{csv_path} is empty") from None
        expected = list(schema.protected_names) + list(schema.observed_names)
        if header != expected:
            raise PopulationError(
                f"CSV columns {header} do not match schema columns {expected}"
            )
        raw_rows = [row for row in reader if row]

    if not raw_rows:
        raise PopulationError(f"{csv_path} contains no workers")
    columns = list(zip(*raw_rows))
    protected: dict[str, np.ndarray] = {}
    for i, attr in enumerate(schema.protected):
        values = columns[i]
        if isinstance(attr, CategoricalAttribute):
            protected[attr.name] = attr.encode(list(values))
        else:
            protected[attr.name] = np.asarray([int(v) for v in values], dtype=np.int64)
    offset = len(schema.protected)
    observed = {
        attr.name: np.asarray([float(v) for v in columns[offset + j]], dtype=np.float64)
        for j, attr in enumerate(schema.observed)
    }
    return Population(schema, protected, observed)


# -------------------------------------------------------------- audit reports


def audit_report_to_dict(report) -> dict[str, Any]:
    """JSON-serialisable summary of an :class:`~repro.core.audit.AuditReport`.

    Carries everything a downstream pipeline needs (objective, groups,
    pairwise distances, runtime) without the population itself.
    """
    partitioning = report.result.partitioning
    return {
        "algorithm": report.result.algorithm,
        "metric": report.result.metric,
        "unfairness": report.result.unfairness,
        "runtime_seconds": report.result.runtime_seconds,
        "n_evaluations": report.result.n_evaluations,
        "engine": {
            "backend": report.result.backend,
            "workers": report.result.workers,
            "cache_hits": report.result.cache_hits,
            "n_full_evaluations": report.result.n_full_evaluations,
            "n_incremental_evaluations": report.result.n_incremental_evaluations,
            "pair_distances_computed": report.result.pair_distances_computed,
            "pair_distances_full": report.result.pair_distances_full,
        },
        "population_size": partitioning.population_size,
        "attributes_used": list(partitioning.attributes_used()),
        "groups": [
            {
                "label": group.label,
                "size": group.size,
                "mean_score": group.mean_score,
                "median_score": group.median_score,
                "min_score": group.min_score,
                "max_score": group.max_score,
            }
            for group in report.groups
        ],
        "pairwise_distances": report.pairwise.tolist(),
    }


def save_audit_report(report, path: "str | Path") -> None:
    """Write an audit report summary to JSON."""
    Path(path).write_text(json.dumps(audit_report_to_dict(report), indent=2))


# -------------------------------------------------------------------- results


def save_experiment_result(result: ExperimentResult, path: "str | Path") -> None:
    """Write an experiment result (all table cells) to JSON."""
    payload = {
        "scenario": result.scenario,
        "rows": [asdict(row) for row in result.rows],
    }
    Path(path).write_text(json.dumps(payload, indent=2))


def load_experiment_rows(path: "str | Path") -> list[dict[str, Any]]:
    """Read back the rows written by :func:`save_experiment_result`."""
    payload = json.loads(Path(path).read_text())
    return list(payload.get("rows", []))
