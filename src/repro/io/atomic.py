"""Crash-safe filesystem primitives shared by every durable store.

Both the experiment :class:`~repro.simulation.checkpoint.CheckpointStore`
and the audit service's :class:`~repro.service.journal.JobJournal` need the
same two guarantees:

* **atomic replace** — a reader (including a process restarted after
  SIGKILL) sees either the old file or the new file, never a torn one.
  :func:`atomic_write_bytes` writes a temp file *in the target directory*
  (so the final ``os.replace`` never crosses filesystems), fsyncs it, then
  replaces the target and fsyncs the directory entry;
* **durable append** — :func:`fsync_handle` flushes and fsyncs an open
  handle so an append-only log's records survive power loss once the
  append call returns.

Every write and fsync routes through :mod:`repro.io.faultfs` — a no-op
pass-through unless a chaos fault plane is installed, in which case the
operation may fail the way real disks fail (ENOSPC, EIO, torn writes,
failed fsync, slow I/O).  Callers that are part of the service's durable
stores pass a ``crash_scope`` so the replace boundary is a named
:func:`~repro.io.faultfs.crash_point` the torture harness can kill at.

Directory creation is race-safe (``exist_ok=True``): two processes — or a
daemon and a submitter — may create the same state directory concurrently
without one of them crashing.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.io import faultfs

__all__ = [
    "ensure_directory",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_handle",
    "fsync_directory",
]


def ensure_directory(path: "str | Path") -> Path:
    """Create ``path`` (and parents) if missing; concurrent callers both win."""
    directory = Path(path)
    directory.mkdir(parents=True, exist_ok=True)
    return directory


def fsync_handle(handle, label: str = "file") -> None:
    """Flush python buffers and fsync the OS file description."""
    handle.flush()
    faultfs.fsync(handle.fileno(), label)


def fsync_directory(path: "str | Path") -> None:
    """fsync a directory so a just-created/replaced entry survives a crash.

    Best-effort on platforms whose directories cannot be opened (the data
    fsync already happened; only the rename's durability window widens).
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: "str | Path", data: bytes, *, crash_scope: "str | None" = None
) -> Path:
    """Atomically replace ``path`` with ``data`` (tmp + fsync + replace).

    The parent directory is created if missing.  A kill at any instant
    leaves either the previous content or the new content at ``path`` —
    never a partial write; stray ``.tmp`` files from a kill inside this
    function are overwritten by the next call.  ``crash_scope`` names the
    replace boundary for the crash-point torture harness
    (``<scope>.before_replace`` / ``<scope>.after_replace``).
    """
    target = Path(path)
    ensure_directory(target.parent)
    tmp = target.with_name(target.name + ".tmp")
    try:
        with tmp.open("wb") as handle:
            faultfs.write(handle, data, label=target.name)
            fsync_handle(handle, label=target.name)
    except OSError:
        # A *failed* write (ENOSPC, EIO, failed fsync) must not leave a
        # torn tmp squatting in the directory — on a full disk that
        # garbage is precisely what keeps the disk full.  (A kill leaves
        # the tmp behind; the next call overwrites it.)
        try:
            tmp.unlink()
        except OSError:  # pragma: no cover - unlink raced or refused
            pass
        raise
    if crash_scope is not None:
        faultfs.crash_point(f"{crash_scope}.before_replace")
    os.replace(tmp, target)
    if crash_scope is not None:
        faultfs.crash_point(f"{crash_scope}.after_replace")
    fsync_directory(target.parent)
    return target


def atomic_write_text(
    path: "str | Path", text: str, *, crash_scope: "str | None" = None
) -> Path:
    """:func:`atomic_write_bytes` for UTF-8 text."""
    return atomic_write_bytes(path, text.encode("utf-8"), crash_scope=crash_scope)
