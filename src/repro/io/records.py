"""CRC-wrapped JSONL record streams.

The durable stores in this codebase (the service's job journal, the
``repro.mutations/v1`` mutation streams) share one on-disk grammar: a text
file of newline-terminated JSON objects ``{"crc": <crc32>, "rec": {...}}``
where ``crc`` is the CRC32 of the *canonical* JSON encoding of ``rec``.
The CRC distinguishes a record that was **written** from bytes that merely
*look like* one, which is what makes torn-tail recovery safe: a line that
fails its CRC at the end of the file is an interrupted append, not data.

This module owns the grammar; policy (schemas, recovery, replay semantics)
stays with the stores.  :func:`scan_records` implements the shared
corruption taxonomy:

* a **torn tail** — the final line cut short (partial JSON, missing
  newline, failed CRC) — is reported, not raised; at most one record (the
  one being appended during a crash) is affected and it was never
  acknowledged;
* a bad line **followed by more data** is mid-file corruption and raises
  the caller-supplied error type — acknowledged history must never be
  silently skipped.
"""

from __future__ import annotations

import json
import zlib
from pathlib import Path

__all__ = ["canonical_json", "encode_record", "decode_line", "scan_records"]


def canonical_json(record: dict) -> str:
    """The byte-stable JSON encoding the CRC is computed over."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def encode_record(record: dict) -> str:
    """One stream line (no newline): CRC32-wrapped canonical JSON."""
    body = canonical_json(record)
    crc = zlib.crc32(body.encode("utf-8"))
    return json.dumps({"crc": crc, "rec": record}, sort_keys=True, separators=(",", ":"))


def decode_line(line: str) -> dict:
    """Parse and CRC-verify one stream line; raises ``ValueError`` if torn."""
    wrapper = json.loads(line)
    if not isinstance(wrapper, dict) or "crc" not in wrapper or "rec" not in wrapper:
        raise ValueError("record line is not a crc-wrapped record")
    record = wrapper["rec"]
    crc = zlib.crc32(canonical_json(record).encode("utf-8"))
    if crc != wrapper["crc"]:
        raise ValueError(f"crc mismatch: stored {wrapper['crc']}, computed {crc}")
    return record


def scan_records(
    path: "str | Path", error: "type[Exception]" = ValueError
) -> "tuple[list[dict], int, int]":
    """Scan one record stream: ``(records, clean_length_bytes, torn_bytes)``.

    ``clean_length_bytes`` is the offset up to which every line parsed and
    CRC-verified; anything after it is a torn tail — but only if it is
    genuinely the tail.  A bad line *followed by more data* is mid-file
    corruption and raises ``error``.
    """
    path = Path(path)
    data = path.read_bytes()
    records: list[dict] = []
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline == -1:
            # Unterminated final line: torn by definition.
            return records, offset, len(data) - offset
        line = data[offset:newline]
        try:
            records.append(decode_line(line.decode("utf-8")))
        except (ValueError, UnicodeDecodeError) as exc:
            if newline == len(data) - 1:
                # Complete-looking but corrupt final line — a crash can
                # leave this when pre-allocated blocks surface; still the
                # tail, still safe to drop.
                return records, offset, len(data) - offset
            raise error(
                f"record stream {path} corrupt mid-file at byte {offset}: {exc}"
            ) from exc
        offset = newline + 1
    return records, offset, 0
