"""Monitored populations: the streaming job type of the audit daemon.

A **monitor** is a long-lived mutable population living inside the daemon.
Clients create one from a typed :class:`MonitorSpec`, then stream
add/remove/update_score mutations at it over HTTP; the daemon folds each
accepted batch into the population's atom state (O(Δ) per batch via
:class:`~repro.engine.streaming.StreamingAuditor`), re-audits on a
debounced schedule and appends every unfairness-over-time point to the
crash-safe journal.

Intake discipline mirrors job submission exactly:

* every accepted batch is **journaled ahead of the acknowledgement** — a
  SIGKILL after the HTTP 200 can never lose applied mutations;
* a batch that fails validation mid-way journals its applied prefix and is
  rejected with ``invalid_spec`` plus the failing position — the journal
  always describes exactly the state the daemon holds;
* more unaudited mutations than ``buffer_limit`` reject with
  ``queue_full`` (the same typed backpressure taxonomy as the job queue);
* a draining daemon rejects with ``shutting_down``.

Re-audit scheduling is debounce-with-a-cap: an audit fires once the stream
has been quiet for ``debounce_seconds``, but never later than
``max_delay_seconds`` after the first unaudited mutation, and each audit
runs under the spec's cooperative deadline
(:class:`~repro.engine.deadline.Deadline`), so one huge population cannot
starve the scheduler loop.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field, fields
from typing import Any, Mapping

from repro.exceptions import MutationError, ServiceError
from repro.service.jobs import KNOWN_SCENARIOS

__all__ = ["MonitorSpec", "MonitoredPopulation"]


@dataclass(frozen=True)
class MonitorSpec:
    """Everything that defines one monitored population.

    The spec is the monitor's identity: its canonical-JSON SHA-256 is the
    fingerprint that gates snapshot restore.  Initial population and scores
    are generated deterministically from ``(scenario, n_workers, seed,
    function)``, so the same spec always starts from the same state.
    """

    id: str
    scenario: str = "table1"
    function: "str | None" = None
    algorithm: str = "balanced"
    metric: str = "emd"
    weighting: str = "uniform"
    n_workers: "int | None" = None
    seed: int = 0
    backend: "str | None" = None
    workers: "int | None" = None
    debounce_seconds: float = 0.25
    max_delay_seconds: float = 2.0
    buffer_limit: int = 4096
    deadline_seconds: "float | None" = None
    delta_series: bool = True
    # Kernel backend for the distance computations; None = daemon default.
    # Bit-identical across backends, and omitted from to_dict() when unset,
    # so pre-existing spec fingerprints (which gate snapshot restore) are
    # unchanged by its introduction.
    kernel: "str | None" = None

    def __post_init__(self) -> None:
        if not self.id or not isinstance(self.id, str):
            raise ServiceError("monitor spec needs a non-empty string id")
        if any(ch in self.id for ch in "/\\\0 \t\n"):
            raise ServiceError(
                f"monitor id {self.id!r} must be a path-safe token"
            )
        if self.scenario not in KNOWN_SCENARIOS:
            raise ServiceError(
                f"unknown scenario {self.scenario!r}; known: {sorted(KNOWN_SCENARIOS)}"
            )
        if self.n_workers is not None and self.n_workers < 1:
            raise ServiceError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.debounce_seconds < 0:
            raise ServiceError("debounce_seconds must be >= 0")
        if self.max_delay_seconds < self.debounce_seconds:
            raise ServiceError(
                "max_delay_seconds must be >= debounce_seconds "
                f"({self.max_delay_seconds} < {self.debounce_seconds})"
            )
        if self.buffer_limit < 1:
            raise ServiceError(f"buffer_limit must be >= 1, got {self.buffer_limit}")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ServiceError("deadline_seconds must be positive")
        from repro.core.algorithms import get_algorithm
        from repro.exceptions import ReproError
        from repro.metrics.base import get_metric

        try:
            get_algorithm(self.algorithm)
            get_metric(self.metric)
        except ReproError as exc:
            raise ServiceError(str(exc)) from exc
        if self.weighting not in ("uniform", "size"):
            raise ServiceError(
                f"unknown weighting {self.weighting!r}; use 'uniform' or 'size'"
            )
        if self.kernel is not None:
            from repro.engine.kernels import KERNEL_BACKENDS

            if self.kernel not in KERNEL_BACKENDS:
                raise ServiceError(
                    f"unknown kernel backend {self.kernel!r}; "
                    f"choose from {KERNEL_BACKENDS}"
                )

    # ------------------------------------------------------------- (de)serde

    def to_dict(self) -> dict:
        payload: dict = {"id": self.id, "scenario": self.scenario}
        defaults = MonitorSpec(id=self.id, scenario=self.scenario)
        for spec_field in fields(self):
            if spec_field.name in ("id", "scenario"):
                continue
            value = getattr(self, spec_field.name)
            if value != getattr(defaults, spec_field.name):
                payload[spec_field.name] = value
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "MonitorSpec":
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ServiceError(f"unknown monitor spec field(s): {unknown}")
        if "id" not in payload:
            raise ServiceError("monitor spec needs an id")
        return cls(**dict(payload))

    def fingerprint(self) -> str:
        from repro.service.snapshot import spec_fingerprint

        return spec_fingerprint(self.to_dict())

    # ----------------------------------------------------------- construction

    def _config(self):
        from repro.simulation.config import PaperConfig

        if self.n_workers is not None:
            return PaperConfig(n_workers=self.n_workers)
        return PaperConfig()

    def worker_schema(self):
        """The population schema this monitor's stores are built under."""
        if self.scenario == "figure1":
            from repro.simulation.scenarios import figure1_scenario

            return figure1_scenario().population.schema
        return self._config().schema()

    def hist_spec(self):
        from repro.core.histogram import HistogramSpec
        from repro.simulation.scenarios import figure1_scenario

        if self.scenario == "figure1":
            return figure1_scenario().hist_spec
        return HistogramSpec(bins=self._config().histogram_bins)

    def build_scenario(self):
        from repro.simulation import scenarios as scenario_builders

        if self.scenario == "figure1":
            return scenario_builders.figure1_scenario()
        builder = getattr(scenario_builders, f"{self.scenario}_scenario")
        return builder(self._config())

    def build_store(self):
        """Deterministic initial :class:`MutablePopulation` for this spec."""
        from repro.marketplace.streaming import MutablePopulation

        scenario = self.build_scenario()
        name = self.function or sorted(scenario.functions)[0]
        if name not in scenario.functions:
            raise ServiceError(
                f"scenario {self.scenario!r} has no function {name!r}; "
                f"available: {sorted(scenario.functions)}"
            )
        scores = scenario.functions[name](scenario.population)
        return MutablePopulation.from_population(
            scenario.population, scores, hist_spec=scenario.hist_spec
        )


@dataclass
class MonitoredPopulation:
    """One live monitor: store + streaming auditor + unfairness series.

    All mutation and audit work runs under :attr:`lock`; the service's
    journal writes happen inside the same critical section, so the journal
    order always matches the applied order.
    """

    spec: MonitorSpec
    store: Any
    created_at: float
    series: "list[dict]" = field(default_factory=list)
    lock: threading.RLock = field(default_factory=threading.RLock)
    auditor: Any = None
    unaudited: int = 0
    first_pending_at: "float | None" = None
    last_mutation_at: "float | None" = None
    last_audit_version: "int | None" = None
    snapshot_version: "int | None" = None
    audits: int = 0
    mutations_applied: int = 0

    def ensure_auditor(self, metrics=None, retry_policy=None):
        """Lazily build the persistent :class:`StreamingAuditor`."""
        if self.auditor is None:
            from repro.engine.streaming import StreamingAuditor

            self.auditor = StreamingAuditor(
                self.store,
                algorithm=self.spec.algorithm,
                metric=self.spec.metric,
                weighting=self.spec.weighting,
                backend=self.spec.backend,
                workers=self.spec.workers,
                seed=self.spec.seed,
                metrics=metrics,
                retry_policy=retry_policy,
                kernel=self.spec.kernel,
            )
        return self.auditor

    # -------------------------------------------------------------- intake

    def apply_batch(self, mutations: "list[Mapping[str, Any]]", now: float) -> dict:
        """Apply a validated prefix of ``mutations``; return batch info.

        On a mid-batch validation failure the applied prefix stays applied
        (each mutation validates *before* mutating, so the store is never
        half-mutated); the returned info carries ``error`` and the failing
        ``position``.  The caller journals whatever :meth:`batch_record`
        describes — the applied prefix — and rejects the request.
        """
        from repro.marketplace.streaming import Mutation

        base_version = self.store.version
        applied = 0
        error: "MutationError | None" = None
        position = None
        for position, payload in enumerate(mutations):
            try:
                mutation = (
                    payload
                    if isinstance(payload, Mutation)
                    else Mutation.from_dict(payload)
                )
                self.store.apply(mutation)
            except MutationError as exc:
                error = exc
                break
            applied += 1
        self.mutations_applied += applied
        if applied:
            self.unaudited += applied
            if self.first_pending_at is None:
                self.first_pending_at = now
            self.last_mutation_at = now
        info = {
            "applied": applied,
            "base_version": base_version,
            "version": self.store.version,
        }
        if error is not None:
            info["error"] = str(error)
            info["position"] = position
        return info

    def batch_record(self, info: dict, now: float) -> "dict | None":
        """The journal record for one (possibly partial) applied batch."""
        if not info["applied"]:
            return None
        applied = [
            entry.mutation.to_dict()
            for entry in self.store.log_since(info["base_version"])
            if entry.seq <= info["version"]
        ]
        return {
            "type": "mpop_mutations",
            "id": self.spec.id,
            "ts": now,
            "base_version": info["base_version"],
            "version": info["version"],
            "mutations": applied,
        }

    # ------------------------------------------------------------ scheduling

    def should_audit(self, now: float) -> bool:
        """Debounce with a staleness cap (see the module docstring)."""
        if self.unaudited <= 0:
            return False
        if self.last_mutation_at is None:
            return True
        quiet = now - self.last_mutation_at
        waiting = now - (self.first_pending_at or now)
        return (
            quiet >= self.spec.debounce_seconds
            or waiting >= self.spec.max_delay_seconds
        )

    def run_audit(self, now: float, metrics=None, retry_policy=None) -> dict:
        """Full streaming re-audit; returns the journal/series record."""
        from repro.engine.deadline import Deadline

        auditor = self.ensure_auditor(metrics=metrics, retry_policy=retry_policy)
        deadline = (
            Deadline(self.spec.deadline_seconds)
            if self.spec.deadline_seconds is not None
            else None
        )
        report = auditor.audit(deadline=deadline)
        self.unaudited = 0
        self.first_pending_at = None
        self.last_audit_version = report.version
        self.audits += 1
        return self._point(report, now)

    def run_delta(self, now: float) -> "dict | None":
        """O(k·Δ) re-score of the last audited partitioning, if possible."""
        if self.auditor is None:
            return None
        report = self.auditor.rescore_delta()
        if report is None:
            return None
        return self._point(report, now)

    def _point(self, report, now: float) -> dict:
        return {
            "type": "mpop_audit",
            "id": self.spec.id,
            "ts": now,
            "kind": report.kind,
            "version": report.version,
            "unfairness": report.unfairness,
            "population_size": report.population_size,
            "n_partitions": report.n_partitions,
            "duration_seconds": report.duration_seconds,
            "deadline_hit": report.deadline_hit,
            "stale": report.stale,
        }

    @staticmethod
    def series_point(record: dict) -> dict:
        """A journal ``mpop_audit`` record reduced to its series form."""
        return {
            key: value
            for key, value in record.items()
            if key not in ("type", "id")
        }

    # --------------------------------------------------------------- queries

    def as_dict(self) -> dict:
        with self.lock:
            return {
                "id": self.spec.id,
                "spec": self.spec.to_dict(),
                "created_at": self.created_at,
                "population_size": self.store.size,
                "version": self.store.version,
                "unaudited": self.unaudited,
                "audits": self.audits,
                "mutations_applied": self.mutations_applied,
                "series_points": len(self.series),
                "last_unfairness": (
                    self.series[-1]["unfairness"] if self.series else None
                ),
                "snapshot_version": self.snapshot_version,
            }

    def close(self) -> None:
        if self.auditor is not None:
            self.auditor.close()
            self.auditor = None
