"""Service-wide chaos layer: one seeded schedule for every fault seam.

PR 3 chaos-tested the engine pool (``engine/faults.py``) and PR 5 the
journal's torn tail; this module extends the same deterministic-schedule
discipline to the *whole service surface*:

* **disk** — the :class:`~repro.io.faultfs.FaultPlane` installed over
  every durable write (journal append/fsync, snapshot and checkpoint
  replaces): ENOSPC, EIO, torn writes, fsync failure, slow I/O;
* **network** — the asyncio front end (:mod:`repro.service.http`)
  corrupts *responses* the way flaky networks do: connection reset
  mid-body, truncated body under a full ``Content-Length``, stalled
  (slow-loris) responses, keep-alive churn (``Connection: close`` storms);
* **worker** — the dispatch loop stalls a worker mid-job (exercising the
  watchdog's RUNNING→PENDING re-queue) or poisons a batch (exercising the
  FAILED→retry→QUARANTINED ladder).

Every decision is a CRC32 draw from ``seed + stable key`` (see
:func:`repro.io.faultfs.seeded_roll`), so ``serve --chaos <spec>`` replays
the same fault storm on every run — which is what lets CI assert the
service *returns to HEALTHY* rather than merely "usually survives".

Spec grammar (``ChaosConfig.parse``), e.g.::

    serve --chaos "disk-enospc=0.05,disk-fsync=0.05,net-reset=0.05,\
worker-stall=0.02,seed=7"

Keys: ``disk-enospc``, ``disk-eio``, ``disk-fsync``, ``disk-torn``,
``disk-slow`` (rates), ``disk-slow-seconds``; ``net-reset``,
``net-truncate``, ``net-stall``, ``net-close`` (rates),
``net-stall-seconds``; ``worker-stall``, ``worker-poison`` (rates),
``worker-stall-seconds``; ``seed`` (shared by all three seams).

The module also re-exports the :class:`CrashPointRegistry` and names the
canonical :data:`CRASH_POINTS` — every fsync/replace boundary a crash is
allowed to interrupt — which the torture harness in
``tests/test_crash_points.py`` enumerates one kill at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.io.faultfs import (
    CRASH_EXIT_CODE,
    ENV_CRASH_POINT,
    ENV_CRASH_POINT_SKIP,
    CrashPointRegistry,
    DiskFaultConfig,
    FaultPlane,
    crash_point,
    registry,
    seeded_roll,
)

__all__ = [
    "CRASH_POINTS",
    "CRASH_EXIT_CODE",
    "ENV_CRASH_POINT",
    "ENV_CRASH_POINT_SKIP",
    "CrashPointRegistry",
    "DiskFaultConfig",
    "FaultPlane",
    "NetChaosConfig",
    "WorkerChaosConfig",
    "ChaosConfig",
    "crash_point",
    "registry",
]

#: Every named fsync/replace boundary in the durable stores.  The torture
#: harness kills a subprocess at each one and asserts the two invariants
#: (no acknowledged job lost, no unacknowledged torn record replayed) plus
#: bit-identical re-audit results after recovery.
CRASH_POINTS = (
    "journal.append.after_write",  # record buffered, not yet durable
    "journal.sync.before_fsync",  # flushed to the OS, fsync not issued
    "journal.sync.after_fsync",  # durable, acknowledgement not yet sent
    "journal.recover.before_truncate",  # crash *during* torn-tail repair
    "journal.compact.before_replace",  # compacted file fsynced, not swapped
    "journal.compact.after_replace",  # swapped, directory entry not fsynced
    "snapshot.before_replace",
    "snapshot.after_replace",
    "checkpoint.before_replace",
    "checkpoint.after_replace",
)


@dataclass(frozen=True)
class NetChaosConfig:
    """Seeded response-corruption schedule for the HTTP front end.

    Faults strike *after* dispatch — the service has already committed —
    so a client that never hears its 202 faces the classic at-least-once
    ambiguity and must retry into the ``duplicate_id`` guard.  Nothing
    here may forge an acknowledgement that was not journaled.
    """

    reset_rate: float = 0.0  # abort the transport mid-body (RST)
    truncate_rate: float = 0.0  # full Content-Length, half the bytes
    stall_rate: float = 0.0  # sleep before responding (slow server)
    close_rate: float = 0.0  # force Connection: close (keep-alive churn)
    stall_seconds: float = 0.05
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("reset_rate", "truncate_rate", "stall_rate", "close_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.stall_seconds < 0:
            raise ValueError(f"stall_seconds must be >= 0, got {self.stall_seconds}")

    @property
    def enabled(self) -> bool:
        return (
            self.reset_rate + self.truncate_rate + self.stall_rate + self.close_rate
        ) > 0

    def roll(self, kind: str, key: str) -> bool:
        return seeded_roll(self.seed, f"net-{kind}", key, getattr(self, f"{kind}_rate"))


@dataclass(frozen=True)
class WorkerChaosConfig:
    """Seeded dispatch-loop faults: stalled workers and poison batches."""

    stall_rate: float = 0.0  # worker sleeps mid-job (watchdog bait)
    poison_rate: float = 0.0  # job raises WorkerCrashError (retry ladder)
    stall_seconds: float = 0.25
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("stall_rate", "poison_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        if self.stall_seconds < 0:
            raise ValueError(f"stall_seconds must be >= 0, got {self.stall_seconds}")

    @property
    def enabled(self) -> bool:
        return (self.stall_rate + self.poison_rate) > 0

    def roll(self, kind: str, key: str) -> bool:
        return seeded_roll(
            self.seed, f"worker-{kind}", key, getattr(self, f"{kind}_rate")
        )


@dataclass(frozen=True)
class ChaosConfig:
    """The full ``--chaos`` spec: disk + network + worker schedules."""

    disk: DiskFaultConfig = field(default_factory=DiskFaultConfig)
    net: NetChaosConfig = field(default_factory=NetChaosConfig)
    worker: WorkerChaosConfig = field(default_factory=WorkerChaosConfig)
    spec: str = ""  # the original CLI string, for health/bench reporting

    @property
    def enabled(self) -> bool:
        return self.disk.enabled or self.net.enabled or self.worker.enabled

    @property
    def seed(self) -> int:
        return self.disk.seed

    @classmethod
    def parse(cls, spec: str) -> "ChaosConfig":
        """Parse the ``serve --chaos`` grammar (see module docstring).

        Raises :class:`ValueError` on unknown keys or malformed values,
        mirroring :meth:`repro.engine.faults.FaultConfig.parse`.
        """
        disk: "dict[str, float | int]" = {}
        net: "dict[str, float | int]" = {}
        worker: "dict[str, float | int]" = {}
        seed = 0
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"chaos spec entry {part!r} is not key=value")
            key, _, raw = part.partition("=")
            key = key.strip().lower().replace("_", "-")
            if key == "seed":
                seed = int(raw)
            elif key.startswith("disk-"):
                name = key[len("disk-") :].replace("-", "_")
                if name in ("enospc", "eio", "fsync", "torn", "slow"):
                    disk[f"{name}_rate"] = float(raw)
                elif name == "slow_seconds":
                    disk[name] = float(raw)
                else:
                    raise ValueError(f"unknown chaos spec key {key!r}")
            elif key.startswith("net-"):
                name = key[len("net-") :].replace("-", "_")
                if name in ("reset", "truncate", "stall", "close"):
                    net[f"{name}_rate"] = float(raw)
                elif name == "stall_seconds":
                    net[name] = float(raw)
                else:
                    raise ValueError(f"unknown chaos spec key {key!r}")
            elif key.startswith("worker-"):
                name = key[len("worker-") :].replace("-", "_")
                if name in ("stall", "poison"):
                    worker[f"{name}_rate"] = float(raw)
                elif name == "stall_seconds":
                    worker[name] = float(raw)
                else:
                    raise ValueError(f"unknown chaos spec key {key!r}")
            else:
                raise ValueError(f"unknown chaos spec key {key!r}")
        return cls(
            disk=DiskFaultConfig(seed=seed, **disk),
            net=NetChaosConfig(seed=seed, **net),
            worker=WorkerChaosConfig(seed=seed, **worker),
            spec=spec,
        )

    def describe(self) -> dict:
        """Flat summary for ``/v1/healthz`` and the bench payload."""
        return {
            "spec": self.spec,
            "seed": self.seed,
            "disk": {
                "enospc": self.disk.enospc_rate,
                "eio": self.disk.eio_rate,
                "fsync": self.disk.fsync_rate,
                "torn": self.disk.torn_rate,
                "slow": self.disk.slow_rate,
            },
            "net": {
                "reset": self.net.reset_rate,
                "truncate": self.net.truncate_rate,
                "stall": self.net.stall_rate,
                "close": self.net.close_rate,
            },
            "worker": {
                "stall": self.worker.stall_rate,
                "poison": self.worker.poison_rate,
            },
        }
