"""Typed job specs (``repro.job/v2``) and their lifecycle state machine.

An :class:`AuditJob` is one unit of work the daemon accepts.  Since the
``/v1`` API the spec is **kind-discriminated**: ``kind="audit"`` runs one
search algorithm over one scenario's scoring function(s) and reports the
most unfair partitioning; ``kind="mitigate"`` runs that same audit and then
*repairs* the ranking with a registered strategy, reporting unfairness
before/after and utility loss.  Either way the spec is a plain frozen
dataclass that round-trips through JSON exactly (the journal stores it
verbatim, tagged ``repro.job/v2``; untagged v1 records deserialise as audit
jobs), and execution is deterministic given the spec — which is what lets a
SIGKILL'd daemon re-run an in-flight job and land on byte-identical
results.

The lifecycle is a small explicit state machine::

    PENDING ──▶ RUNNING ──▶ DONE
       ▲           │  ├───▶ CANCELLED   (deadline expired → partial result)
       │           │  ├───▶ FAILED      (error, retry budget left)
       └───────────┘  └───▶ QUARANTINED (poison: failed max_attempts times)
        (retry / crash recovery)

``FAILED`` is a *transient* terminal: the server re-queues a failed job
(``FAILED → PENDING``) until its attempt budget is spent, then quarantines
it so a poison job cannot crash-loop the daemon.  ``RUNNING → PENDING`` is
the crash-recovery edge: a journal replay that finds a job ``RUNNING`` with
no terminal record re-queues it.
"""

from __future__ import annotations

import re
import zlib
from dataclasses import asdict, dataclass, field
from enum import Enum
from typing import Any, Mapping

from repro.exceptions import JobStateError, ServiceError

__all__ = [
    "AuditJob",
    "JobRecord",
    "JobState",
    "JOB_SCHEMA",
    "JOB_KINDS",
    "VALID_TRANSITIONS",
    "TERMINAL_STATES",
    "KNOWN_SCENARIOS",
    "check_transition",
]

#: Job ids are path- and log-safe tokens (they name checkpoint directories).
_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")

#: Scenario names a job may reference (the CLI experiment artefacts).
KNOWN_SCENARIOS = ("figure1", "table1", "table2", "table3")

#: Schema tag emitted with every serialised spec.  ``from_dict`` accepts the
#: tag (and validates it) or its absence — v1 journals predate the tag and
#: always described audit jobs.
JOB_SCHEMA = "repro.job/v2"

#: The ``kind`` discriminator's legal values.
JOB_KINDS = ("audit", "mitigate")


class JobState(str, Enum):
    """Lifecycle states of one audit job."""

    PENDING = "PENDING"
    RUNNING = "RUNNING"
    DONE = "DONE"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"
    QUARANTINED = "QUARANTINED"


#: Legal state-machine edges; anything else is a bug and raises
#: :class:`~repro.exceptions.JobStateError` instead of corrupting the table.
VALID_TRANSITIONS: "dict[JobState, frozenset[JobState]]" = {
    JobState.PENDING: frozenset({JobState.RUNNING}),
    JobState.RUNNING: frozenset(
        {
            JobState.DONE,
            JobState.FAILED,
            JobState.CANCELLED,
            JobState.QUARANTINED,
            JobState.PENDING,  # crash recovery: re-queue an in-flight job
        }
    ),
    JobState.FAILED: frozenset({JobState.PENDING, JobState.QUARANTINED}),
    JobState.DONE: frozenset(),
    JobState.CANCELLED: frozenset(),
    JobState.QUARANTINED: frozenset(),
}

#: States a job never leaves (FAILED is transient: the retry loop exits it).
TERMINAL_STATES = frozenset({JobState.DONE, JobState.CANCELLED, JobState.QUARANTINED})


def check_transition(current: JobState, new: JobState) -> None:
    """Raise :class:`JobStateError` unless ``current → new`` is a legal edge."""
    if new not in VALID_TRANSITIONS[current]:
        raise JobStateError(
            f"illegal job transition {current.value} -> {new.value}; "
            f"legal: {sorted(s.value for s in VALID_TRANSITIONS[current])}"
        )


@dataclass(frozen=True)
class AuditJob:
    """One deterministic unit of audit work.

    Attributes
    ----------
    id:
        Caller-chosen unique token (also names the job's checkpoint
        directory, so it must be path-safe).
    scenario:
        Paper artefact to audit: ``figure1`` / ``table1`` / ``table2`` /
        ``table3``.
    algorithm:
        Search algorithm registry name (``balanced``, ``beam``, ...).
    functions:
        Scoring-function subset to run (empty = every function the scenario
        defines).  One journal row per (function, algorithm) cell.
    seed:
        Run seed; with the same spec it makes results byte-identical across
        daemon restarts.
    n_workers:
        Population-size override (``None`` = the scenario's default).
    priority:
        Smaller runs first among queued jobs (ties in submission order).
    deadline_seconds:
        Per-job compute budget, started when the job begins *executing*
        (queue wait does not consume it).  An expired job stops at the next
        iteration boundary and lands in ``CANCELLED`` with its flagged
        partial rows attached.  ``None`` = unbounded.
    max_attempts:
        Total tries before a repeatedly failing job is ``QUARANTINED``.
    metric:
        Histogram distance to optimise (paper default: EMD).
    kind:
        ``"audit"`` (detect only) or ``"mitigate"`` (detect, then repair the
        ranking with ``strategy`` and report before/after).
    strategy:
        Repair strategy registry name (mitigate jobs only): ``fair_topk`` /
        ``det_rerank`` / ``quantile``.
    top_k:
        Re-rank depth for mitigate jobs (``None`` = the full population).
    min_proportion / alpha / amount:
        Strategy knobs, forwarded to
        :func:`~repro.repair.repair_ranking` (see its docstring).
    kernel:
        Kernel backend for the distance computations (``"numpy"`` /
        ``"scalar"`` / ``"numba"``; ``None`` = the daemon default).
        Bit-identical across backends, so results are unchanged whichever
        is selected — it is a cost knob, not part of the job's identity.
    tenant:
        Fair-share scheduling bucket.  Jobs compete for priority only
        within their tenant; across tenants the scheduler serves queues in
        weighted stride order (see ``repro.service.scheduling``).  Absent
        in old journals → ``"default"``.
    """

    id: str
    scenario: str
    algorithm: str = "balanced"
    functions: tuple[str, ...] = ()
    seed: int = 0
    n_workers: "int | None" = None
    priority: int = 0
    deadline_seconds: "float | None" = None
    max_attempts: int = 3
    metric: str = "emd"
    kind: str = "audit"
    strategy: str = "fair_topk"
    top_k: "int | None" = None
    min_proportion: float = 0.8
    alpha: float = 0.1
    amount: float = 1.0
    kernel: "str | None" = None
    tenant: str = "default"

    def __post_init__(self) -> None:
        if not _ID_PATTERN.match(self.id):
            raise ServiceError(
                f"job id {self.id!r} must match {_ID_PATTERN.pattern}"
            )
        if not _ID_PATTERN.match(self.tenant):
            raise ServiceError(
                f"tenant {self.tenant!r} must match {_ID_PATTERN.pattern}"
            )
        if self.scenario not in KNOWN_SCENARIOS:
            raise ServiceError(
                f"unknown scenario {self.scenario!r}; choose from {KNOWN_SCENARIOS}"
            )
        if self.deadline_seconds is not None and not self.deadline_seconds > 0:
            raise ServiceError(
                f"deadline_seconds must be > 0, got {self.deadline_seconds}"
            )
        if self.max_attempts < 1:
            raise ServiceError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.n_workers is not None and self.n_workers < 1:
            raise ServiceError(f"n_workers must be >= 1, got {self.n_workers}")
        if self.kernel is not None:
            from repro.engine.kernels import KERNEL_BACKENDS

            if self.kernel not in KERNEL_BACKENDS:
                raise ServiceError(
                    f"unknown kernel backend {self.kernel!r}; "
                    f"choose from {KERNEL_BACKENDS}"
                )
        if self.kind not in JOB_KINDS:
            raise ServiceError(
                f"unknown job kind {self.kind!r}; choose from {JOB_KINDS}"
            )
        if self.kind == "mitigate":
            # Lazy import: the repair registry pulls in scipy, which plain
            # audit submissions should not pay for.
            from repro.repair import available_strategies

            if self.strategy not in available_strategies():
                raise ServiceError(
                    f"unknown repair strategy {self.strategy!r}; "
                    f"choose from {available_strategies()}"
                )
            if self.top_k is not None and self.top_k < 1:
                raise ServiceError(f"top_k must be >= 1, got {self.top_k}")
            if not 0.0 < self.min_proportion <= 1.0:
                raise ServiceError(
                    f"min_proportion must be in (0, 1], got {self.min_proportion}"
                )
            if not 0.0 < self.alpha < 1.0:
                raise ServiceError(f"alpha must be in (0, 1), got {self.alpha}")
            if not 0.0 <= self.amount <= 1.0:
                raise ServiceError(f"amount must be in [0, 1], got {self.amount}")
        object.__setattr__(self, "functions", tuple(self.functions))

    # ------------------------------------------------------------- (de)serde

    def to_dict(self) -> dict:
        """JSON-safe spec (tuples become lists; exact round-trip)."""
        payload = asdict(self)
        payload["functions"] = list(self.functions)
        payload["schema"] = JOB_SCHEMA
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AuditJob":
        """Rebuild a spec from :meth:`to_dict` output; unknown keys rejected.

        Accepts the ``repro.job/v2`` schema tag or its absence (v1 journal
        records predate the tag and are always audit jobs); any other tag is
        rejected rather than mis-parsed.
        """
        data = dict(payload)
        schema = data.pop("schema", None)
        if schema is not None and schema != JOB_SCHEMA:
            raise ServiceError(
                f"unsupported job schema {schema!r}; expected {JOB_SCHEMA!r}"
            )
        fields = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - fields
        if unknown:
            raise ServiceError(f"unknown AuditJob fields: {sorted(unknown)}")
        if "functions" in data:
            data["functions"] = tuple(data["functions"])
        try:
            return cls(**data)
        except TypeError as exc:
            raise ServiceError(f"malformed AuditJob spec: {exc}") from exc

    def cell_seed(self) -> int:
        """Deterministic per-job seed component (spread like the runner's)."""
        return zlib.crc32(f"{self.seed}:{self.scenario}:{self.algorithm}".encode())


@dataclass
class JobRecord:
    """Mutable in-memory view of one job's lifecycle (journal replay target).

    Not persisted directly — the journal stores the submit record plus every
    transition; this is what replaying them reconstructs.
    """

    job: AuditJob
    state: JobState = JobState.PENDING
    attempt: int = 0
    reason: "str | None" = None
    result: "dict | None" = None
    submitted_at: float = 0.0
    updated_at: float = 0.0
    history: list = field(default_factory=list)

    def transition(
        self,
        new: JobState,
        *,
        attempt: "int | None" = None,
        reason: "str | None" = None,
        result: "dict | None" = None,
        timestamp: float = 0.0,
    ) -> None:
        """Apply one legal state-machine edge (raises on illegal edges)."""
        check_transition(self.state, new)
        self.history.append((self.state, new, reason))
        self.state = new
        if attempt is not None:
            self.attempt = attempt
        self.reason = reason
        if result is not None:
            self.result = result
        self.updated_at = timestamp

    def as_dict(self) -> dict:
        """JSON-safe summary for the HTTP ``/jobs`` endpoint and the CLI."""
        return {
            "id": self.job.id,
            "kind": self.job.kind,
            "state": self.state.value,
            "attempt": self.attempt,
            "reason": self.reason,
            "priority": self.job.priority,
            "tenant": self.job.tenant,
            "algorithm": self.job.algorithm,
            "scenario": self.job.scenario,
            "deadline_seconds": self.job.deadline_seconds,
            "submitted_at": self.submitted_at,
            "updated_at": self.updated_at,
            "result": self.result,
        }

