"""Fair-share job scheduling: per-tenant queues + token-bucket limits.

The daemon used to drain one global ``PriorityQueue``; a single chatty
tenant could fill the queue and starve everyone else.  This module gives
the service two independent fairness levers:

:class:`TenantScheduler`
    One priority heap *per tenant*, served in **weighted stride order**:
    each tenant carries a ``pass`` value that advances by ``1 / weight``
    every time one of its jobs is dispatched, and the scheduler always
    picks the non-empty tenant with the smallest pass (ties broken by
    tenant name).  A tenant with weight 2 therefore receives twice the
    dispatch share of a weight-1 tenant under contention, while an idle
    tenant's unused share is redistributed automatically.  Within a
    tenant, jobs keep the original ``(priority, submission order)``
    ordering.  ``get()`` **blocks** on a condition variable — the worker
    wake-up is event-driven (zero idle latency, no poll interval) — and
    returns ``None`` once :meth:`TenantScheduler.close` is called, which
    is the shutdown sentinel: queued jobs stay PENDING in the journal for
    the next daemon instance (drain semantics).

    Jobs may carry an opaque coalescing ``key`` (the daemon passes the
    batch key of batchable specs).  :meth:`TenantScheduler.get_batch`
    pops a leader and pulls up to ``batch_max - 1`` same-key followers in
    one atomic step via a key → queued-ids index, so batch collection is
    O(batch) no matter how deep the backlog is — never a scan of the
    heaps.  Followers leave the index immediately; their heap entries
    stay behind as tombstoned ghosts that ``get``/``take_matching`` skip
    (and clean up) lazily, which keeps removal O(1) while staying correct
    when a retried job re-queues the same id behind its own ghost.

:class:`TokenBucket`
    The classic refill-at-``rate``, burst-capped counter used by the
    intake path to reject jobs from a tenant exceeding its sustained
    submission rate with the typed ``rate_limited`` reason — *before*
    they consume a queue slot, so the ``queue_full`` backpressure keeps
    protecting well-behaved tenants.

Determinism: stride scheduling uses no randomness and no wall clock, so
given the same put/get interleaving the dispatch order is reproducible —
which is what lets the fairness tests assert exact service ratios.
"""

from __future__ import annotations

import heapq
import threading
import time

from repro.exceptions import ServiceError

__all__ = ["TenantScheduler", "TokenBucket"]


class TenantScheduler:
    """Weighted fair queueing over per-tenant priority heaps.

    ``weights`` maps tenant name → positive dispatch weight; unlisted
    tenants (including the implicit ``"default"``) get weight 1.0.
    """

    def __init__(self, weights: "dict[str, float] | None" = None) -> None:
        self._weights: "dict[str, float]" = {}
        for tenant, weight in (weights or {}).items():
            weight = float(weight)
            if not weight > 0:
                raise ServiceError(
                    f"tenant weight for {tenant!r} must be > 0, got {weight}"
                )
            self._weights[str(tenant)] = weight
        self._cond = threading.Condition()
        self._heaps: "dict[str, list[tuple[int, int, str]]]" = {}
        self._passes: "dict[str, float]" = {}
        # Coalescing support: job id -> key, key -> {job id: tenant} (in
        # submission order), and ghost counts for entries whose job was
        # already taken as a batch follower.
        self._keys: "dict[str, str]" = {}
        self._index: "dict[str, dict[str, str]]" = {}
        self._tombstones: "dict[str, int]" = {}
        self._seq = 0
        self._size = 0
        self._closed = False

    def weight(self, tenant: str) -> float:
        return self._weights.get(tenant, 1.0)

    def __len__(self) -> int:
        with self._cond:
            return self._size

    @property
    def closed(self) -> bool:
        return self._closed

    # ------------------------------------------------------------------ put/get

    def put(
        self, tenant: str, priority: int, job_id: str, key: "str | None" = None
    ) -> None:
        """Enqueue one job under its tenant and wake one waiting worker.

        ``key`` is an opaque coalescing key: jobs sharing one may be
        pulled together by :meth:`get_batch`.  Accepted even after
        :meth:`close` (a retrying job re-queued during drain simply stays
        PENDING — ``get`` never hands it out).
        """
        with self._cond:
            self._seq += 1
            heap = self._heaps.get(tenant)
            if heap is None:
                heap = self._heaps[tenant] = []
                # A tenant joining (or re-joining after going idle) starts
                # at the current minimum pass: it cannot bank idle time to
                # monopolise the workers later.
                self._passes[tenant] = min(self._passes.values(), default=0.0)
            heapq.heappush(heap, (priority, self._seq, job_id))
            if key is not None:
                self._keys[job_id] = key
                self._index.setdefault(key, {})[job_id] = tenant
            self._size += 1
            self._cond.notify()

    def get(self, timeout: "float | None" = None) -> "str | None":
        """Dequeue the next job id in weighted fair order.

        Blocks until a job is available; returns ``None`` on close (the
        shutdown sentinel) or — when ``timeout`` is given — after waiting
        that long without work.
        """
        batch = self.get_batch(1, timeout=timeout)
        return None if batch is None else batch[0]

    def get_batch(
        self, batch_max: int, timeout: "float | None" = None
    ) -> "list[str] | None":
        """Dequeue a leader plus up to ``batch_max - 1`` queued jobs that
        share its coalescing key, atomically.

        The followers come out of the key index in submission order and
        each is charged to its own tenant's stride, so batching never
        distorts the fair-share accounting.  Blocking/close/timeout
        semantics match :meth:`get`; the leader is always ``batch[0]``.
        """
        with self._cond:
            while True:
                if self._closed:
                    return None
                tenant = self._pick()
                if tenant is not None:
                    popped = self._pop(tenant)
                    if popped is None:
                        continue  # the heap held only ghosts; re-pick
                    leader, key = popped
                    batch = [leader]
                    bucket = self._index.get(key) if key is not None else None
                    while bucket and len(batch) < batch_max:
                        follower, follower_tenant = next(iter(bucket.items()))
                        del bucket[follower]
                        del self._keys[follower]
                        # The follower's heap entry stays behind as a
                        # ghost; counted tombstones (not a set) keep a
                        # retried job's fresh entry distinct from the
                        # ghost in front of it.
                        self._tombstones[follower] = (
                            self._tombstones.get(follower, 0) + 1
                        )
                        self._passes[follower_tenant] += 1.0 / self.weight(
                            follower_tenant
                        )
                        self._size -= 1
                        batch.append(follower)
                    if bucket is not None and not bucket:
                        del self._index[key]
                    return batch
                if not self._cond.wait(timeout) and timeout is not None:
                    return None

    def _pick(self) -> "str | None":
        """Non-empty tenant with the smallest (pass, name); None if idle."""
        best = None
        for tenant, heap in self._heaps.items():
            if not heap:
                continue
            key = (self._passes[tenant], tenant)
            if best is None or key < best[0]:
                best = (key, tenant)
        return None if best is None else best[1]

    def _consume_ghost(self, job_id: str) -> bool:
        """True (and one tombstone burned) if this heap entry is a ghost."""
        ghosts = self._tombstones.get(job_id)
        if not ghosts:
            return False
        if ghosts == 1:
            del self._tombstones[job_id]
        else:
            self._tombstones[job_id] = ghosts - 1
        return True

    def _deindex(self, job_id: str) -> None:
        key = self._keys.pop(job_id, None)
        if key is not None:
            bucket = self._index.get(key)
            if bucket is not None:
                bucket.pop(job_id, None)
                if not bucket:
                    del self._index[key]

    def _pop(self, tenant: str) -> "tuple[str, str | None] | None":
        """Pop the tenant's next live job, skipping (and reaping) ghosts.

        Returns ``(job_id, key)`` with the dispatch charged to the
        tenant's stride, or ``None`` if the heap held only ghosts.
        """
        heap = self._heaps[tenant]
        while heap:
            _, _, job_id = heapq.heappop(heap)
            if self._consume_ghost(job_id):
                continue
            if not heap:
                del self._heaps[tenant]
            key = self._keys.get(job_id)
            self._deindex(job_id)
            self._passes[tenant] += 1.0 / self.weight(tenant)
            self._size -= 1
            return job_id, key
        del self._heaps[tenant]
        return None

    def take_matching(self, match, limit: int) -> "list[str]":
        """Remove and return up to ``limit`` queued job ids accepted by
        ``match`` (a ``job_id -> bool`` predicate), scanning tenants in
        name order and each tenant's jobs in dispatch order.

        The generic (O(queue)) pull API; the daemon's batching path uses
        the indexed :meth:`get_batch` instead.  Each taken job is charged
        to its tenant's stride exactly like a normal dispatch.
        """
        taken: "list[str]" = []
        if limit <= 0:
            return taken
        with self._cond:
            for tenant in sorted(self._heaps):
                if len(taken) >= limit:
                    break
                keep: "list[tuple[int, int, str]]" = []
                for entry in sorted(self._heaps[tenant]):
                    if self._consume_ghost(entry[2]):
                        continue
                    if len(taken) < limit and match(entry[2]):
                        taken.append(entry[2])
                        self._deindex(entry[2])
                        self._passes[tenant] += 1.0 / self.weight(tenant)
                    else:
                        keep.append(entry)
                if keep:
                    heapq.heapify(keep)
                    self._heaps[tenant] = keep
                else:
                    del self._heaps[tenant]
            self._size -= len(taken)
        return taken

    def close(self) -> None:
        """Release every blocked ``get`` with the ``None`` sentinel."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()


class TokenBucket:
    """Thread-safe token bucket: sustained ``rate`` per second, ``burst`` cap.

    ``try_acquire`` never blocks — intake either admits the job or rejects
    it immediately with a typed reason; queueing rate-limited work would
    just move the starvation into the queue.
    """

    def __init__(
        self, rate: float, burst: int, clock=time.monotonic
    ) -> None:
        if not rate > 0:
            raise ServiceError(f"rate must be > 0 jobs/s, got {rate}")
        if burst < 1:
            raise ServiceError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()
        self._lock = threading.Lock()

    def try_acquire(self) -> bool:
        """Take one token if available; False means "rate limited"."""
        with self._lock:
            now = self._clock()
            self._tokens = min(
                self.burst, self._tokens + (now - self._last) * self.rate
            )
            self._last = now
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False
