"""Content-addressed cross-job cache for the audit service.

Repeated audits of the same tenant redo the same expensive setup: generate
the scenario population, build the atom table, and re-derive pair scores the
previous job already paid for.  This module removes that waste without ever
risking a stale answer, by addressing every cache entry with the *content*
it was derived from:

- ``("scenario", name, n_workers)`` — the generated scenario object
  (population + scoring functions).  Scenario generation is deterministic
  given those two values, so the memo is exact.
- ``("atoms", population fp, scores fp, bin spec)`` — the
  :class:`~repro.engine.atoms.AtomTable` for one (population, scoring
  function, binning) triple.  The fingerprints hash the protected columns
  and the score vector byte-for-byte, so any change to either produces a
  different key rather than a wrong hit.
- ``("values", population fp, scores fp, bin spec, metric, weighting)`` —
  the engine's objective value cache.  Its keys are themselves
  content-addressed (sorted pmf-byte multisets), so entries transplant
  safely between engines sharing the same spec/metric/weighting.
- ``("audit", ...)`` / ``("experiment", ...)`` — full audit results
  (:func:`cached_audit`) and whole experiment payloads (the service's
  ``_execute``).  The search trajectory is a pure function of the
  population, the score vector, the bin spec, metric, weighting,
  algorithm and seed (and the execution backend, whose identity the
  result *reports*), so replaying a stored result is byte-for-byte what
  re-running the search would produce.

The kernel backend is deliberately **not** part of any key: the parity
harness (``tests/parity/``) proves every backend bit-identical, so a value
computed under one backend is byte-for-byte the value under another.

Lookups compare the full key material, not just its digest — a digest
collision is rejected (counted in ``service.cache_collisions``) instead of
served.  Eviction is LRU under a byte budget.  The cache is in-memory only:
a crash plus journal replay restores a consistent *cache-cold* daemon, so
no invalidation logic has to survive restarts.  Mutation of a monitored
population invalidates exactly that monitor's entries via the owner index
(:meth:`CrossJobCache.invalidate_owner`).

Metrics: ``service.cache_hits`` / ``service.cache_misses`` /
``service.cache_evictions`` / ``service.cache_collisions`` /
``service.cache_invalidated`` counters and ``service.cache_bytes`` /
``service.cache_entries`` gauges.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

import numpy as np

from repro.core.histogram import HistogramSpec
from repro.engine.engine import EvaluationEngine
from repro.metrics import get_metric

__all__ = [
    "CachingEngineFactory",
    "CrossJobCache",
    "cache_key",
    "cached_audit",
    "value_cache_nbytes",
    "population_fingerprint",
    "scores_fingerprint",
    "spec_token",
]


# ------------------------------------------------------------- fingerprints


def population_fingerprint(population) -> str:
    """Content hash of the protected columns that drive partitioning.

    Two populations with equal fingerprints produce identical atom tables
    and identical partition code streams, which is exactly the reuse
    contract the cache needs.
    """
    digest = hashlib.sha256()
    digest.update(
        repr((population.size, tuple(population.schema.protected_names))).encode()
    )
    for name in population.schema.protected_names:
        codes = np.ascontiguousarray(population.partition_codes(name))
        digest.update(repr((codes.shape, str(codes.dtype))).encode())
        digest.update(codes.tobytes())
    return digest.hexdigest()


def scores_fingerprint(scores) -> str:
    """Content hash of one scoring function's output vector."""
    array = np.ascontiguousarray(np.asarray(scores, dtype=np.float64))
    digest = hashlib.sha256()
    digest.update(repr(array.shape).encode())
    digest.update(array.tobytes())
    return digest.hexdigest()


def spec_token(spec: "HistogramSpec | None") -> tuple:
    """Canonical, hashable form of a histogram spec."""
    spec = spec if spec is not None else HistogramSpec()
    return (int(spec.bins), float(spec.low), float(spec.high))


def cache_key(material: tuple) -> str:
    """Digest of one entry's full key material."""
    return hashlib.sha256(repr(material).encode()).hexdigest()


def value_cache_nbytes(values: dict) -> int:
    """Byte estimate of an exported engine value cache."""
    total = 0
    for key in values:
        total += 72  # tuple + dict-slot + float overhead
        for part in key:
            if isinstance(part, (bytes, bytearray)):
                total += len(part)
            elif isinstance(part, tuple):
                total += sum(
                    len(p) if isinstance(p, (bytes, bytearray)) else 16 for p in part
                )
            else:
                total += 16
    return total


def _scenario_nbytes(scenario) -> int:
    """Byte estimate of a memoised scenario's population."""
    population = scenario.population
    total = 256
    for name in population.schema.protected_names:
        total += int(population.partition_codes(name).nbytes)
    for name in population.schema.observed_names:
        total += int(population.observed_column(name).nbytes)
    return total


# -------------------------------------------------------------------- cache


class _Entry:
    __slots__ = ("key", "material", "payload", "nbytes", "owner")

    def __init__(self, key, material, payload, nbytes, owner):
        self.key = key
        self.material = material
        self.payload = payload
        self.nbytes = nbytes
        self.owner = owner


class CrossJobCache:
    """Thread-safe content-addressed LRU cache with a byte budget.

    Parameters
    ----------
    max_bytes:
        Total payload budget; least-recently-used entries are evicted once
        it is exceeded.  ``None`` or ``<= 0`` disables the cache entirely
        (every ``get`` misses, every ``put`` is a no-op).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving the
        ``service.cache_*`` counters and gauges.
    """

    def __init__(self, max_bytes: "int | None" = 256 * 1024 * 1024, metrics=None):
        self.max_bytes = int(max_bytes) if max_bytes else 0
        self.metrics = metrics
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        self._owners: "dict[str, set[str]]" = {}
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.collisions = 0
        self.invalidated = 0

    @property
    def enabled(self) -> bool:
        return self.max_bytes > 0

    def _inc(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.inc(name, amount)

    def _publish_gauges(self) -> None:
        if self.metrics is not None:
            self.metrics.set_gauge("service.cache_bytes", self._bytes)
            self.metrics.set_gauge("service.cache_entries", len(self._entries))

    def get(self, material: tuple):
        """Payload for ``material``, or ``None`` on miss.

        A digest hit whose stored material differs (hash collision) is
        *rejected* — counted separately and reported as a miss — so a
        collision can degrade performance but never correctness.
        """
        if not self.enabled:
            return None
        key = cache_key(material)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                self._inc("service.cache_misses")
                return None
            if entry.material != material:
                self.collisions += 1
                self.misses += 1
                self._inc("service.cache_collisions")
                self._inc("service.cache_misses")
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            self._inc("service.cache_hits")
            return entry.payload

    def put(self, material: tuple, payload, nbytes: int, owner: "str | None" = None):
        """Insert (or refresh) one entry; evicts LRU past the byte budget.

        An entry larger than the whole budget is not stored at all —
        admitting it would immediately evict everything else for a payload
        that can never be kept.
        """
        if not self.enabled:
            return
        nbytes = max(int(nbytes), 1)
        if nbytes > self.max_bytes:
            return
        key = cache_key(material)
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old.nbytes
                self._unindex(old)
            entry = _Entry(key, material, payload, nbytes, owner)
            self._entries[key] = entry
            self._bytes += nbytes
            if owner is not None:
                self._owners.setdefault(owner, set()).add(key)
            evicted = 0
            while self._bytes > self.max_bytes and self._entries:
                victim_key, victim = next(iter(self._entries.items()))
                if victim_key == key:
                    break
                del self._entries[victim_key]
                self._bytes -= victim.nbytes
                self._unindex(victim)
                evicted += 1
            self.evictions += evicted
            self._inc("service.cache_evictions", evicted)
            self._publish_gauges()

    def _unindex(self, entry: _Entry) -> None:
        if entry.owner is not None:
            keys = self._owners.get(entry.owner)
            if keys is not None:
                keys.discard(entry.key)
                if not keys:
                    del self._owners[entry.owner]

    def invalidate_owner(self, owner: str) -> int:
        """Drop every entry tagged with ``owner``; returns the count.

        The audit service calls this under the monitor's lock whenever a
        mutation batch lands, so an O(Δ) re-audit can never be served
        artifacts derived from the pre-mutation population.
        """
        if not self.enabled:
            return 0
        with self._lock:
            keys = self._owners.pop(owner, None)
            if not keys:
                return 0
            dropped = 0
            for key in keys:
                entry = self._entries.pop(key, None)
                if entry is not None:
                    self._bytes -= entry.nbytes
                    dropped += 1
            self.invalidated += dropped
            self._inc("service.cache_invalidated", dropped)
            self._publish_gauges()
            return dropped

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._owners.clear()
            self._bytes = 0
            self._publish_gauges()

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "collisions": self.collisions,
                "invalidated": self.invalidated,
            }

    # -------------------------------------------------------- scenario memo

    def scenario(self, name: str, n_workers: "int | None", builder):
        """Memoised scenario construction (population generation dominates
        cold-job latency at scale, so this is the big warm-job win)."""
        material = ("scenario", str(name), n_workers)
        hit = self.get(material)
        if hit is not None:
            return hit["scenario"]
        scenario = builder()
        self.put(
            material,
            {"scenario": scenario},
            _scenario_nbytes(scenario),
            owner=f"scenario:{name}",
        )
        return scenario


# ---------------------------------------------------- caching engine factory


class _HarvestingEngine(EvaluationEngine):
    """Engine that donates its atom table and value cache back on close."""

    def bind_cache(self, cache, atoms_material, values_material, owner):
        self._cjc_cache = cache
        self._cjc_atoms_material = atoms_material
        self._cjc_values_material = values_material
        self._cjc_owner = owner

    def close(self) -> None:
        cache = getattr(self, "_cjc_cache", None)
        self._cjc_cache = None
        if cache is not None:
            table = getattr(self, "_atom_table", None)
            if table is not None:
                cache.put(
                    self._cjc_atoms_material,
                    {"atom_table": table},
                    int(table.nbytes()),
                    owner=self._cjc_owner,
                )
            values = self.export_value_cache()
            if values:
                cache.put(
                    self._cjc_values_material,
                    {"value_cache": values},
                    value_cache_nbytes(values),
                    owner=self._cjc_owner,
                )
        super().close()


class CachingEngineFactory:
    """Drop-in ``engine_factory`` that reuses atoms and pair scores.

    Passed to :func:`~repro.simulation.runner.run_scenario` (and through it
    to every algorithm's ``run``): each engine it builds first looks up the
    cache for an atom table and a value cache matching its exact
    (population, scores, spec[, metric, weighting]) content, and donates
    its own artifacts back when closed.  Because both lookup keys and the
    engine's internal value-cache keys are content-addressed, a hit can
    only ever reproduce what a cold engine would have computed.
    """

    def __init__(self, cache: CrossJobCache, owner: "str | None" = None):
        self.cache = cache
        self.owner = owner

    def __call__(self, population, scores, **kwargs):
        spec = kwargs.get("hist_spec")
        metric = kwargs.get("metric", "emd")
        metric_name = get_metric(metric).name if isinstance(metric, str) else metric.name
        weighting = str(kwargs.get("weighting", "uniform"))
        if not self.cache.enabled:
            return EvaluationEngine(population, scores, **kwargs)
        pop_fp = population_fingerprint(population)
        score_fp = scores_fingerprint(scores)
        token = spec_token(spec)
        atoms_material = ("atoms", pop_fp, score_fp, token)
        values_material = ("values", pop_fp, score_fp, token, metric_name, weighting)
        atoms_hit = self.cache.get(atoms_material)
        values_hit = self.cache.get(values_material)
        if atoms_hit is not None:
            kwargs.setdefault("atom_table", atoms_hit["atom_table"])
        if values_hit is not None:
            kwargs.setdefault("seed_value_cache", values_hit["value_cache"])
        engine = _HarvestingEngine(population, scores, **kwargs)
        engine.bind_cache(self.cache, atoms_material, values_material, self.owner)
        return engine


# ------------------------------------------------------------ audit memo


def _result_nbytes(result) -> int:
    """Byte estimate of a stored :class:`AlgorithmResult` (the partition
    index arrays dominate at scale)."""
    total = 2048
    for partition in result.partitioning:
        total += int(partition.indices.nbytes)
    return total


def cached_audit(cache: CrossJobCache, algorithm: str, population, scores, **kwargs):
    """Content-addressed memo around one full ``algorithm.run`` audit.

    The key covers everything that pins the (deterministic) search
    trajectory: population + scores fingerprints, bin spec, metric,
    weighting, algorithm name, the integer seed, and the execution
    backend (whose identity the returned result reports).  The kernel
    backend is excluded — parity-proven bit-identical.  On a miss the
    audit runs through a :class:`CachingEngineFactory` bound to the same
    cache, so even result misses warm the atom and value families.

    A non-integer ``rng`` (a live generator) cannot be fingerprinted, so
    such calls bypass the result memo and only get engine-level caching.
    """
    from repro.core.algorithms.base import get_algorithm

    owner = kwargs.pop("owner", None)
    runner = get_algorithm(algorithm)
    rng = kwargs.get("rng")
    memoisable = (
        cache.enabled
        and (rng is None or isinstance(rng, (int, np.integer)))
        and kwargs.get("fault_config") is None
        and kwargs.get("deadline") is None
    )
    if not memoisable:
        kwargs.setdefault("engine_factory", CachingEngineFactory(cache, owner=owner))
        return runner.run(population, scores, **kwargs)
    metric = kwargs.get("metric", "emd")
    metric_name = get_metric(metric).name if isinstance(metric, str) else metric.name
    material = (
        "audit",
        str(algorithm),
        population_fingerprint(population),
        scores_fingerprint(scores),
        spec_token(kwargs.get("hist_spec")),
        metric_name,
        str(kwargs.get("weighting", "uniform")),
        None if rng is None else int(rng),
        str(kwargs.get("backend") or "sequential"),
        int(kwargs.get("workers") or 1),
    )
    hit = cache.get(material)
    if hit is not None:
        return hit["result"]
    kwargs.setdefault("engine_factory", CachingEngineFactory(cache, owner=owner))
    result = runner.run(population, scores, **kwargs)
    cache.put(material, {"result": result}, _result_nbytes(result), owner=owner)
    return result
