"""Long-running fairness-audit service.

The three layers, bottom up:

* :mod:`repro.service.jobs` — typed :class:`AuditJob` specs and the
  explicit job-lifecycle state machine;
* :mod:`repro.service.journal` — the crash-safe append-only
  :class:`JobJournal` (CRC-checked JSONL, fsync'd appends, torn-tail
  recovery) that makes the daemon's state survive SIGKILL;
* :mod:`repro.service.monitor` — monitored populations: long-lived mutable
  populations that clients stream mutations at, re-audited on a debounced
  schedule with O(Δ) incremental work;
* :mod:`repro.service.snapshot` — durable, digest-verified snapshots of
  monitored populations for byte-identical restarts;
* :mod:`repro.service.scheduling` — fair-share dispatch: weighted
  per-tenant priority queues (:class:`TenantScheduler`) and per-tenant
  :class:`TokenBucket` rate limits;
* :mod:`repro.service.server` — the :class:`AuditService` daemon: bounded
  queue with typed backpressure, worker threads, per-job deadlines,
  poison-job quarantine, graceful drain, job batching and sharded
  execution;
* :mod:`repro.service.http` — the ``asyncio`` HTTP front end serving the
  ``/v1`` API (and the deprecated legacy aliases) without a thread per
  connection;
* :mod:`repro.service.chaos` — the seeded, deterministic fault-injection
  layer (disk/net/worker chaos specs and crash points) threaded through
  every seam above; ``serve --chaos`` arms it, ``docs/robustness.md``
  maps the taxonomy.

See ``docs/service.md`` and ``docs/streaming.md`` for the operational story.
"""

from repro.service.chaos import (
    CRASH_POINTS,
    ChaosConfig,
    DiskFaultConfig,
    NetChaosConfig,
    WorkerChaosConfig,
)
from repro.service.jobs import (
    JOB_KINDS,
    JOB_SCHEMA,
    KNOWN_SCENARIOS,
    TERMINAL_STATES,
    VALID_TRANSITIONS,
    AuditJob,
    JobRecord,
    JobState,
    check_transition,
)
from repro.service.journal import JOURNAL_SCHEMA, JobJournal
from repro.service.monitor import MonitoredPopulation, MonitorSpec
from repro.service.scheduling import TenantScheduler, TokenBucket
from repro.service.server import (
    HEALTH_STATES,
    REJECTION_REASONS,
    AuditService,
    ServiceConfig,
)
from repro.service.snapshot import (
    SNAPSHOT_SCHEMA,
    compact_snapshot,
    load_snapshot,
    verify_snapshot,
    write_snapshot,
)

__all__ = [
    "AuditJob",
    "AuditService",
    "CRASH_POINTS",
    "ChaosConfig",
    "DiskFaultConfig",
    "HEALTH_STATES",
    "JobJournal",
    "NetChaosConfig",
    "WorkerChaosConfig",
    "JobRecord",
    "JobState",
    "JOB_KINDS",
    "JOB_SCHEMA",
    "JOURNAL_SCHEMA",
    "KNOWN_SCENARIOS",
    "MonitorSpec",
    "MonitoredPopulation",
    "REJECTION_REASONS",
    "SNAPSHOT_SCHEMA",
    "ServiceConfig",
    "TERMINAL_STATES",
    "TenantScheduler",
    "TokenBucket",
    "VALID_TRANSITIONS",
    "check_transition",
    "compact_snapshot",
    "load_snapshot",
    "verify_snapshot",
    "write_snapshot",
]
