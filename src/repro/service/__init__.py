"""Long-running fairness-audit service.

The three layers, bottom up:

* :mod:`repro.service.jobs` — typed :class:`AuditJob` specs and the
  explicit job-lifecycle state machine;
* :mod:`repro.service.journal` — the crash-safe append-only
  :class:`JobJournal` (CRC-checked JSONL, fsync'd appends, torn-tail
  recovery) that makes the daemon's state survive SIGKILL;
* :mod:`repro.service.server` — the :class:`AuditService` daemon: bounded
  queue with typed backpressure, worker threads, per-job deadlines,
  poison-job quarantine, graceful drain and the stdlib HTTP endpoints.

See ``docs/service.md`` for the operational story.
"""

from repro.service.jobs import (
    KNOWN_SCENARIOS,
    TERMINAL_STATES,
    VALID_TRANSITIONS,
    AuditJob,
    JobRecord,
    JobState,
    check_transition,
)
from repro.service.journal import JOURNAL_SCHEMA, JobJournal
from repro.service.server import REJECTION_REASONS, AuditService, ServiceConfig

__all__ = [
    "AuditJob",
    "AuditService",
    "JobJournal",
    "JobRecord",
    "JobState",
    "JOURNAL_SCHEMA",
    "KNOWN_SCENARIOS",
    "REJECTION_REASONS",
    "ServiceConfig",
    "TERMINAL_STATES",
    "VALID_TRANSITIONS",
    "check_transition",
]
