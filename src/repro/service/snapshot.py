"""Durable snapshots of monitored populations (``repro.snapshot/v1``).

A snapshot is one JSON file capturing everything needed to restore a
:class:`~repro.service.monitor.MonitoredPopulation` byte-identically:

* the monitor **spec** plus its ``fingerprint`` (SHA-256 of the canonical
  spec JSON) — restore refuses a snapshot taken under a different spec,
  exactly like :class:`~repro.simulation.checkpoint.CheckpointStore`
  refuses a checkpoint from a different experiment;
* the mutable population's id-ordered **state payload** at ``version``;
* the **series** of unfairness-over-time points journaled so far;
* a **digest** — SHA-256 of the canonical state — recomputed on load so a
  corrupted or hand-edited file fails loudly instead of restoring wrong
  numbers.

Writes are atomic (:func:`~repro.io.atomic.atomic_write_text`): a crash
mid-snapshot leaves the previous file intact.  A restored store continues
the mutation log at ``version``, so journal batches past the snapshot
replay on top seamlessly.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Mapping

from repro.exceptions import SnapshotError
from repro.io.atomic import atomic_write_text
from repro.io.records import canonical_json

__all__ = [
    "SNAPSHOT_SCHEMA",
    "spec_fingerprint",
    "write_snapshot",
    "load_snapshot",
    "read_snapshot_payload",
    "verify_snapshot",
    "compact_snapshot",
]

#: Format tag; bump on incompatible layout changes.
SNAPSHOT_SCHEMA = "repro.snapshot/v1"


def _write_json(path: Path, payload: dict) -> None:
    atomic_write_text(
        path,
        json.dumps(payload, sort_keys=True, separators=(",", ":")),
        crash_scope="snapshot",
    )


def spec_fingerprint(spec: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical JSON of a monitor spec dict."""
    return hashlib.sha256(canonical_json(dict(spec)).encode("utf-8")).hexdigest()


def write_snapshot(
    path: "str | Path",
    spec: Mapping[str, Any],
    store,
    series: "list[dict]",
) -> dict:
    """Atomically write one snapshot; returns the payload written.

    ``store`` is a :class:`~repro.marketplace.streaming.MutablePopulation`;
    its state payload and digest are captured under the caller's lock, so
    the snapshot is a consistent point-in-time cut.
    """
    payload = {
        "schema": SNAPSHOT_SCHEMA,
        "fingerprint": spec_fingerprint(spec),
        "spec": dict(spec),
        "version": store.version,
        "state": store.state_payload(),
        "series": list(series),
        "digest": store.state_digest(),
    }
    _write_json(Path(path), payload)
    return payload


def read_snapshot_payload(path: "str | Path") -> dict:
    """Parse and schema-gate a snapshot file (no state reconstruction)."""
    path = Path(path)
    if not path.exists():
        raise SnapshotError(f"no snapshot file at {path}")
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SnapshotError(f"unreadable snapshot {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise SnapshotError(f"snapshot {path} is not a JSON object")
    if payload.get("schema") != SNAPSHOT_SCHEMA:
        raise SnapshotError(
            f"snapshot {path} has schema {payload.get('schema')!r}; "
            f"this build reads {SNAPSHOT_SCHEMA!r}"
        )
    for field in ("spec", "version", "state", "series", "digest", "fingerprint"):
        if field not in payload:
            raise SnapshotError(f"snapshot {path} is missing field {field!r}")
    if payload.get("fingerprint") != spec_fingerprint(payload["spec"]):
        raise SnapshotError(
            f"snapshot {path} fingerprint does not match its own spec — "
            f"the file was edited after writing"
        )
    return payload


def load_snapshot(
    path: "str | Path",
    worker_schema,
    hist_spec,
    expected_fingerprint: "str | None" = None,
):
    """Restore ``(store, series, payload)`` from a snapshot file.

    The store's state digest is recomputed and compared against the stored
    one — restore is all-or-nothing.  When ``expected_fingerprint`` is
    given (the live monitor's spec), a snapshot taken under any other spec
    is refused rather than silently mixed in.
    """
    from repro.marketplace.streaming import MutablePopulation

    payload = read_snapshot_payload(path)
    if (
        expected_fingerprint is not None
        and payload["fingerprint"] != expected_fingerprint
    ):
        raise SnapshotError(
            f"snapshot {path} was taken under a different monitor spec "
            f"(fingerprint {payload['fingerprint'][:12]}… != "
            f"expected {expected_fingerprint[:12]}…)"
        )
    try:
        store = MutablePopulation.from_state_payload(
            worker_schema, payload["state"], hist_spec
        )
    except Exception as exc:
        raise SnapshotError(f"snapshot {path} state does not restore: {exc}") from exc
    if store.version != int(payload["version"]):
        raise SnapshotError(
            f"snapshot {path} claims version {payload['version']} but its "
            f"state payload carries version {store.version}"
        )
    digest = store.state_digest()
    if digest != payload["digest"]:
        raise SnapshotError(
            f"snapshot {path} digest mismatch: stored {payload['digest'][:12]}…, "
            f"recomputed {digest[:12]}… — refusing a corrupt restore"
        )
    series = payload["series"]
    if not isinstance(series, list):
        raise SnapshotError(f"snapshot {path} series is not a list")
    return store, list(series), payload


def verify_snapshot(path: "str | Path") -> dict:
    """Full integrity check of a snapshot file; returns a summary dict.

    Rebuilds the population from the state payload and recomputes the
    digest, so a passing verification means the file restores exactly.
    """
    from repro.service.monitor import MonitorSpec

    payload = read_snapshot_payload(path)
    try:
        spec = MonitorSpec.from_dict(payload["spec"])
    except Exception as exc:
        raise SnapshotError(f"snapshot {path} has an invalid spec: {exc}") from exc
    store, series, _ = load_snapshot(path, spec.worker_schema(), spec.hist_spec())
    return {
        "path": str(path),
        "id": spec.id,
        "version": store.version,
        "population_size": store.size,
        "series_points": len(series),
        "digest": payload["digest"],
        "fingerprint": payload["fingerprint"],
    }


def compact_snapshot(path: "str | Path", keep_series: int = 100) -> "tuple[int, int]":
    """Rewrite a snapshot keeping only the last ``keep_series`` points.

    The state payload and digest are untouched — only the unbounded part
    (the unfairness series) is trimmed.  Returns ``(bytes_before,
    bytes_after)``.  The rewrite is atomic and verified first, so a broken
    file is never "compacted" into a plausible-looking one.
    """
    if keep_series < 0:
        raise SnapshotError(f"keep_series must be >= 0, got {keep_series}")
    path = Path(path)
    verify_snapshot(path)
    payload = read_snapshot_payload(path)
    before = path.stat().st_size
    payload["series"] = payload["series"][-keep_series:] if keep_series else []
    _write_json(path, payload)
    return before, path.stat().st_size
