"""Crash-safe append-only job journal (``repro.journal/v1``).

The daemon's only durable state is one JSONL file: a header line followed
by one record per event (job submitted, state transition).  Every line is a
self-contained JSON object ``{"crc": <crc32>, "rec": {...}}`` whose ``crc``
is the CRC32 of the canonical JSON encoding of ``rec`` — so a reader can
tell a record that was *written* from bytes that merely *look like* one.
Appends go through one ``write → flush → fsync`` sequence; once
:meth:`JobJournal.append` returns, the record survives power loss.

Recovery semantics (:meth:`JobJournal.open`):

* a **torn tail** — the final line cut short by a crash mid-append (partial
  JSON, missing newline, failed CRC) — is truncated away and logged; at
  most one record (the one being appended during the kill) is lost, and
  that record had not been acknowledged to anyone;
* a bad record **before** the tail means real corruption and raises
  :class:`~repro.exceptions.JournalError` — recovery must never silently
  skip acknowledged history;
* an unknown ``schema`` tag raises rather than misreads.

Replaying the surviving records (:meth:`JobJournal.replay`) rebuilds the
job table exactly: jobs whose last state is ``RUNNING`` were in flight when
the daemon died and are re-queued (``RUNNING → PENDING``), resuming through
their per-job :class:`~repro.simulation.checkpoint.CheckpointStore` so the
re-run is byte-identical to an uninterrupted one.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Iterator

from repro.exceptions import JournalError, ServiceError
from repro.io.atomic import ensure_directory, fsync_directory, fsync_handle
from repro.service.jobs import AuditJob, JobRecord, JobState

__all__ = ["JobJournal", "JOURNAL_SCHEMA", "encode_record", "decode_line"]

#: Format tag; bump on incompatible layout changes.
JOURNAL_SCHEMA = "repro.journal/v1"


def _canonical(record: dict) -> str:
    """The byte-stable JSON encoding the CRC is computed over."""
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def encode_record(record: dict) -> str:
    """One journal line (no newline): CRC32-wrapped canonical JSON."""
    body = _canonical(record)
    crc = zlib.crc32(body.encode("utf-8"))
    return json.dumps({"crc": crc, "rec": record}, sort_keys=True, separators=(",", ":"))


def decode_line(line: str) -> dict:
    """Parse and CRC-verify one journal line; raises ``ValueError`` if torn."""
    wrapper = json.loads(line)
    if not isinstance(wrapper, dict) or "crc" not in wrapper or "rec" not in wrapper:
        raise ValueError("journal line is not a crc-wrapped record")
    record = wrapper["rec"]
    crc = zlib.crc32(_canonical(record).encode("utf-8"))
    if crc != wrapper["crc"]:
        raise ValueError(f"crc mismatch: stored {wrapper['crc']}, computed {crc}")
    return record


class JobJournal:
    """Append-only, CRC-checked, fsync'd record log for the audit daemon.

    One instance is the single writer; readers (``repro-audit jobs`` on a
    stopped daemon, tests) use :meth:`read_records` / :meth:`replay` on
    their own instance without opening for append.
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self._handle = None
        self.recovered_tail_bytes = 0

    # -------------------------------------------------------------- lifecycle

    def open(self) -> "JobJournal":
        """Open for appending, creating or recovering the file as needed.

        Existing files are scanned first: a torn tail is truncated in place
        (write + fsync) before the append handle is positioned at the end.
        """
        ensure_directory(self.path.parent)
        if self.path.exists():
            self._recover()
        else:
            with self.path.open("w") as handle:
                handle.write(encode_record({"type": "header", "schema": JOURNAL_SCHEMA}) + "\n")
                fsync_handle(handle)
            fsync_directory(self.path.parent)
        self._handle = self.path.open("a")
        return self

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JobJournal":
        return self.open()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -------------------------------------------------------------- appending

    def append(self, record: dict) -> None:
        """Durably append one record (write + flush + fsync before return)."""
        if self._handle is None:
            raise JournalError("journal not open for appending; call open() first")
        self._handle.write(encode_record(record) + "\n")
        fsync_handle(self._handle)

    def append_submit(self, job: AuditJob, timestamp: float) -> None:
        self.append({"type": "submit", "ts": timestamp, "job": job.to_dict()})

    def append_state(
        self,
        job_id: str,
        state: JobState,
        timestamp: float,
        *,
        attempt: "int | None" = None,
        reason: "str | None" = None,
        result: "dict | None" = None,
    ) -> None:
        record = {"type": "state", "ts": timestamp, "id": job_id, "state": state.value}
        if attempt is not None:
            record["attempt"] = attempt
        if reason is not None:
            record["reason"] = reason
        if result is not None:
            record["result"] = result
        self.append(record)

    # ---------------------------------------------------------------- reading

    def _scan(self) -> "tuple[list[dict], int, int]":
        """(records, clean_length_bytes, torn_bytes) of the current file.

        ``clean_length_bytes`` is the offset up to which every line parsed
        and CRC-verified; anything after it is a torn tail — but only if it
        is genuinely the tail.  A bad line *followed by more data* is
        mid-file corruption and raises.
        """
        data = self.path.read_bytes()
        records: list[dict] = []
        offset = 0
        while offset < len(data):
            newline = data.find(b"\n", offset)
            if newline == -1:
                # Unterminated final line: torn by definition.
                return records, offset, len(data) - offset
            line = data[offset : newline]
            try:
                records.append(decode_line(line.decode("utf-8")))
            except (ValueError, UnicodeDecodeError) as exc:
                if newline == len(data) - 1:
                    # Complete-looking but corrupt final line — a crash can
                    # leave this when pre-allocated blocks surface; still
                    # the tail, still safe to drop.
                    return records, offset, len(data) - offset
                raise JournalError(
                    f"journal {self.path} corrupt mid-file at byte {offset}: {exc}"
                ) from exc
            offset = newline + 1
        return records, offset, 0

    def _recover(self) -> None:
        """Validate an existing file, truncating a torn tail in place."""
        records, clean, torn = self._scan()
        if not records or records[0].get("type") != "header":
            raise JournalError(
                f"journal {self.path} has no valid header record; "
                f"refusing to append to an alien file"
            )
        if records[0].get("schema") != JOURNAL_SCHEMA:
            raise JournalError(
                f"journal {self.path} has schema {records[0].get('schema')!r}; "
                f"this build reads {JOURNAL_SCHEMA!r}"
            )
        self.recovered_tail_bytes = torn
        if torn:
            with self.path.open("r+b") as handle:
                handle.truncate(clean)
                handle.flush()
                os.fsync(handle.fileno())

    def read_records(self) -> list[dict]:
        """All verified records (header included); raises on mid-file rot.

        Readable without :meth:`open` — a torn tail is *ignored* (not
        truncated), so inspection tools never mutate a live daemon's file.
        """
        if not self.path.exists():
            raise JournalError(f"no journal file at {self.path}")
        records, _, _ = self._scan()
        if not records or records[0].get("type") != "header":
            raise JournalError(f"journal {self.path} has no valid header record")
        if records[0].get("schema") != JOURNAL_SCHEMA:
            raise JournalError(
                f"journal {self.path} has schema {records[0].get('schema')!r}; "
                f"this build reads {JOURNAL_SCHEMA!r}"
            )
        return records

    def iter_events(self) -> Iterator[dict]:
        """Verified records minus the header."""
        return iter(self.read_records()[1:])

    # --------------------------------------------------------------- replay

    def replay(self) -> "dict[str, JobRecord]":
        """Rebuild the job table from the journal's event history.

        Returns ``{job_id: JobRecord}`` in submission order.  Raises
        :class:`JournalError` on impossible histories (duplicate submits,
        transitions for unknown jobs, illegal state edges) — those mean the
        file was edited or the daemon had a bug, and silently "fixing" them
        would hide exactly the kind of fault this layer exists to surface.
        """
        jobs: "dict[str, JobRecord]" = {}
        for event in self.iter_events():
            kind = event.get("type")
            if kind == "submit":
                try:
                    job = AuditJob.from_dict(event["job"])
                except (KeyError, ServiceError) as exc:
                    raise JournalError(f"journal submit record invalid: {exc}") from exc
                if job.id in jobs:
                    raise JournalError(f"duplicate submit for job id {job.id!r}")
                jobs[job.id] = JobRecord(
                    job=job, submitted_at=float(event.get("ts", 0.0))
                )
            elif kind == "state":
                job_id = event.get("id")
                if job_id not in jobs:
                    raise JournalError(
                        f"state record for unknown job id {job_id!r}"
                    )
                try:
                    state = JobState(event["state"])
                except (KeyError, ValueError) as exc:
                    raise JournalError(f"journal state record invalid: {exc}") from exc
                jobs[job_id].transition(
                    state,
                    attempt=event.get("attempt"),
                    reason=event.get("reason"),
                    result=event.get("result"),
                    timestamp=float(event.get("ts", 0.0)),
                )
            else:
                raise JournalError(f"unknown journal record type {kind!r}")
        return jobs

    def __repr__(self) -> str:
        return f"JobJournal({str(self.path)!r})"
