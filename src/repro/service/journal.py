"""Crash-safe append-only job journal (``repro.journal/v1``).

The daemon's only durable state is one JSONL file: a header line followed
by one record per event (job submitted, state transition, monitored-
population lifecycle).  Every line uses the CRC-wrapped record grammar of
:mod:`repro.io.records`; appends are ordered under one writer lock and
made durable by a **group-commit** fsync (:meth:`JobJournal.sync`) that
concurrent appenders share, so once :meth:`JobJournal.append` returns
(with the default ``sync=True``) the record survives power loss — at a
cost of O(1) fsyncs per burst rather than one per record.

Recovery semantics (:meth:`JobJournal.open`):

* a **torn tail** — the final line cut short by a crash mid-append (partial
  JSON, missing newline, failed CRC) — is truncated away and logged; at
  most one record (the one being appended during the kill) is lost, and
  that record had not been acknowledged to anyone;
* a bad record **before** the tail means real corruption and raises
  :class:`~repro.exceptions.JournalError` — recovery must never silently
  skip acknowledged history;
* an unknown ``schema`` tag raises rather than misreads.

Replaying the surviving records (:meth:`JobJournal.replay_state`) rebuilds
the job table and the monitored-population event streams exactly: jobs
whose last state is ``RUNNING`` were in flight when the daemon died and are
re-queued (``RUNNING → PENDING``); monitored populations are restored from
their latest snapshot plus the journaled mutation batches past it.

Growth control (:meth:`JobJournal.compact`): a streaming daemon appends a
record per mutation batch forever, so the journal needs a size-threshold
rewrite.  Compaction replaces the file *atomically* with an equivalent
minimal history — terminal jobs collapse to a submit plus the shortest
legal transition path to their final state, and monitor mutation batches
already captured by a snapshot are dropped.  Replay of the compacted file
must be equivalent to replay of the original (property-tested): same final
job states/attempts/reasons/results, same post-snapshot monitor events.
"""

from __future__ import annotations

import os
import threading
from pathlib import Path
from typing import Iterator

from repro.exceptions import JournalError, JournalWriteError, ServiceError
from repro.io import faultfs
from repro.io.atomic import (
    atomic_write_text,
    ensure_directory,
    fsync_directory,
    fsync_handle,
)
from repro.io.records import decode_line, encode_record, scan_records
from repro.service.jobs import AuditJob, JobRecord, JobState

__all__ = [
    "JobJournal",
    "JournalState",
    "MonitorEvents",
    "JOURNAL_SCHEMA",
    "MONITOR_RECORD_TYPES",
    "encode_record",
    "decode_line",
    "compact_job_records",
    "compact_monitor_records",
]

#: Format tag; bump on incompatible layout changes.
JOURNAL_SCHEMA = "repro.journal/v1"

#: Record types owned by the monitored-population (streaming) layer.
MONITOR_RECORD_TYPES = ("mpop_create", "mpop_mutations", "mpop_audit")


class MonitorEvents:
    """The journaled history of one monitored population.

    ``spec`` is the creation record's spec dict; ``mutation_batches`` and
    ``audits`` are the raw journal records in append order.  The service
    turns these back into live state (see ``repro.service.monitor``).
    """

    __slots__ = ("spec", "created_at", "mutation_batches", "audits")

    def __init__(self, spec: dict, created_at: float) -> None:
        self.spec = spec
        self.created_at = created_at
        self.mutation_batches: list[dict] = []
        self.audits: list[dict] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MonitorEvents(id={self.spec.get('id')!r}, "
            f"batches={len(self.mutation_batches)}, audits={len(self.audits)})"
        )


class JournalState:
    """Everything :meth:`JobJournal.replay_state` recovers: jobs + monitors."""

    __slots__ = ("jobs", "monitors")

    def __init__(
        self, jobs: "dict[str, JobRecord]", monitors: "dict[str, MonitorEvents]"
    ) -> None:
        self.jobs = jobs
        self.monitors = monitors


class JobJournal:
    """Append-only, CRC-checked, fsync'd record log for the audit daemon.

    One instance is the single writer; readers (``repro-audit jobs`` on a
    stopped daemon, tests) use :meth:`read_records` / :meth:`replay` on
    their own instance without opening for append.
    """

    def __init__(self, path: "str | Path") -> None:
        self.path = Path(path)
        self._handle = None
        self.recovered_tail_bytes = 0
        # Group-commit state.  Writes are ordered by ``_io_lock`` and
        # numbered by ``_write_seq``; ``_sync_seq`` is the highest write
        # known durable.  At most one thread fsyncs at a time
        # (``_syncing``); everyone else waits on ``_sync_cond`` and is
        # released when the in-flight fsync — which covers *all* writes
        # issued before it started — lands.  That is the coalescing win:
        # N threads appending concurrently share O(1) fsyncs, not N.
        self._io_lock = threading.Lock()
        self._sync_cond = threading.Condition()
        self._write_seq = 0
        self._sync_seq = 0
        self._syncing = False
        # Failed-append repair state: ``_clean_bytes`` is the logical
        # length of every successfully appended record (a failed write may
        # leave a torn prefix after it); ``_dirty`` forces a flush+truncate
        # back to that length before the next append.
        self._clean_bytes = 0
        self._dirty = False

    # -------------------------------------------------------------- lifecycle

    def open(self) -> "JobJournal":
        """Open for appending, creating or recovering the file as needed.

        Existing files are scanned first: a torn tail is truncated in place
        (write + fsync) before the append handle is positioned at the end.
        """
        ensure_directory(self.path.parent)
        if self.path.exists():
            self._recover()
        else:
            with self.path.open("w") as handle:
                handle.write(encode_record({"type": "header", "schema": JOURNAL_SCHEMA}) + "\n")
                fsync_handle(handle)
            fsync_directory(self.path.parent)
        self._clean_bytes = self.path.stat().st_size
        self._dirty = False
        self._handle = self.path.open("a")
        return self

    def close(self) -> None:
        if self._handle is None:
            return
        try:
            self.sync()  # nothing acknowledged is allowed to be in limbo
        finally:
            self._drain_sync()
            with self._io_lock:
                handle, self._handle = self._handle, None
            try:
                handle.close()
            except OSError:
                # A failing close (flush of a dirty buffer onto a broken
                # disk) must not mask the sync() error already in flight;
                # whatever it tore off the tail is truncated on next open.
                pass

    def __enter__(self) -> "JobJournal":
        return self.open()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -------------------------------------------------------------- appending

    def append(self, record: dict, *, sync: bool = True) -> int:
        """Append one record; durable before return unless ``sync=False``.

        With ``sync=True`` (the default, and the historical behaviour) the
        record is on stable storage when this returns — but the fsync is a
        *group commit*: concurrent appenders piggyback on one another's
        fsyncs instead of issuing one each.  With ``sync=False`` the write
        is only buffered and ordered; the caller must invoke :meth:`sync`
        (or a later ``sync=True`` append must land) before acknowledging
        anything that depends on it.  Returns the record's write sequence
        number, accepted by :meth:`sync`.

        A write refused by the disk (ENOSPC, EIO, a torn partial write —
        real or chaos-injected) raises :class:`JournalWriteError`; the
        journal marks itself dirty and repairs (flush + truncate back to
        the last good record) before the next append, so one failed write
        never poisons the records behind or after it.
        """
        line = encode_record(record) + "\n"
        with self._io_lock:
            if self._handle is None:
                raise JournalError(
                    "journal not open for appending; call open() first"
                )
            if self._dirty:
                self._repair_locked()
            try:
                faultfs.write(self._handle, line, label="journal")
            except OSError as exc:
                self._dirty = True
                raise JournalWriteError(
                    f"journal append failed: {exc}"
                ) from exc
            self._clean_bytes += len(line.encode("utf-8"))
            self._write_seq += 1
            seq = self._write_seq
        faultfs.crash_point("journal.append.after_write")
        if sync:
            self.sync(seq)
        return seq

    def _repair_locked(self) -> None:
        """Truncate a torn prefix left by a failed append (io lock held).

        Flushes whatever good records are still buffered (the torn
        fragment is ordered last, so the truncate below removes exactly
        it), cuts the file back to ``_clean_bytes``, and repositions the
        append handle.
        """
        handle = self._handle
        try:
            handle.flush()
        except OSError:  # pragma: no cover - flush onto a still-broken disk
            pass
        os.ftruncate(handle.fileno(), self._clean_bytes)
        handle.seek(0, os.SEEK_END)
        self._dirty = False

    def sync(self, seq: "int | None" = None) -> None:
        """Block until write ``seq`` (default: all writes so far) is durable.

        Group commit: if another thread's fsync is already in flight, wait
        for it — it may cover ``seq``.  Otherwise become the syncer,
        capture the current write frontier, fsync once *outside* the
        condition lock, and release every waiter at or below the frontier.
        """
        with self._sync_cond:
            if seq is None:
                seq = self._write_seq
            while True:
                if self._sync_seq >= seq:
                    return
                if not self._syncing:
                    break
                self._sync_cond.wait()
            self._syncing = True
            target = self._write_seq
        try:
            with self._io_lock:
                handle = self._handle
                if handle is not None:
                    try:
                        handle.flush()
                    except OSError as exc:
                        self._dirty = True
                        raise JournalWriteError(
                            f"journal flush failed: {exc}", written=True
                        ) from exc
            if handle is not None:
                faultfs.crash_point("journal.sync.before_fsync")
                try:
                    faultfs.fsync(handle.fileno(), label="journal")
                except OSError as exc:
                    raise JournalWriteError(
                        f"journal fsync failed: {exc}", written=True
                    ) from exc
                faultfs.crash_point("journal.sync.after_fsync")
        except BaseException:
            with self._sync_cond:
                self._syncing = False
                self._sync_cond.notify_all()
            raise
        with self._sync_cond:
            self._syncing = False
            self._sync_seq = max(self._sync_seq, target)
            self._sync_cond.notify_all()

    def _drain_sync(self) -> None:
        """Wait out any in-flight group fsync (used before handle swaps)."""
        with self._sync_cond:
            while self._syncing:
                self._sync_cond.wait()

    def append_submit(
        self, job: AuditJob, timestamp: float, *, sync: bool = True
    ) -> int:
        return self.append(
            {"type": "submit", "ts": timestamp, "job": job.to_dict()}, sync=sync
        )

    def append_state(
        self,
        job_id: str,
        state: JobState,
        timestamp: float,
        *,
        attempt: "int | None" = None,
        reason: "str | None" = None,
        result: "dict | None" = None,
        sync: bool = True,
    ) -> None:
        record = {"type": "state", "ts": timestamp, "id": job_id, "state": state.value}
        if attempt is not None:
            record["attempt"] = attempt
        if reason is not None:
            record["reason"] = reason
        if result is not None:
            record["result"] = result
        self.append(record, sync=sync)

    # ---------------------------------------------------------------- reading

    def _scan(self) -> "tuple[list[dict], int, int]":
        """(records, clean_length_bytes, torn_bytes) of the current file."""
        return scan_records(self.path, error=JournalError)

    def _recover(self) -> None:
        """Validate an existing file, truncating a torn tail in place."""
        records, clean, torn = self._scan()
        if not records or records[0].get("type") != "header":
            raise JournalError(
                f"journal {self.path} has no valid header record; "
                f"refusing to append to an alien file"
            )
        if records[0].get("schema") != JOURNAL_SCHEMA:
            raise JournalError(
                f"journal {self.path} has schema {records[0].get('schema')!r}; "
                f"this build reads {JOURNAL_SCHEMA!r}"
            )
        self.recovered_tail_bytes = torn
        if torn:
            faultfs.crash_point("journal.recover.before_truncate")
            with self.path.open("r+b") as handle:
                handle.truncate(clean)
                handle.flush()
                faultfs.fsync(handle.fileno(), label="journal.recover")

    def read_records(self) -> list[dict]:
        """All verified records (header included); raises on mid-file rot.

        Readable without :meth:`open` — a torn tail is *ignored* (not
        truncated), so inspection tools never mutate a live daemon's file.
        """
        if not self.path.exists():
            raise JournalError(f"no journal file at {self.path}")
        records, _, _ = self._scan()
        if not records or records[0].get("type") != "header":
            raise JournalError(f"journal {self.path} has no valid header record")
        if records[0].get("schema") != JOURNAL_SCHEMA:
            raise JournalError(
                f"journal {self.path} has schema {records[0].get('schema')!r}; "
                f"this build reads {JOURNAL_SCHEMA!r}"
            )
        return records

    def iter_events(self) -> Iterator[dict]:
        """Verified records minus the header."""
        return iter(self.read_records()[1:])

    def size_bytes(self) -> int:
        """Current on-disk size; 0 when the file does not exist yet."""
        try:
            return self.path.stat().st_size
        except OSError:
            return 0

    # --------------------------------------------------------------- replay

    def replay(self) -> "dict[str, JobRecord]":
        """Rebuild the job table from the journal's event history.

        Monitored-population records are skipped here; use
        :meth:`replay_state` to recover them too.
        """
        return self.replay_state().jobs

    def replay_state(self) -> JournalState:
        """Rebuild jobs *and* monitored-population histories from the log.

        Raises :class:`JournalError` on impossible histories (duplicate
        submits, transitions for unknown jobs, illegal state edges, events
        for unknown monitors) — those mean the file was edited or the
        daemon had a bug, and silently "fixing" them would hide exactly the
        kind of fault this layer exists to surface.
        """
        jobs: "dict[str, JobRecord]" = {}
        monitors: "dict[str, MonitorEvents]" = {}
        for event in self.iter_events():
            kind = event.get("type")
            if kind == "submit":
                try:
                    job = AuditJob.from_dict(event["job"])
                except (KeyError, ServiceError) as exc:
                    raise JournalError(f"journal submit record invalid: {exc}") from exc
                if job.id in jobs:
                    # Degraded-mode signature: a group commit's appends hit
                    # the file but its fsync failed, so the batch was
                    # rejected (and unwound) with the submit records already
                    # on disk; the client's retry then appended a second,
                    # identical submit.  Idempotent replay — the retry IS the
                    # same job.  A duplicate with a *different* spec is still
                    # the corruption this guard exists for.
                    if jobs[job.id].job == job:
                        continue
                    raise JournalError(f"duplicate submit for job id {job.id!r}")
                jobs[job.id] = JobRecord(
                    job=job, submitted_at=float(event.get("ts", 0.0))
                )
            elif kind == "state":
                job_id = event.get("id")
                if job_id not in jobs:
                    raise JournalError(
                        f"state record for unknown job id {job_id!r}"
                    )
                try:
                    state = JobState(event["state"])
                except (KeyError, ValueError) as exc:
                    raise JournalError(f"journal state record invalid: {exc}") from exc
                if state is JobState.RUNNING and jobs[job_id].state is JobState.RUNNING:
                    # Degraded-mode signature: a stalled/refused RUNNING job
                    # was re-queued but the broken disk swallowed the PENDING
                    # edge, so the re-run's RUNNING edge lands on RUNNING.
                    # Replay the implied re-queue hop rather than rejecting a
                    # history the degraded service legitimately produces.
                    jobs[job_id].transition(
                        JobState.PENDING,
                        reason="degraded",
                        timestamp=float(event.get("ts", 0.0)),
                    )
                jobs[job_id].transition(
                    state,
                    attempt=event.get("attempt"),
                    reason=event.get("reason"),
                    result=event.get("result"),
                    timestamp=float(event.get("ts", 0.0)),
                )
            elif kind == "mpop_create":
                spec = event.get("spec")
                if not isinstance(spec, dict) or "id" not in spec:
                    raise JournalError("mpop_create record has no spec with an id")
                monitor_id = spec["id"]
                if monitor_id in monitors:
                    raise JournalError(
                        f"duplicate mpop_create for monitor id {monitor_id!r}"
                    )
                monitors[monitor_id] = MonitorEvents(
                    spec=spec, created_at=float(event.get("ts", 0.0))
                )
            elif kind == "mpop_mutations":
                monitor = monitors.get(event.get("id"))
                if monitor is None:
                    raise JournalError(
                        f"mutation record for unknown monitor id {event.get('id')!r}"
                    )
                monitor.mutation_batches.append(event)
            elif kind == "mpop_audit":
                monitor = monitors.get(event.get("id"))
                if monitor is None:
                    raise JournalError(
                        f"audit record for unknown monitor id {event.get('id')!r}"
                    )
                monitor.audits.append(event)
            else:
                raise JournalError(f"unknown journal record type {kind!r}")
        return JournalState(jobs=jobs, monitors=monitors)

    # ------------------------------------------------------------ compaction

    def compact(self, events: "list[dict]") -> int:
        """Atomically rewrite the journal as header + ``events``.

        Returns the bytes reclaimed.  The rewrite goes through
        :func:`~repro.io.atomic.atomic_write_text` (temp file + fsync +
        rename), so a crash mid-compaction leaves either the old or the new
        journal — never a torn hybrid.  The append handle is re-opened on
        the new file.
        """
        was_open = self._handle is not None
        before = self.size_bytes()
        lines = [encode_record({"type": "header", "schema": JOURNAL_SCHEMA})]
        lines.extend(encode_record(event) for event in events)
        if was_open:
            self.close()
        try:
            atomic_write_text(
                self.path, "\n".join(lines) + "\n", crash_scope="journal.compact"
            )
        except OSError as exc:
            # The replace is atomic, so a failed rewrite leaves the old
            # file intact — re-open it and surface a typed write error.
            if was_open:
                self._clean_bytes = self.path.stat().st_size
                self._handle = self.path.open("a")
            raise JournalWriteError(f"journal compaction failed: {exc}") from exc
        if was_open:
            self._clean_bytes = self.path.stat().st_size
            self._handle = self.path.open("a")
        return max(0, before - self.size_bytes())

    def compact_to(
        self, snapshot_versions: "dict[str, int] | None" = None
    ) -> int:
        """Compact in place using the journal's own replayed state.

        ``snapshot_versions`` maps monitor id → population version captured
        by a durable snapshot; mutation batches at or below that version
        (and audit points at or below it) are dropped because snapshot
        restore supersedes them.  Returns bytes reclaimed.
        """
        state = self.replay_state()
        events = compact_job_records(state.jobs)
        events.extend(
            compact_monitor_records(state.monitors, snapshot_versions or {})
        )
        return self.compact(events)


def compact_job_records(jobs: "dict[str, JobRecord]") -> "list[dict]":
    """Minimal legal event list reproducing each job's final state.

    Jobs still PENDING with no attempts keep just their submit record.
    Everything else is collapsed to submit + the shortest legal transition
    path ending at (state, attempt, reason, result): ``PENDING → DONE`` is
    an illegal edge, so terminal jobs emit a synthetic ``RUNNING`` carrying
    the final attempt count first.  Replay equivalence — identical final
    ``(state, attempt, reason, result)`` per job — is property-tested in
    ``tests/test_journal.py``.
    """
    events: "list[dict]" = []
    for record in jobs.values():
        events.append(
            {"type": "submit", "ts": record.submitted_at, "job": record.job.to_dict()}
        )
        state = record.state
        if state is JobState.PENDING and record.attempt == 0:
            continue
        base = {"type": "state", "ts": record.updated_at, "id": record.job.id}
        running = dict(base)
        running["state"] = JobState.RUNNING.value
        running["attempt"] = record.attempt
        if state is JobState.RUNNING:
            if record.reason is not None:
                running["reason"] = record.reason
            events.append(running)
            continue
        events.append(running)
        final = dict(base)
        final["state"] = state.value
        if record.reason is not None:
            final["reason"] = record.reason
        if record.result is not None:
            final["result"] = record.result
        events.append(final)
    return events


def compact_monitor_records(
    monitors: "dict[str, MonitorEvents]",
    snapshot_versions: "dict[str, int]",
) -> "list[dict]":
    """Monitor events worth keeping: create + post-snapshot batches/audits.

    A mutation batch whose last applied version is ≤ the snapshotted
    version is fully captured by the snapshot file and safe to drop; same
    for audit series points (the snapshot stores the series up to its
    version).
    """
    events: "list[dict]" = []
    for monitor_id, monitor in monitors.items():
        floor = int(snapshot_versions.get(monitor_id, -1))
        events.append(
            {"type": "mpop_create", "ts": monitor.created_at, "spec": monitor.spec}
        )
        for batch in monitor.mutation_batches:
            if int(batch.get("version", 0)) > floor:
                events.append(batch)
        for audit in monitor.audits:
            if int(audit.get("version", 0)) > floor:
                events.append(audit)
    return events
