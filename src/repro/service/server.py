"""The long-running fairness-audit daemon.

:class:`AuditService` turns the one-shot experiment pipeline into a
service: callers submit :class:`~repro.service.jobs.AuditJob` specs over
HTTP (or in process), a bounded queue absorbs bursts, worker threads drain
it through :func:`~repro.simulation.runner.run_scenario`, and every
lifecycle event lands durably in the crash-safe
:class:`~repro.service.journal.JobJournal` *before* it is acknowledged.

Robustness properties, each backed by a test in ``tests/test_service.py``:

* **Crash safety** — the journal is written ahead of every transition, so a
  SIGKILL'd daemon restarts with exactly the jobs it had: terminal jobs
  keep their results, queued jobs stay queued, and in-flight jobs are
  re-queued (``RUNNING → PENDING``) and resumed through their per-job
  :class:`~repro.simulation.checkpoint.CheckpointStore` — completed cells
  are skipped and the re-run is byte-identical to an uninterrupted one.
* **Backpressure** — a full queue *rejects* new work with a typed reason
  (:data:`REJECTION_REASONS`) instead of buffering unboundedly or silently
  dropping; every rejection increments ``service.rejected``.
* **Poison-job quarantine** — a job that keeps failing is retried up to its
  ``max_attempts`` and then parked in ``QUARANTINED``; a poison job can
  never crash-loop the daemon.
* **Deadlines** — a per-job compute budget propagates as a cooperative
  :class:`~repro.engine.deadline.Deadline` into every algorithm's search
  loop; an over-budget job stops at the next iteration boundary and lands
  in ``CANCELLED`` with its flagged partial rows attached.
* **Graceful shutdown** — SIGTERM/SIGINT stop intake (rejections say
  ``shutting_down``), let in-flight jobs finish, leave queued jobs
  ``PENDING`` in the journal and exit 0.

Since PR 9 the daemon is built for *throughput*, not just robustness:

* **Fair-share scheduling** — jobs carry a ``tenant`` and are drained in
  weighted stride order from per-tenant priority queues
  (:class:`~repro.service.scheduling.TenantScheduler`); worker wake-ups
  are event-driven (blocking get + shutdown sentinel), so idle dispatch
  latency is zero rather than up to one poll interval.
* **Rate limits** — optional per-tenant token buckets reject a tenant's
  excess submissions with the typed ``rate_limited`` reason before they
  consume queue slots.
* **Batching** — identical small specs (same scenario/algorithm/seed...,
  differing only in id/priority/tenant) queued together coalesce into
  one engine dispatch whose result is journaled to every member with a
  single group-commit fsync (``batch_max`` > 1 enables this).
* **Sharded execution** — ``shard_workers`` routes each job's engine
  work through the atom-range :class:`~repro.engine.backends.ShardedBackend`
  (bit-identical to sequential; see ``tests/parity/test_sharded_parity.py``).

The HTTP surface is intentionally tiny and dependency-free — an
``asyncio`` reactor (see :mod:`repro.service.http`) — and versioned since
``/v1``: ``GET /v1/healthz``, ``GET /v1/metrics``, ``GET/POST /v1/jobs``
(listing accepts ``state=`` / ``kind=`` / ``tenant=`` / ``limit=``
filters), ``GET /v1/jobs/<id>``, ``/v1/populations...`` — with one shared
error envelope ``{"error": {"code", "message", "detail"}}``.  The
historical unversioned routes survive as deprecated aliases
(``Deprecation: true`` header).  See ``docs/api.md`` and
``docs/service.md``.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from pathlib import Path

from repro.exceptions import (
    JobRejectedError,
    JournalWriteError,
    ServiceError,
    WorkerCrashError,
)
from repro.io import faultfs
from repro.obs.metrics import MetricsRegistry
from repro.service.jobs import (
    TERMINAL_STATES,
    AuditJob,
    JobRecord,
    JobState,
)
from repro.service.journal import JobJournal
from repro.service.monitor import MonitoredPopulation, MonitorSpec
from repro.service.scheduling import TenantScheduler, TokenBucket

__all__ = ["AuditService", "ServiceConfig", "REJECTION_REASONS", "HEALTH_STATES"]

#: Typed reasons a submission can be rejected with (``JobRejectedError.reason``).
REJECTION_REASONS = (
    "queue_full",
    "duplicate_id",
    "invalid_spec",
    "shutting_down",
    "rate_limited",
    "degraded",
)

#: The degradation state machine reported by ``/v1/healthz``:
#: ``HEALTHY → READ_ONLY`` on a journal/disk write failure (submits are
#: rejected with the typed ``degraded`` reason, reads and metrics keep
#: working), ``READ_ONLY → HEALTHY`` when the background probe re-verifies
#: the disk, and ``→ DRAINING`` (terminal) once shutdown is requested.
HEALTH_STATES = ("HEALTHY", "READ_ONLY", "DRAINING")


class ServiceConfig:
    """Knobs of one :class:`AuditService` instance.

    Parameters
    ----------
    workdir:
        Daemon state directory: ``journal.jsonl`` plus one checkpoint
        directory per job (``checkpoints/<job id>/``).
    queue_limit:
        Maximum *queued* (PENDING) jobs before submissions are rejected
        with ``queue_full``.  Running jobs do not count against it.
    workers:
        Worker threads draining the queue.
    host, port:
        HTTP bind address; ``port=0`` picks a free port (see
        :attr:`AuditService.address`).  ``port=None`` disables HTTP.
    poll_seconds:
        Historical worker-loop poll interval.  Accepted (and kept for
        config compatibility) but no longer load-bearing: workers now
        block on the scheduler and are woken by submissions or the
        shutdown sentinel, so dispatch latency is event-driven.
    snapshot_dir:
        Where monitored-population snapshots are written after each audit
        (default ``<workdir>/snapshots``).  ``None`` disables snapshotting.
    snapshot_in:
        Directory snapshots are *restored* from at startup; defaults to
        ``snapshot_dir``, so a plain restart resumes from its own files.
    journal_max_bytes:
        Size threshold above which the journal is compacted in place after
        an audit (terminal jobs collapsed, pre-snapshot monitor records
        dropped).  ``None`` disables compaction.
    monitor_poll_seconds:
        Debounce-scheduler wake interval for monitored populations.
    cache_max_bytes:
        Byte budget of the content-addressed cross-job cache (see
        :mod:`repro.service.cache`): repeated audits of the same tenant
        reuse generated populations, atom tables and pair scores.
        ``None`` or ``0`` disables caching.
    engine_kernel:
        Daemon-default kernel backend for distance computations
        (``"numpy"`` / ``"scalar"`` / ``"numba"``); jobs and monitors may
        override per spec.  Bit-identical across backends.
    tenant_weights:
        Tenant name → dispatch weight for the weighted fair scheduler;
        unlisted tenants weigh 1.0.  ``None`` = every tenant equal.
    rate_limit:
        Per-tenant sustained submission rate (jobs/second); submissions
        beyond it are rejected with the typed ``rate_limited`` reason
        (HTTP 429).  ``None`` disables rate limiting.
    rate_limit_burst:
        Token-bucket burst size (default: ``max(1, ceil(rate_limit))``).
    batch_max:
        Maximum jobs coalesced into one engine dispatch.  Followers must
        have a spec identical to the leader's up to id/priority/tenant
        and no deadline.  The default ``1`` disables batching, which
        keeps single-job journal and metric behaviour exactly as before.
    shard_workers:
        When set, job execution fans each engine batch out across this
        many worker processes by atom-range
        (:class:`~repro.engine.backends.ShardedBackend`); results stay
        bit-identical to sequential.  ``None`` keeps in-process scoring.
    chaos:
        A :class:`~repro.service.chaos.ChaosConfig` (``serve --chaos``):
        seeded fault injection over the disk plane, the HTTP responses
        and the worker loop.  The disk plane installs *after* journal
        recovery (chaos targets steady state, not startup) and uninstalls
        when the drain begins.  ``None`` disables all injection.
    request_timeout:
        Total header+body read deadline per HTTP request (seconds); a
        slow-loris client gets 408 instead of pinning a connection slot.
        ``None`` disables (the pre-PR-10 behaviour).
    watchdog_seconds:
        A job RUNNING longer than this is presumed stalled: the watchdog
        re-queues it through the legal ``RUNNING → PENDING`` edge and the
        original worker's late result is discarded by the attempt-token
        check.  ``None`` disables the watchdog.
    probe_backoff_seconds / probe_backoff_max_seconds:
        Initial and capped delay between disk probes while READ_ONLY
        (exponential backoff).
    """

    def __init__(
        self,
        workdir: "str | Path",
        queue_limit: int = 8,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: "int | None" = 0,
        poll_seconds: float = 0.1,
        snapshot_dir: "str | Path | None" = "",
        snapshot_in: "str | Path | None" = None,
        journal_max_bytes: "int | None" = None,
        monitor_poll_seconds: float = 0.05,
        cache_max_bytes: "int | None" = 256 * 1024 * 1024,
        engine_kernel: "str | None" = None,
        tenant_weights: "dict[str, float] | None" = None,
        rate_limit: "float | None" = None,
        rate_limit_burst: "int | None" = None,
        batch_max: int = 1,
        shard_workers: "int | None" = None,
        chaos=None,
        request_timeout: "float | None" = 30.0,
        watchdog_seconds: "float | None" = None,
        probe_backoff_seconds: float = 0.05,
        probe_backoff_max_seconds: float = 2.0,
    ) -> None:
        if queue_limit < 1:
            raise ServiceError(f"queue_limit must be >= 1, got {queue_limit}")
        if workers < 1:
            raise ServiceError(f"workers must be >= 1, got {workers}")
        if journal_max_bytes is not None and journal_max_bytes < 1:
            raise ServiceError(
                f"journal_max_bytes must be >= 1, got {journal_max_bytes}"
            )
        self.workdir = Path(workdir)
        self.queue_limit = queue_limit
        self.workers = workers
        self.host = host
        self.port = port
        self.poll_seconds = poll_seconds
        # "" = default location; None = explicitly disabled.
        if snapshot_dir == "":
            self.snapshot_dir: "Path | None" = self.workdir / "snapshots"
        else:
            self.snapshot_dir = Path(snapshot_dir) if snapshot_dir else None
        self.snapshot_in = (
            Path(snapshot_in) if snapshot_in is not None else self.snapshot_dir
        )
        self.journal_max_bytes = journal_max_bytes
        self.monitor_poll_seconds = monitor_poll_seconds
        if cache_max_bytes is not None and cache_max_bytes < 0:
            raise ServiceError(
                f"cache_max_bytes must be >= 0, got {cache_max_bytes}"
            )
        self.cache_max_bytes = cache_max_bytes
        if engine_kernel is not None:
            from repro.engine.kernels import KERNEL_BACKENDS

            if engine_kernel not in KERNEL_BACKENDS:
                raise ServiceError(
                    f"unknown kernel backend {engine_kernel!r}; "
                    f"choose from {KERNEL_BACKENDS}"
                )
        self.engine_kernel = engine_kernel
        for tenant, weight in (tenant_weights or {}).items():
            if not float(weight) > 0:
                raise ServiceError(
                    f"tenant weight for {tenant!r} must be > 0, got {weight}"
                )
        self.tenant_weights = dict(tenant_weights) if tenant_weights else None
        if rate_limit is not None and not rate_limit > 0:
            raise ServiceError(f"rate_limit must be > 0 jobs/s, got {rate_limit}")
        self.rate_limit = rate_limit
        if rate_limit_burst is None and rate_limit is not None:
            rate_limit_burst = max(1, int(-(-rate_limit // 1)))
        if rate_limit_burst is not None and rate_limit_burst < 1:
            raise ServiceError(
                f"rate_limit_burst must be >= 1, got {rate_limit_burst}"
            )
        self.rate_limit_burst = rate_limit_burst
        if batch_max < 1:
            raise ServiceError(f"batch_max must be >= 1, got {batch_max}")
        self.batch_max = batch_max
        if shard_workers is not None and shard_workers < 1:
            raise ServiceError(f"shard_workers must be >= 1, got {shard_workers}")
        self.shard_workers = shard_workers
        self.chaos = chaos
        if request_timeout is not None and not request_timeout > 0:
            raise ServiceError(
                f"request_timeout must be > 0 seconds, got {request_timeout}"
            )
        self.request_timeout = request_timeout
        if watchdog_seconds is not None and not watchdog_seconds > 0:
            raise ServiceError(
                f"watchdog_seconds must be > 0, got {watchdog_seconds}"
            )
        self.watchdog_seconds = watchdog_seconds
        if not probe_backoff_seconds > 0:
            raise ServiceError(
                f"probe_backoff_seconds must be > 0, got {probe_backoff_seconds}"
            )
        self.probe_backoff_seconds = probe_backoff_seconds
        self.probe_backoff_max_seconds = max(
            probe_backoff_seconds, probe_backoff_max_seconds
        )


class AuditService:
    """Crash-safe, backpressured audit daemon (see the module docstring).

    Thread model: ``submit`` may be called from any thread (the HTTP
    handler threads call it); one lock guards the job table, the queue
    accounting and the journal writer.  Job execution itself runs outside
    the lock, so slow searches never block intake.
    """

    def __init__(
        self,
        config: ServiceConfig,
        metrics: "MetricsRegistry | None" = None,
        retry_policy=None,
        clock=time.time,
    ) -> None:
        self.config = config
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.retry_policy = retry_policy
        self._clock = clock
        self.journal = JobJournal(config.workdir / "journal.jsonl")
        self._records: "dict[str, JobRecord]" = {}
        self._scheduler = TenantScheduler(config.tenant_weights)
        self._buckets: "dict[str, TokenBucket]" = {}
        self._queued = 0
        self._running = 0
        self._lock = threading.RLock()
        self._shutdown = threading.Event()
        self._idle = threading.Condition(self._lock)
        self._threads: "list[threading.Thread]" = []
        self._http = None
        self._http_thread = None
        self.address: "tuple[str, int] | None" = None
        self._monitors: "dict[str, MonitoredPopulation]" = {}
        self._monitor_thread: "threading.Thread | None" = None
        # Degradation state machine (HEALTH_STATES).  Guarded by its own
        # condition so health reads and probe wake-ups never contend with
        # the job-table lock; lock order is always _lock → _health_cond.
        self._health_cond = threading.Condition()
        self._state = "HEALTHY"
        self._state_since = self._clock()
        self._degraded_reasons: "list[str]" = []
        self._probe_thread: "threading.Thread | None" = None
        self._watchdog_thread: "threading.Thread | None" = None
        # Terminal edges that could not be appended while the disk was
        # refusing writes; re-journaled by the probe after recovery.
        self._unjournaled: "set[str]" = set()
        self._fault_plane: "faultfs.FaultPlane | None" = None
        from repro.service.cache import CrossJobCache

        #: Content-addressed cross-job cache (in-memory only, so a crash
        #: plus journal replay always restarts cache-cold and consistent).
        self.cache = CrossJobCache(config.cache_max_bytes, metrics=self.metrics)

    # -------------------------------------------------------------- lifecycle

    def start(self) -> "AuditService":
        """Open (or recover) the journal, re-queue unfinished jobs, start
        the worker threads and the HTTP listener."""
        self.journal.open()
        self._recover()
        chaos = self.config.chaos
        if chaos is not None and chaos.disk.enabled:
            # Installed only after journal open/recovery: chaos drills the
            # steady state; a daemon that cannot even start its journal is
            # a provisioning failure, not a fault-tolerance scenario.
            self._fault_plane = faultfs.FaultPlane(chaos.disk, metrics=self.metrics)
            faultfs.install(self._fault_plane)
        self._probe_thread = threading.Thread(
            target=self._probe_loop, name="audit-disk-probe", daemon=True
        )
        self._probe_thread.start()
        if self.config.watchdog_seconds is not None:
            self._watchdog_thread = threading.Thread(
                target=self._watchdog_loop, name="audit-watchdog", daemon=True
            )
            self._watchdog_thread.start()
        for i in range(self.config.workers):
            thread = threading.Thread(
                target=self._worker_loop, name=f"audit-worker-{i}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        self._monitor_thread = threading.Thread(
            target=self._monitor_loop, name="audit-monitor", daemon=True
        )
        self._monitor_thread.start()
        if self.config.port is not None:
            self._http = _build_http_server(self, self.config.host, self.config.port)
            self.address = self._http.server_address[:2]
            self._http_thread = threading.Thread(
                target=self._http.serve_forever, name="audit-http", daemon=True
            )
            self._http_thread.start()
        return self

    def _recover(self) -> None:
        """Replay the journal, re-queue unfinished jobs, restore monitors."""
        state = self.journal.replay_state()
        self._records = state.jobs
        self._recover_monitors(state.monitors)
        if self.journal.recovered_tail_bytes:
            self.metrics.inc("service.journal_tail_truncated")
        recovered = 0
        for record in self._records.values():
            if record.state is JobState.RUNNING:
                # The previous process died mid-job; the journaled edge makes
                # the re-queue durable before any worker can pick it up.
                record.transition(
                    JobState.PENDING, reason="recovered", timestamp=self._clock()
                )
                self.journal.append_state(
                    record.job.id,
                    JobState.PENDING,
                    record.updated_at,
                    reason="recovered",
                )
                self.metrics.inc("service.recovered")
            if record.state in (JobState.PENDING, JobState.FAILED):
                if record.state is JobState.FAILED:
                    record.transition(
                        JobState.PENDING, reason="recovered", timestamp=self._clock()
                    )
                    self.journal.append_state(
                        record.job.id,
                        JobState.PENDING,
                        record.updated_at,
                        reason="recovered",
                    )
                self._enqueue(record.job)
                recovered += 1
        if recovered:
            self.metrics.inc("service.requeued", recovered)

    def request_shutdown(self) -> None:
        """Begin a graceful drain: stop intake, let in-flight jobs finish.

        Closing the scheduler releases every worker blocked on ``get``
        with the ``None`` sentinel; jobs still queued stay PENDING in the
        journal for the next daemon instance (drain semantics)."""
        self._shutdown.set()
        with self._health_cond:
            self._health_cond.notify_all()
        self._scheduler.close()

    @property
    def shutting_down(self) -> bool:
        return self._shutdown.is_set()

    def wait_for_shutdown(self, timeout: "float | None" = None) -> bool:
        """Block until shutdown is requested (or ``timeout`` passes)."""
        return self._shutdown.wait(timeout)

    def stop(self) -> None:
        """Drain and stop: joins workers (in-flight jobs complete), shuts
        the HTTP listener down, snapshots monitors, closes the journal."""
        self.request_shutdown()
        if self._fault_plane is not None:
            # Chaos ends where the drain begins: shutdown must always be
            # able to flush in-flight work and close the journal cleanly.
            if faultfs.active() is self._fault_plane:
                faultfs.uninstall()
            self._fault_plane = None
        for thread in self._threads:
            thread.join()
        self._threads = []
        if self._probe_thread is not None:
            self._probe_thread.join()
            self._probe_thread = None
        if self._watchdog_thread is not None:
            self._watchdog_thread.join()
            self._watchdog_thread = None
        if self._monitor_thread is not None:
            self._monitor_thread.join()
            self._monitor_thread = None
        if self._http is not None:
            self._http.shutdown()
            self._http_thread.join()
            self._http.server_close()
            self._http = None
            self._http_thread = None
        for monitor in list(self._monitors.values()):
            with monitor.lock:
                self._write_snapshot(monitor)
                monitor.close()
        self.journal.close()

    def serve_forever(self, install_signals: bool = True) -> int:
        """Run until SIGTERM/SIGINT (or :meth:`request_shutdown`); returns 0.

        The signal handler only sets an event — the drain itself happens on
        this thread, so in-flight jobs always finish before exit.
        """
        if install_signals:
            signal.signal(signal.SIGTERM, lambda *_: self.request_shutdown())
            signal.signal(signal.SIGINT, lambda *_: self.request_shutdown())
        self.start()
        while not self.wait_for_shutdown(timeout=0.2):
            pass
        self.stop()
        return 0

    def __enter__(self) -> "AuditService":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ---------------------------------------------------------- degradation

    @property
    def state(self) -> str:
        """Current health state (one of :data:`HEALTH_STATES`)."""
        if self._shutdown.is_set():
            return "DRAINING"
        with self._health_cond:
            return self._state

    def enter_degraded(self, reason: str) -> None:
        """Flip the service READ_ONLY: submits are rejected (typed
        ``degraded``), reads and metrics keep working, and the background
        probe starts trying to win the disk back."""
        with self._health_cond:
            if self._state != "READ_ONLY":
                self._state = "READ_ONLY"
                self._state_since = self._clock()
                self.metrics.set_gauge("service.degraded", 1)
                self.metrics.inc("service.degraded_entered")
            if reason not in self._degraded_reasons:
                self._degraded_reasons.append(reason)
            self._health_cond.notify_all()

    def _restore_healthy(self) -> None:
        """Probe succeeded: leave READ_ONLY and account the outage."""
        with self._health_cond:
            if self._state != "READ_ONLY":
                return
            duration = max(0.0, self._clock() - self._state_since)
            self._state = "HEALTHY"
            self._state_since = self._clock()
            self._degraded_reasons = []
            self.metrics.set_gauge("service.degraded", 0)
            self._health_cond.notify_all()
        self.metrics.inc("service.degraded_seconds", duration)
        self.metrics.observe("service.degraded_recovery_seconds", duration)
        self.metrics.inc("service.degraded_recoveries")
        self._flush_unjournaled()

    def _journal_failure(self, context: str, exc: BaseException) -> None:
        """Book-keeping shared by every journal-write failure site."""
        self.metrics.inc("service.journal_write_failures")
        self.enter_degraded(f"{context}: {exc}")

    def _await_healthy(self) -> bool:
        """Block until HEALTHY (True) or shutdown begins (False)."""
        with self._health_cond:
            while self._state != "HEALTHY" and not self._shutdown.is_set():
                self._health_cond.wait(0.5)
            return self._state == "HEALTHY" and not self._shutdown.is_set()

    def _probe_loop(self) -> None:
        """Background disk prober: exponential backoff while READ_ONLY.

        Every probe exercises the exact failure surface — a journal fsync
        plus an atomic write into the workdir — through the same fault
        plane the failure came from, so recovery means the disk genuinely
        accepts durable writes again, not merely that time passed.
        """
        backoff = self.config.probe_backoff_seconds
        while not self._shutdown.is_set():
            with self._health_cond:
                while self._state == "HEALTHY" and not self._shutdown.is_set():
                    self._health_cond.wait()
            if self._shutdown.is_set():
                return
            if self._shutdown.wait(backoff):
                return
            try:
                self._probe_disk()
            except (JournalWriteError, OSError):
                self.metrics.inc("service.disk_probe_failures")
                backoff = min(backoff * 2, self.config.probe_backoff_max_seconds)
                continue
            self._restore_healthy()
            backoff = self.config.probe_backoff_seconds

    def _probe_disk(self) -> None:
        from repro.io.atomic import atomic_write_bytes

        self.journal.sync()
        atomic_write_bytes(self.config.workdir / ".disk-probe", b"ok\n")
        self.metrics.inc("service.disk_probes")

    def _flush_unjournaled(self) -> None:
        """Re-append terminal edges the broken disk refused (post-recovery).

        Only edges whose append *never reached the file* are parked here
        (``JournalWriteError.written is False``); sync-level failures are
        already in the file and become durable with the next successful
        group commit, so re-appending those would corrupt the history
        with duplicate edges.
        """
        with self._lock:
            pending, self._unjournaled = self._unjournaled, set()
            for job_id in sorted(pending):
                record = self._records.get(job_id)
                if record is None or record.state not in TERMINAL_STATES:
                    continue
                try:
                    self.journal.append_state(
                        record.job.id,
                        record.state,
                        record.updated_at,
                        attempt=record.attempt,
                        reason=record.reason,
                        result=record.result,
                    )
                except JournalWriteError as exc:
                    self._unjournaled.add(job_id)
                    self._unjournaled |= pending - {job_id}
                    self._journal_failure("journal_write_failure", exc)
                    return
                self.metrics.inc("service.journal_backfilled_edges")

    # ------------------------------------------------------------- watchdog

    def _watchdog_loop(self) -> None:
        interval = max(0.01, min(1.0, self.config.watchdog_seconds / 4))
        while not self._shutdown.wait(interval):
            self._watchdog_sweep()

    def _watchdog_sweep(self) -> int:
        """Re-queue jobs RUNNING past the stall limit; returns the count.

        The re-queue rides the existing crash-recovery ``RUNNING →
        PENDING`` edge, and the bumped ``attempt`` counter doubles as a
        lease token: when the stalled worker finally produces a result,
        :meth:`_finish_if_current` sees the stale token and discards it
        instead of double-completing the job.
        """
        limit = self.config.watchdog_seconds
        requeued = 0
        with self._lock:
            now = self._clock()
            for record in self._records.values():
                if record.state is not JobState.RUNNING:
                    continue
                if now - record.updated_at <= limit:
                    continue
                failed = None
                try:
                    self._transition(record, JobState.PENDING, reason="watchdog")
                except JournalWriteError as exc:
                    # The in-memory edge already applied (transition runs
                    # before the append), so the job must still be
                    # re-dispatched; the journal's stale RUNNING replays
                    # as a re-queue anyway.  Degrade and stop sweeping.
                    failed = exc
                self._dispatch(record.job)
                self._queued += 1
                self.metrics.set_gauge("service.queue_depth", self._queued)
                self.metrics.inc("service.watchdog_requeues")
                requeued += 1
                if failed is not None:
                    self._journal_failure("journal_write_failure", failed)
                    break
        return requeued

    # -------------------------------------------------------------- intake

    def submit(self, job: "AuditJob | dict") -> JobRecord:
        """Accept one job, durably journal it and queue it for execution.

        Raises :class:`~repro.exceptions.JobRejectedError` with a typed
        ``reason`` (one of :data:`REJECTION_REASONS`).  Acceptance is
        all-or-nothing: by the time this returns, the submit record is
        fsync'd — a crash immediately after cannot lose the job.  The
        fsync itself happens *outside* the service lock, so concurrent
        submitters share one group-committed flush instead of queueing
        their own.
        """
        record, seq = self._accept(job)
        self._commit([record], seq)
        return record

    def submit_many(self, jobs) -> "list[JobRecord | JobRejectedError]":
        """Accept a batch of job specs with one group-committed fsync.

        Returns one entry per input, in order: the accepted
        :class:`JobRecord`, or the :class:`JobRejectedError` that submit
        would have raised.  Admission (duplicate ids, rate limits, queue
        capacity) is checked per job, so a batch can be partially
        accepted; every accepted record is durable before this returns,
        and none is dispatched to a worker until the whole batch is.
        """
        results: "list[JobRecord | JobRejectedError]" = []
        accepted: "list[JobRecord]" = []
        seq = 0
        for payload in jobs:
            try:
                record, seq = self._accept(payload)
            except JobRejectedError as exc:
                results.append(exc)
            else:
                accepted.append(record)
                results.append(record)
        if accepted:
            try:
                self._commit(accepted, seq)
            except JobRejectedError as exc:
                # The group commit failed after acceptance: every accepted
                # entry flips to the typed rejection — callers must never
                # see a success for a job whose durability was refused.
                rolled_back = {record.job.id for record in accepted}
                results = [
                    exc
                    if isinstance(entry, JobRecord) and entry.job.id in rolled_back
                    else entry
                    for entry in results
                ]
        return results

    def _accept(self, job: "AuditJob | dict") -> "tuple[JobRecord, int]":
        """Validate, journal (unsynced) and reserve a queue slot for one job.

        The slot is reserved (``_queued`` bumped) while the lock is held,
        so capacity checks stay exact even though the fsync and scheduler
        dispatch happen after the lock drops (see :meth:`_commit`).
        """
        if self._shutdown.is_set():
            self._reject("shutting_down", "the daemon is draining for shutdown")
        self._reject_if_degraded()
        if isinstance(job, dict):
            try:
                job = AuditJob.from_dict(job)
            except ServiceError as exc:
                self._reject("invalid_spec", str(exc))
        try:
            from repro.core.algorithms import get_algorithm

            get_algorithm(job.algorithm)
        except Exception as exc:
            self._reject("invalid_spec", f"unknown algorithm {job.algorithm!r}: {exc}")
        with self._lock:
            if job.id in self._records:
                self._reject("duplicate_id", f"job id {job.id!r} already journaled")
            if not self._admit(job.tenant):
                self._reject(
                    "rate_limited",
                    f"tenant {job.tenant!r} exceeded "
                    f"{self.config.rate_limit} jobs/s",
                )
            if self._queued >= self.config.queue_limit:
                self._reject(
                    "queue_full",
                    f"queue holds {self._queued}/{self.config.queue_limit} jobs",
                )
            now = self._clock()
            record = JobRecord(job=job, submitted_at=now, updated_at=now)
            try:
                seq = self.journal.append_submit(job, now, sync=False)
            except JournalWriteError as exc:
                self._journal_failure("journal_write_failure", exc)
                self._reject("degraded", f"journal refused the submit: {exc}")
            self._records[job.id] = record
            self._queued += 1
            self.metrics.set_gauge("service.queue_depth", self._queued)
            self.metrics.inc("service.submitted")
        return record, seq

    def _commit(self, records: "list[JobRecord]", seq: int) -> None:
        """Fsync accepted submits (group commit) and hand them to workers.

        A failed flush unwinds the reservations so nothing unacknowledged
        ever runs, flips the service READ_ONLY and surfaces the typed
        ``degraded`` rejection (the group-commit acknowledgement hole: a
        caller must never get a success for a job whose fsync was
        refused).  A crash in the same window loses at most jobs whose
        submitters never got a response.  The reverse ghost is possible
        and documented: a rejected submit's bytes may still land, so
        after a crash the job can replay as PENDING — the client's retry
        then collapses into ``duplicate_id`` (at-least-once semantics).
        """
        try:
            self.journal.sync(seq)
        except BaseException as exc:
            with self._lock:
                for record in records:
                    self._records.pop(record.job.id, None)
                    self._queued -= 1
                self.metrics.set_gauge("service.queue_depth", self._queued)
            if isinstance(exc, (JournalWriteError, OSError)):
                self._journal_failure("journal_write_failure", exc)
                self._reject(
                    "degraded",
                    f"group commit failed; {len(records)} accepted submit(s) "
                    f"rolled back: {exc}",
                )
            raise
        with self._lock:
            for record in records:
                self._dispatch(record.job)

    def _dispatch(self, job: AuditJob) -> None:
        """Hand one job to the scheduler, tagged with its coalescing key
        (batchable specs only) so ``get_batch`` can pull followers in
        O(batch) regardless of backlog depth."""
        key = None
        if self.config.batch_max > 1 and self._batchable(job):
            key = self._batch_key(job)
        self._scheduler.put(job.tenant, job.priority, job.id, key=key)

    def _reject(self, reason: str, detail: str) -> None:
        self.metrics.inc("service.rejected")
        self.metrics.inc(f"service.rejected.{reason}")
        raise JobRejectedError(reason, f"job rejected ({reason}): {detail}")

    def _reject_if_degraded(self) -> None:
        with self._health_cond:
            if self._state != "READ_ONLY":
                return
            reasons = "; ".join(self._degraded_reasons) or "degraded"
            self._reject(
                "degraded", f"service is READ_ONLY ({reasons}); retry after recovery"
            )

    def _admit(self, tenant: str) -> bool:
        """Charge one token to the tenant's bucket (caller holds the lock)."""
        if self.config.rate_limit is None:
            return True
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                self.config.rate_limit, self.config.rate_limit_burst
            )
        return bucket.try_acquire()

    def _enqueue(self, job: AuditJob) -> None:
        with self._lock:
            self._dispatch(job)
            self._queued += 1
            self.metrics.set_gauge("service.queue_depth", self._queued)

    # ---------------------------------------------------- monitored populations

    def create_monitor(self, spec: "MonitorSpec | dict") -> dict:
        """Register a new monitored population, journal-ahead, and return
        its summary.  Rejections reuse the job taxonomy
        (:data:`REJECTION_REASONS`)."""
        if self._shutdown.is_set():
            self._reject("shutting_down", "the daemon is draining for shutdown")
        self._reject_if_degraded()
        if isinstance(spec, dict):
            try:
                spec = MonitorSpec.from_dict(spec)
            except (ServiceError, TypeError) as exc:
                self._reject("invalid_spec", str(exc))
        with self._lock:
            if spec.id in self._monitors:
                self._reject(
                    "duplicate_id", f"monitor id {spec.id!r} already exists"
                )
            now = self._clock()
            try:
                store = spec.build_store()
            except ServiceError as exc:
                self._reject("invalid_spec", str(exc))
            monitor = MonitoredPopulation(spec=spec, store=store, created_at=now)
            try:
                self.journal.append(
                    {"type": "mpop_create", "ts": now, "spec": spec.to_dict()}
                )
            except JournalWriteError as exc:
                self._journal_failure("journal_write_failure", exc)
                self._reject("degraded", f"journal refused the monitor: {exc}")
            self._monitors[spec.id] = monitor
            self.metrics.inc("service.monitors_created")
            self.metrics.set_gauge("service.monitors", len(self._monitors))
        return monitor.as_dict()

    def monitor(self, monitor_id: str) -> MonitoredPopulation:
        with self._lock:
            if monitor_id not in self._monitors:
                raise ServiceError(f"unknown monitor id {monitor_id!r}")
            return self._monitors[monitor_id]

    def apply_mutations(self, monitor_id: str, mutations: "list[dict]") -> dict:
        """Stream one mutation batch into a monitor (journal-ahead).

        The batch is applied mutation-by-mutation; on a mid-batch
        validation failure the applied prefix is journaled (the journal
        must describe the daemon's actual state) and the request is
        rejected with ``invalid_spec`` naming the failing position.
        """
        if self._shutdown.is_set():
            self._reject("shutting_down", "the daemon is draining for shutdown")
        self._reject_if_degraded()
        if not isinstance(mutations, list):
            self._reject("invalid_spec", "mutations payload must be a list")
        monitor = self.monitor(monitor_id)
        with monitor.lock:
            if monitor.unaudited + len(mutations) > monitor.spec.buffer_limit:
                self._reject(
                    "queue_full",
                    f"monitor {monitor_id!r} holds {monitor.unaudited} unaudited "
                    f"mutations (limit {monitor.spec.buffer_limit})",
                )
            now = self._clock()
            info = monitor.apply_batch(mutations, now)
            # The population changed: drop exactly this monitor's cached
            # artifacts (still under its lock) so the next O(Δ) re-audit
            # can never be seeded from the pre-mutation state.
            if info["applied"]:
                self.cache.invalidate_owner(f"monitor:{monitor_id}")
            record = monitor.batch_record(info, now)
            if record is not None:
                with self._lock:
                    try:
                        self.journal.append(record)
                    except JournalWriteError as exc:
                        # The batch is applied in memory but not journaled;
                        # the typed rejection tells the client durability
                        # failed, and a crash before recovery replays
                        # without it — the documented at-least-once window.
                        self._journal_failure("journal_write_failure", exc)
                        self._reject(
                            "degraded", f"journal refused the mutation batch: {exc}"
                        )
            self.metrics.inc("service.mutations_applied", info["applied"])
            if "error" in info:
                self._reject(
                    "invalid_spec",
                    f"mutation {info['position']} invalid after applying "
                    f"{info['applied']}: {info['error']}",
                )
            if monitor.spec.delta_series and monitor.audits:
                try:
                    point = monitor.run_delta(now)
                except Exception:  # noqa: BLE001 - delta is best-effort
                    point = None
                    self.metrics.inc("service.monitor_delta_errors")
                if point is not None:
                    self._append_series_point(monitor, point)
        return info

    def monitors_snapshot(self) -> "list[dict]":
        with self._lock:
            monitors = list(self._monitors.values())
        return [monitor.as_dict() for monitor in monitors]

    def monitor_series(self, monitor_id: str) -> "list[dict]":
        monitor = self.monitor(monitor_id)
        with monitor.lock:
            return list(monitor.series)

    def _append_series_point(self, monitor: MonitoredPopulation, point: dict) -> None:
        """Journal one unfairness-over-time point and append it in memory."""
        with self._lock:
            self.journal.append(point)
        monitor.series.append(MonitoredPopulation.series_point(point))
        self.metrics.inc(f"service.monitor_points.{point['kind']}")

    def _monitor_loop(self) -> None:
        """Debounced re-audit scheduler for all monitored populations."""
        while not self._shutdown.is_set():
            self._shutdown.wait(self.config.monitor_poll_seconds)
            with self._lock:
                monitors = list(self._monitors.values())
            now = self._clock()
            for monitor in monitors:
                if self._shutdown.is_set():
                    break
                if not monitor.should_audit(now):
                    continue
                try:
                    self._audit_monitor(monitor)
                except (JournalWriteError, OSError) as exc:
                    # Persistence (journal point, snapshot, compaction)
                    # failed mid-audit: degrade instead of killing the
                    # scheduler thread; the probe restores service.
                    self._journal_failure("monitor_persistence_failure", exc)

    def _audit_monitor(self, monitor: MonitoredPopulation) -> None:
        with monitor.lock:
            if monitor.unaudited <= 0:
                return
            self._seed_monitor(monitor)
            try:
                with self.metrics.time("service.monitor_audit_seconds"):
                    point = monitor.run_audit(
                        self._clock(),
                        metrics=self.metrics,
                        retry_policy=self.retry_policy,
                    )
            except Exception:  # noqa: BLE001 - keep the scheduler alive
                self.metrics.inc("service.monitor_audit_errors")
                monitor.unaudited = 0
                monitor.first_pending_at = None
                return
            self._harvest_monitor(monitor)
            self._append_series_point(monitor, point)
            self._write_snapshot(monitor)
        self._maybe_compact_journal()

    def _monitor_cache_material(self, monitor: MonitoredPopulation) -> tuple:
        # Keyed by the spec fingerprint (which pins scenario, function,
        # metric, weighting and binning) — the value-cache entries inside
        # the payload are themselves content-addressed pmf multisets, so
        # they stay exact across population states; invalidation on
        # mutation (see apply_mutations) keeps the entry's lifetime tied
        # to the state it was harvested from anyway.
        return ("monitor-values", monitor.spec.fingerprint())

    def _seed_monitor(self, monitor: MonitoredPopulation) -> None:
        """Transplant cached pair scores into a freshly built auditor
        (caller holds the monitor's lock)."""
        if not self.cache.enabled or monitor.auditor is not None:
            return
        hit = self.cache.get(self._monitor_cache_material(monitor))
        if hit is not None:
            auditor = monitor.ensure_auditor(
                metrics=self.metrics, retry_policy=self.retry_policy
            )
            auditor.seed_value_cache = hit["value_cache"]

    def _harvest_monitor(self, monitor: MonitoredPopulation) -> None:
        """Donate the monitor engine's value cache after a successful audit
        (caller holds the monitor's lock)."""
        if not self.cache.enabled or monitor.auditor is None:
            return
        from repro.service.cache import value_cache_nbytes

        values = monitor.auditor.engine_value_cache()
        if values:
            self.cache.put(
                self._monitor_cache_material(monitor),
                {"value_cache": values},
                value_cache_nbytes(values),
                owner=f"monitor:{monitor.spec.id}",
            )

    def _write_snapshot(self, monitor: MonitoredPopulation) -> None:
        """Snapshot one monitor's state + series (caller holds its lock)."""
        if self.config.snapshot_dir is None or not monitor.audits:
            return
        from repro.service.snapshot import write_snapshot

        path = self.config.snapshot_dir / f"{monitor.spec.id}.json"
        write_snapshot(path, monitor.spec.to_dict(), monitor.store, monitor.series)
        monitor.snapshot_version = monitor.store.version
        self.metrics.inc("service.snapshots_written")

    def _maybe_compact_journal(self) -> None:
        """Compact the journal in place once it outgrows the threshold."""
        if self.config.journal_max_bytes is None:
            return
        with self._lock:
            if self.journal.size_bytes() <= self.config.journal_max_bytes:
                return
            versions = {
                monitor_id: monitor.snapshot_version
                for monitor_id, monitor in self._monitors.items()
                if monitor.snapshot_version is not None
            }
            reclaimed = self.journal.compact_to(versions)
            self.metrics.inc("service.journal_compactions")
            self.metrics.inc("service.journal_bytes_reclaimed", reclaimed)

    def _recover_monitors(self, histories) -> None:
        """Restore monitors: snapshot (if valid) + journaled batches past it."""
        for monitor_id, events in histories.items():
            spec = MonitorSpec.from_dict(events.spec)
            store = None
            series: "list[dict]" = []
            snapshot_version: "int | None" = None
            if self.config.snapshot_in is not None:
                path = self.config.snapshot_in / f"{spec.id}.json"
                if path.exists():
                    from repro.exceptions import SnapshotError
                    from repro.service.snapshot import load_snapshot

                    try:
                        store, series, _ = load_snapshot(
                            path,
                            spec.worker_schema(),
                            spec.hist_spec(),
                            expected_fingerprint=spec.fingerprint(),
                        )
                        snapshot_version = store.version
                    except SnapshotError:
                        # A stale or corrupt snapshot is never trusted; the
                        # journal alone can rebuild the full state.
                        store = None
                        series = []
                        self.metrics.inc("service.snapshot_restore_rejected")
            if store is None:
                store = spec.build_store()
            from repro.marketplace.streaming import Mutation

            for batch in events.mutation_batches:
                if int(batch.get("version", 0)) <= store.version:
                    continue
                for payload in batch.get("mutations", ()):
                    store.apply(Mutation.from_dict(payload))
            floor = -1 if snapshot_version is None else snapshot_version
            for audit in events.audits:
                if int(audit.get("version", 0)) > floor:
                    series.append(MonitoredPopulation.series_point(audit))
            monitor = MonitoredPopulation(
                spec=spec,
                store=store,
                created_at=events.created_at,
                series=series,
            )
            monitor.snapshot_version = snapshot_version
            monitor.audits = sum(
                1 for point in series if point.get("kind") == "audit"
            )
            self._monitors[monitor_id] = monitor
            self.metrics.inc("service.monitors_recovered")
        if self._monitors:
            self.metrics.set_gauge("service.monitors", len(self._monitors))

    # -------------------------------------------------------------- querying

    def record(self, job_id: str) -> JobRecord:
        with self._lock:
            if job_id not in self._records:
                raise ServiceError(f"unknown job id {job_id!r}")
            return self._records[job_id]

    def jobs_snapshot(
        self,
        state: "str | None" = None,
        kind: "str | None" = None,
        tenant: "str | None" = None,
        limit: "int | None" = None,
    ) -> "list[dict]":
        """JSON-safe job summaries in submission order, optionally filtered.

        ``state`` / ``kind`` / ``tenant`` narrow by exact match; ``limit``
        keeps only the **most recently submitted** matches, so listing
        stays cheap on daemons with thousands of journaled jobs.  Unknown
        filter values raise :class:`ServiceError` (HTTP 400).
        """
        if state is not None and state not in JobState.__members__:
            raise ServiceError(
                f"unknown state {state!r}; choose from "
                f"{sorted(JobState.__members__)}"
            )
        if kind is not None:
            from repro.service.jobs import JOB_KINDS

            if kind not in JOB_KINDS:
                raise ServiceError(
                    f"unknown kind {kind!r}; choose from {JOB_KINDS}"
                )
        if limit is not None and limit < 1:
            raise ServiceError(f"limit must be >= 1, got {limit}")
        with self._lock:
            records = list(self._records.values())
        out = [
            record.as_dict()
            for record in records
            if (state is None or record.state.value == state)
            and (kind is None or record.job.kind == kind)
            and (tenant is None or record.job.tenant == tenant)
        ]
        if limit is not None and len(out) > limit:
            out = out[-limit:]
        return out

    def health(self) -> dict:
        with self._health_cond:
            state = "DRAINING" if self._shutdown.is_set() else self._state
            degraded_reasons = list(self._degraded_reasons)
            since = self._state_since
        status = {
            "HEALTHY": "ok",
            "READ_ONLY": "degraded",
            "DRAINING": "draining",
        }[state]
        with self._lock:
            payload = {
                "status": status,
                "state": state,
                "degraded_reasons": degraded_reasons,
                "since": since,
                "queued": self._queued,
                "running": self._running,
                "jobs": len(self._records),
                "monitors": len(self._monitors),
                "queue_limit": self.config.queue_limit,
                "workers": self.config.workers,
                "cache": self.cache.stats(),
            }
        if self.config.chaos is not None and self.config.chaos.enabled:
            payload["chaos"] = self.config.chaos.describe()
        return payload

    def drain(self, timeout: "float | None" = None) -> bool:
        """Block until no job is PENDING or RUNNING (or ``timeout`` passes)."""

        def idle() -> bool:
            return self._queued == 0 and self._running == 0

        with self._idle:
            return self._idle.wait_for(idle, timeout=timeout)

    # -------------------------------------------------------------- execution

    def _worker_loop(self) -> None:
        # Event-driven: get() blocks on the scheduler's condition variable
        # (zero idle latency) and returns the None sentinel once shutdown
        # closes the scheduler.  A job popped after the sentinel race is
        # simply abandoned here — its journal state is still PENDING, so
        # the next daemon instance re-queues it (drain semantics).
        while True:
            batch = self._scheduler.get_batch(self.config.batch_max)
            if batch is None or self._shutdown.is_set():
                break
            # READ_ONLY gate: starting a job means journaling its RUNNING
            # edge, which the broken disk would refuse — park here (the
            # popped jobs stay PENDING) until the probe wins the disk back.
            if not self._await_healthy():
                break
            if len(batch) == 1:
                self._run_job(batch[0])
            else:
                self._run_batch(batch)

    def _transition(
        self, record: JobRecord, state: JobState, sync: bool = True, **details
    ) -> None:
        """Apply one edge to the table and the journal atomically.

        ``sync=False`` buffers the journal write (ordered, not yet
        durable) so batch paths can group-commit many edges under one
        fsync; the caller must invoke ``journal.sync()`` before treating
        the edge as acknowledged.
        """
        with self._lock:
            now = self._clock()
            record.transition(state, timestamp=now, **details)
            self.journal.append_state(record.job.id, state, now, sync=sync, **details)

    def _start_running(self, record: JobRecord, *, sync: bool = True) -> None:
        """Queue-exit bookkeeping + the RUNNING edge for one job."""
        wait = self._clock() - record.updated_at
        if wait >= 0:
            self.metrics.observe("service.wait_seconds", wait)
        self._transition(
            record, JobState.RUNNING, attempt=record.attempt + 1, sync=sync
        )

    def _finish(self, record: JobRecord, result: dict, *, sync: bool = True) -> None:
        """Apply the job's terminal edge for a successful execution."""
        if result["deadline_hit"]:
            self._transition(
                record, JobState.CANCELLED, reason="deadline", result=result,
                sync=sync,
            )
            self.metrics.inc("service.cancelled")
        else:
            self._transition(record, JobState.DONE, result=result, sync=sync)
            self.metrics.inc("service.completed")

    def _maybe_worker_chaos(self, key: str) -> None:
        """Injected worker faults: stall (watchdog bait) or poison batch."""
        chaos = self.config.chaos
        if chaos is None or not chaos.worker.enabled:
            return
        if chaos.worker.roll("stall", key):
            self.metrics.inc("chaos.faults_injected")
            self.metrics.inc("chaos.worker_stall")
            time.sleep(chaos.worker.stall_seconds)
        if chaos.worker.roll("poison", key):
            self.metrics.inc("chaos.faults_injected")
            self.metrics.inc("chaos.worker_poison")
            raise WorkerCrashError(f"injected poison batch at {key!r}")

    def _lease_current(self, record: JobRecord, lease: int) -> bool:
        """True while this worker still owns the job (lock held).

        The attempt counter bumps on every RUNNING edge, so a watchdog
        re-queue (and any subsequent re-run) invalidates the lease the
        stalled worker captured; its late result must be discarded, not
        double-applied."""
        return record.state is JobState.RUNNING and record.attempt == lease

    def _run_job(self, job_id: str) -> None:
        with self._lock:
            record = self._records[job_id]
            self._queued -= 1
            self._running += 1
            self.metrics.set_gauge("service.queue_depth", self._queued)
            self.metrics.set_gauge("service.running", self._running)
            if record.state is not JobState.PENDING:
                # A stale scheduler entry (the job advanced through another
                # path while queued); nothing to run.
                with self._idle:
                    self._running -= 1
                    self.metrics.set_gauge("service.running", self._running)
                    self._idle.notify_all()
                return
        try:
            try:
                self._start_running(record)
            except JournalWriteError as exc:
                # The RUNNING edge could not be journaled: put the job
                # back, degrade, and let the gated worker loop retry
                # after recovery.
                self._requeue_degraded([record], exc)
                return
            lease = record.attempt
            try:
                with self.metrics.time("service.job_seconds"):
                    self._maybe_worker_chaos(f"{record.job.id}:{lease}")
                    result = self._execute(record.job)
            except Exception as exc:  # noqa: BLE001 - poison jobs raise anything
                self._handle_failure(record, exc, lease=lease)
            else:
                self._finish_if_current(record, result, lease)
        finally:
            with self._idle:
                self._running -= 1
                self.metrics.set_gauge("service.running", self._running)
                self._idle.notify_all()

    def _requeue_degraded(
        self, records: "list[JobRecord]", exc: JournalWriteError
    ) -> None:
        """Jobs whose RUNNING edges the disk refused go back to PENDING."""
        self._journal_failure("journal_write_failure", exc)
        with self._lock:
            now = self._clock()
            for record in records:
                if record.state is JobState.RUNNING:
                    # The in-memory edge applied before the append failed;
                    # ride the legal crash-recovery edge back.
                    record.transition(JobState.PENDING, reason="degraded", timestamp=now)
                self._dispatch(record.job)
                self._queued += 1
            self.metrics.set_gauge("service.queue_depth", self._queued)

    def _finish_if_current(
        self, record: JobRecord, result: dict, lease: int
    ) -> None:
        """Terminal edge for a successful run — unless the lease is stale."""
        with self._lock:
            if not self._lease_current(record, lease):
                self.metrics.inc("service.stale_results_discarded")
                return
            try:
                self._finish(record, result)
            except JournalWriteError as exc:
                if not exc.written:
                    self._unjournaled.add(record.job.id)
                self._journal_failure("journal_write_failure", exc)

    # ------------------------------------------------------------- batching

    def _batch_key(self, job: AuditJob) -> str:
        """Spec identity up to id/priority/tenant: batchable jobs sharing a
        key produce (and may therefore share) the identical result payload."""
        payload = job.to_dict()
        for field in ("id", "priority", "tenant"):
            payload.pop(field, None)
        return json.dumps(payload, sort_keys=True)

    @staticmethod
    def _batchable(job: AuditJob) -> bool:
        # Deadline-carrying jobs are excluded: their budget starts at
        # execution and a shared dispatch would start several clocks at
        # once; mitigate jobs stay solo for the same per-job checkpoint
        # reason.
        return job.deadline_seconds is None and job.kind == "audit"

    def _run_batch(self, job_ids: "list[str]") -> None:
        """One engine dispatch for N identical specs; every lifecycle edge
        is journaled (ordered) with one group-commit fsync per phase."""
        with self._lock:
            records = [self._records[job_id] for job_id in job_ids]
            self._queued -= len(records)
            self._running += 1
            self.metrics.set_gauge("service.queue_depth", self._queued)
            self.metrics.set_gauge("service.running", self._running)
            records = [r for r in records if r.state is JobState.PENDING]
        try:
            if not records:
                return
            try:
                for record in records:
                    self._start_running(record, sync=False)
                self.journal.sync()
            except JournalWriteError as exc:
                # Some RUNNING edges may be in memory/buffer, none are
                # durable: park the whole batch back in the queue and
                # degrade — the gated worker loop re-runs it post-recovery.
                self._requeue_degraded(records, exc)
                return
            leases = {record.job.id: record.attempt for record in records}
            try:
                with self.metrics.time("service.job_seconds"):
                    self._maybe_worker_chaos(
                        f"{records[0].job.id}:{records[0].attempt}"
                    )
                    result = self._execute(records[0].job)
            except Exception as exc:  # noqa: BLE001 - poison jobs raise anything
                for record in records:
                    self._handle_failure(record, exc, lease=leases[record.job.id])
            else:
                failed: "JournalWriteError | None" = None
                with self._lock:
                    live = [
                        r for r in records if self._lease_current(r, leases[r.job.id])
                    ]
                    if len(live) < len(records):
                        self.metrics.inc(
                            "service.stale_results_discarded",
                            len(records) - len(live),
                        )
                    for record in live:
                        try:
                            self._finish(record, result, sync=False)
                        except JournalWriteError as exc:
                            if not exc.written:
                                self._unjournaled.add(record.job.id)
                            failed = exc
                    if failed is None and live:
                        try:
                            self.journal.sync()
                        except JournalWriteError as exc:
                            # written=True: the edges are in the file and
                            # the next successful group commit makes them
                            # durable — degrade, don't re-append.
                            failed = exc
                if failed is not None:
                    self._journal_failure("journal_write_failure", failed)
                elif live:
                    self.metrics.inc("service.batches")
                    self.metrics.inc("service.batched_jobs", len(live))
        finally:
            with self._idle:
                self._running -= 1
                self.metrics.set_gauge("service.running", self._running)
                self._idle.notify_all()

    def _handle_failure(
        self, record: JobRecord, exc: Exception, *, lease: "int | None" = None
    ) -> None:
        reason = f"{type(exc).__name__}: {exc}"
        failed: "JournalWriteError | None" = None
        with self._lock:
            if lease is not None and not self._lease_current(record, lease):
                self.metrics.inc("service.stale_results_discarded")
                return
            try:
                self._transition(record, JobState.FAILED, reason=reason)
            except JournalWriteError as jexc:
                failed = jexc
            self.metrics.inc("service.failed")
            if record.attempt >= record.job.max_attempts:
                try:
                    self._transition(
                        record,
                        JobState.QUARANTINED,
                        reason=f"poison: failed {record.attempt} attempts; "
                        f"last: {reason}",
                    )
                except JournalWriteError as jexc:
                    failed = jexc
                self.metrics.inc("service.quarantined")
            else:
                try:
                    self._transition(record, JobState.PENDING, reason="retry")
                except JournalWriteError as jexc:
                    failed = jexc
                self.metrics.inc("service.retries")
                self._enqueue(record.job)
            if failed is not None:
                # The record's in-memory state is authoritative; park the
                # id so the post-recovery backfill re-appends its terminal
                # edge if the disk swallowed the append entirely.
                if not failed.written:
                    self._unjournaled.add(record.job.id)
        if failed is not None:
            self._journal_failure("journal_write_failure", failed)

    def _execute(self, job: AuditJob) -> dict:
        """Run one job's scenario cells; returns the JSON result payload.

        Deterministic given the spec: per-cell seeds derive from
        ``job.seed`` and each cell checkpoints into the job's own
        directory, so a re-run after a crash resumes (``resume=True``)
        instead of recomputing — completed cells come back bit-identical.
        ``kind="mitigate"`` jobs run the same audit per cell and then
        repair the ranking (see :meth:`_execute_mitigate`).
        """
        from repro.engine.deadline import Deadline
        from repro.metrics import get_metric
        from repro.service.cache import (
            CachingEngineFactory,
            population_fingerprint,
            spec_token,
        )
        from repro.simulation.runner import run_scenario

        scenario = self._build_scenario(job)
        deadline = (
            Deadline(job.deadline_seconds) if job.deadline_seconds is not None else None
        )
        if job.kind == "mitigate":
            return self._execute_mitigate(job, scenario, deadline)
        # Whole-experiment memo: the rows are a pure function of this
        # material (per-cell seeds derive from job.seed and cell names; the
        # kernel backend is parity-proven out of the key), so a repeat job
        # on the same tenant replays byte-for-byte instead of re-searching.
        result_material = (
            "experiment",
            job.scenario,
            population_fingerprint(scenario.population),
            tuple(scenario.functions),
            (job.algorithm,),
            get_metric(job.metric).name,
            int(job.seed),
            spec_token(scenario.hist_spec),
        )
        memo = self.cache.get(result_material)
        if memo is not None:
            return memo["payload"]
        # Sharded execution fans histogram accumulation out by atom-range;
        # parity-proven bit-identical, so the experiment memo above stays
        # valid whichever backend computed the entry.
        experiment = run_scenario(
            scenario,
            algorithms=(job.algorithm,),
            metric=job.metric,
            seed=job.seed,
            backend="sharded" if self.config.shard_workers else None,
            workers=self.config.shard_workers,
            metrics=self.metrics,
            retry_policy=self.retry_policy,
            checkpoint=self.config.workdir / "checkpoints" / job.id,
            resume=True,
            deadline=deadline,
            kernel=job.kernel or self.config.engine_kernel,
            engine_factory=CachingEngineFactory(
                self.cache, owner=f"scenario:{job.scenario}"
            ),
        )
        rows = [
            {
                "function": row.function,
                "algorithm": row.algorithm,
                "unfairness": row.unfairness,
                "n_partitions": row.n_partitions,
                "attributes_used": list(row.attributes_used),
                "deadline_hit": row.deadline_hit,
            }
            for row in experiment.rows
        ]
        payload = {
            "scenario": experiment.scenario,
            "rows": rows,
            "deadline_hit": any(row.deadline_hit for row in experiment.rows),
        }
        if not payload["deadline_hit"]:  # never memoise partial results
            self.cache.put(
                result_material,
                {"payload": payload},
                len(repr(payload)) + 512,
                owner=f"scenario:{job.scenario}",
            )
        return payload

    def _execute_mitigate(self, job: AuditJob, scenario, deadline) -> dict:
        """Audit each cell, then repair its ranking with ``job.strategy``.

        Checkpointed and deterministic like audit jobs: every completed
        (function, algorithm) cell persists its JSON row via
        :meth:`~repro.simulation.checkpoint.CheckpointStore.record_payload`,
        so a crash mid-job resumes with bit-identical repaired rankings
        (the digest in each row proves it).
        """
        import numpy as np

        from repro.core.algorithms import get_algorithm
        from repro.repair import repair_ranking
        from repro.service.cache import CachingEngineFactory
        from repro.simulation.checkpoint import CheckpointStore, cell_key
        from repro.simulation.runner import _cell_seed

        engine_factory = CachingEngineFactory(
            self.cache, owner=f"scenario:{job.scenario}"
        )

        fingerprint = {
            "kind": "mitigate",
            "scenario": scenario.name,
            "seed": job.seed,
            "metric": job.metric,
            "algorithms": [job.algorithm],
            "functions": list(scenario.functions),
            "strategy": job.strategy,
            "top_k": job.top_k,
            "min_proportion": job.min_proportion,
            "alpha": job.alpha,
            "amount": job.amount,
        }
        store = CheckpointStore(self.config.workdir / "checkpoints" / job.id)
        completed = store.begin(fingerprint, resume=True)
        rows: "list[dict]" = []
        deadline_hit = False
        for function_name, function in scenario.functions.items():
            key = cell_key(function_name, job.algorithm)
            cell = completed.get(key)
            if cell is not None and "payload" in cell:
                rows.append(cell["payload"])
                self.metrics.inc("checkpoint.cells_skipped")
                continue
            if deadline is not None and deadline.expired():
                deadline_hit = True
                break
            scores = function(scenario.population)
            seed_value = _cell_seed(job.seed, job.algorithm, function_name)
            audit = get_algorithm(job.algorithm).run(
                scenario.population,
                scores,
                hist_spec=scenario.hist_spec,
                metric=job.metric,
                rng=np.random.default_rng(seed_value),
                metrics=self.metrics,
                retry_policy=self.retry_policy,
                deadline=deadline,
                kernel=job.kernel or self.config.engine_kernel,
                engine_factory=engine_factory,
            )
            with self.metrics.time("service.repair_seconds"):
                repair = repair_ranking(
                    scenario.population,
                    scores,
                    audit.partitioning,
                    job.strategy,
                    k=job.top_k,
                    min_proportion=job.min_proportion,
                    alpha=job.alpha,
                    amount=job.amount,
                    hist_spec=scenario.hist_spec,
                    metric=job.metric,
                )
            row = {
                "function": function_name,
                "algorithm": job.algorithm,
                "strategy": job.strategy,
                "audit_unfairness": audit.unfairness,
                "unfairness_before": repair.unfairness_before,
                "unfairness_after": repair.unfairness_after,
                "ndcg_at_k": repair.ndcg_at_k,
                "retained_score_mass": repair.retained_score_mass,
                "k": repair.k,
                "ranking_digest": repair.ranking_digest(),
                "deadline_hit": audit.deadline_hit,
            }
            store.record_payload(key, row)
            rows.append(row)
            self.metrics.inc("service.repairs")
            deadline_hit = deadline_hit or audit.deadline_hit
        return {
            "scenario": scenario.name,
            "kind": "mitigate",
            "rows": rows,
            "deadline_hit": deadline_hit
            or any(row["deadline_hit"] for row in rows),
        }

    def _build_scenario(self, job: AuditJob):
        from repro.simulation.scenarios import Scenario

        # Scenario generation is deterministic given (name, n_workers), so
        # the memo is exact; function filtering stays per-job (it only
        # wraps the shared population, never copies it).
        scenario = self.cache.scenario(
            job.scenario, job.n_workers, lambda: self._generate_scenario(job)
        )
        if job.functions:
            missing = sorted(set(job.functions) - set(scenario.functions))
            if missing:
                raise ServiceError(
                    f"scenario {job.scenario!r} has no function(s) {missing}"
                )
            scenario = Scenario(
                name=scenario.name,
                population=scenario.population,
                functions={name: scenario.functions[name] for name in job.functions},
                hist_spec=scenario.hist_spec,
            )
        return scenario

    def _generate_scenario(self, job: AuditJob):
        from repro.simulation import scenarios as scenario_builders
        from repro.simulation.config import PaperConfig

        if job.scenario == "figure1":
            return scenario_builders.figure1_scenario()
        builder = getattr(scenario_builders, f"{job.scenario}_scenario")
        config = (
            PaperConfig(n_workers=job.n_workers)
            if job.n_workers is not None
            else None
        )
        return builder(config)


# ------------------------------------------------------------------- HTTP


def _build_http_server(service: AuditService, host: str, port: int):
    """An :class:`~repro.service.http.AsyncHTTPServer` exposing ``/v1``.

    ``/v1/...`` is the contract (see ``docs/api.md``): every error is the
    shared envelope ``{"error": {"code", "message", "detail"}}`` and job
    submission/inspection lives under ``/v1/jobs``.  The historical
    unversioned routes (``/submit``, ``/jobs``, ``/healthz``, ...) remain
    as thin aliases with their original response shapes, but every reply
    on them carries a ``Deprecation: true`` header.  Routing is the pure
    :func:`repro.service.http.dispatch`; this factory only exists as the
    daemon's single seam for swapping server implementations.
    """
    from repro.service.http import AsyncHTTPServer

    chaos = service.config.chaos
    return AsyncHTTPServer(
        service,
        host,
        port,
        request_timeout=service.config.request_timeout,
        chaos=None if chaos is None else chaos.net,
    )
