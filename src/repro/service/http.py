"""Asyncio front end for the audit daemon's HTTP API.

PR 9 replaces the blocking :class:`http.server.ThreadingHTTPServer` (one
OS thread per in-flight connection) with a single-threaded ``asyncio``
reactor that multiplexes every connection and keeps them alive between
requests (connection pooling on the client side costs nothing when the
server honours keep-alive).  Two invariants make the swap safe:

* **Byte compatibility** — the route table, payloads, status codes, the
  ``/v1`` error envelope and the legacy ``Deprecation: true`` aliases are
  the exact shapes the threaded server produced; the pre-existing service
  tests run unmodified against this implementation.  All routing lives in
  :func:`dispatch`, a pure function from ``(method, target, body)`` to
  ``(status, payload, api_v1)`` — trivially testable without a socket.
* **Non-blocking reactor** — route handlers can block (``submit`` waits
  on a journal fsync), so :func:`dispatch` runs on a bounded thread pool
  via ``run_in_executor`` while the event loop keeps accepting and
  parsing other connections.  Submit/status round-trips therefore never
  queue behind a slow peer's socket.

The server object exposes the same tiny surface the daemon used before
(``server_address`` / ``serve_forever`` / ``shutdown`` / ``server_close``)
so :class:`~repro.service.server.AuditService` drives it unchanged.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from http import HTTPStatus
from urllib.parse import parse_qsl, urlsplit

from repro.exceptions import JobRejectedError, ServiceError

__all__ = ["AsyncHTTPServer", "dispatch", "REJECTION_STATUS"]

#: Typed rejection reason → HTTP status (shared by both API surfaces).
REJECTION_STATUS = {
    "queue_full": 429,
    "rate_limited": 429,
    "duplicate_id": 409,
    "invalid_spec": 400,
    "shutting_down": 503,
}

#: Upper bound on a request head (request line + headers).
_MAX_HEAD_BYTES = 64 * 1024
#: Upper bound on a request body we are willing to buffer.
_MAX_BODY_BYTES = 64 * 1024 * 1024


# --------------------------------------------------------------------- routing


def _error(
    status: int,
    code: str,
    message: str,
    api_v1: bool,
    detail: "str | None" = None,
):
    """One error shape per surface: the v1 envelope, or the legacy flat
    body (without inventing keys old clients never saw)."""
    if api_v1:
        payload = {"error": {"code": code, "message": message, "detail": detail}}
    else:
        payload = {"error": message}
    return status, payload, api_v1


def _rejection(exc: JobRejectedError, api_v1: bool):
    status = REJECTION_STATUS.get(exc.reason, 400)
    if api_v1:
        return _error(status, exc.reason, str(exc), api_v1)
    return status, {"error": str(exc), "reason": exc.reason}, api_v1


def _jobs_query(query: str) -> dict:
    """Parse/validate ``GET /jobs`` filters; raises ServiceError on junk."""
    allowed = {"state", "kind", "tenant", "limit"}
    filters: dict = {}
    for key, value in parse_qsl(query, keep_blank_values=True):
        if key not in allowed:
            raise ServiceError(
                f"unknown query parameter {key!r}; allowed: {sorted(allowed)}"
            )
        filters[key] = value
    if "limit" in filters:
        try:
            filters["limit"] = int(filters["limit"])
        except ValueError as exc:
            raise ServiceError(f"limit must be an integer: {exc}") from exc
        if filters["limit"] < 1:
            raise ServiceError(f"limit must be >= 1, got {filters['limit']}")
    return filters


def dispatch(service, method: str, target: str, body: bytes):
    """Route one request; returns ``(status, json_payload, api_v1)``.

    ``target`` is the raw request target (path + optional query string);
    ``body`` the raw request body.  Never raises for client errors — they
    come back as the surface-appropriate error payload.
    """
    parts = urlsplit(target)
    path = parts.path
    api_v1 = path == "/v1" or path.startswith("/v1/")
    route = (path[len("/v1"):] or "/") if api_v1 else path

    def read_json():
        try:
            return json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise _BadBody(f"invalid JSON body: {exc}") from exc

    try:
        if method == "GET":
            return _dispatch_get(service, route, parts.query, api_v1, path)
        if method == "POST":
            return _dispatch_post(service, route, read_json, api_v1, path)
    except _BadBody as exc:
        return _error(400, "invalid_spec", str(exc), api_v1)
    return _error(404, "not_found", f"unknown path {path!r}", api_v1)


class _BadBody(Exception):
    """Request body failed to parse as JSON."""


def _dispatch_get(service, route: str, query: str, api_v1: bool, path: str):
    if route == "/healthz":
        return 200, service.health(), api_v1
    if route == "/metrics":
        return 200, service.metrics.as_dict(), api_v1
    if route == "/jobs":
        try:
            filters = _jobs_query(query)
            jobs = service.jobs_snapshot(**filters)
        except ServiceError as exc:
            return _error(400, "invalid_spec", str(exc), api_v1)
        return 200, {"jobs": jobs}, api_v1
    if route.startswith("/jobs/") and api_v1:
        try:
            record = service.record(route[len("/jobs/"):])
        except ServiceError as exc:
            return _error(404, "not_found", str(exc), api_v1)
        return 200, {"job": record.as_dict()}, api_v1
    if route == "/populations":
        return 200, {"populations": service.monitors_snapshot()}, api_v1
    if route.startswith("/populations/"):
        segments = route.strip("/").split("/")
        try:
            if len(segments) == 2:
                return 200, service.monitor(segments[1]).as_dict(), api_v1
            if len(segments) == 3 and segments[2] == "series":
                return 200, {"series": service.monitor_series(segments[1])}, api_v1
        except ServiceError as exc:
            return _error(404, "not_found", str(exc), api_v1)
    return _error(404, "not_found", f"unknown path {path!r}", api_v1)


def _dispatch_post(service, route: str, read_json, api_v1: bool, path: str):
    if route == "/jobs/batch" and api_v1:
        # Bulk submit: one request, one group-committed journal fsync,
        # per-item acceptance (a batch can be partially rejected).
        payload = read_json()
        jobs = payload.get("jobs") if isinstance(payload, dict) else None
        if not isinstance(jobs, list) or not jobs:
            return _error(
                400, "invalid_spec", "body must be {'jobs': [spec, ...]}", api_v1
            )
        results = []
        accepted = 0
        for outcome in service.submit_many(jobs):
            if isinstance(outcome, JobRejectedError):
                results.append(
                    {"error": {"code": outcome.reason, "message": str(outcome)}}
                )
            else:
                accepted += 1
                results.append({"job": outcome.as_dict()})
        return 202, {
            "accepted": accepted,
            "rejected": len(results) - accepted,
            "results": results,
        }, api_v1
    if route == "/jobs" and api_v1:
        payload = read_json()
        try:
            record = service.submit(payload)
        except JobRejectedError as exc:
            return _rejection(exc, api_v1)
        return 202, {"job": record.as_dict()}, api_v1
    if route == "/submit" and not api_v1:
        # Deprecated alias of POST /v1/jobs (original response shape).
        payload = read_json()
        try:
            record = service.submit(payload)
        except JobRejectedError as exc:
            return _rejection(exc, api_v1)
        return 202, {"accepted": record.job.id, "state": record.state.value}, api_v1
    if route == "/populations":
        payload = read_json()
        try:
            summary = service.create_monitor(payload)
        except JobRejectedError as exc:
            return _rejection(exc, api_v1)
        return 201, summary, api_v1
    if route.startswith("/populations/"):
        segments = route.strip("/").split("/")
        if len(segments) != 3 or segments[2] != "mutations":
            return _error(404, "not_found", f"unknown path {path!r}", api_v1)
        payload = read_json()
        if isinstance(payload, dict):
            payload = payload.get("mutations", payload)
        try:
            info = service.apply_mutations(segments[1], payload)
        except JobRejectedError as exc:
            return _rejection(exc, api_v1)
        except ServiceError as exc:
            return _error(404, "not_found", str(exc), api_v1)
        return 202, info, api_v1
    return _error(404, "not_found", f"unknown path {path!r}", api_v1)


# ---------------------------------------------------------------------- server


def _render(status: int, payload: dict, api_v1: bool, keep_alive: bool) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    head = [
        f"HTTP/1.1 {status} {HTTPStatus(status).phrase}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
    ]
    if not api_v1:
        head.append("Deprecation: true")
    if not keep_alive:
        head.append("Connection: close")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


class AsyncHTTPServer:
    """Drop-in replacement for the daemon's ``ThreadingHTTPServer``.

    The listening socket is bound in the constructor (so
    ``server_address`` is immediately valid, and ``port=0`` resolves to a
    real ephemeral port before any thread starts); the event loop runs
    inside :meth:`serve_forever`, which the daemon calls on a dedicated
    thread.  ``shutdown`` is thread-safe and idempotent.
    """

    def __init__(self, service, host: str, port: int) -> None:
        self._service = service
        self._socket = socket.create_server((host, port))
        self.server_address = self._socket.getsockname()[:2]
        self._executor = ThreadPoolExecutor(thread_name_prefix="audit-http")
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._stop: "asyncio.Event | None" = None
        self._started = threading.Event()
        self._closed = False

    def serve_forever(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._serve_connection, sock=self._socket, limit=_MAX_HEAD_BYTES
        )
        self._started.set()
        async with server:
            await self._stop.wait()

    def shutdown(self) -> None:
        """Stop accepting and unwind the loop (callable from any thread)."""
        if not self._started.wait(timeout=10):  # pragma: no cover - startup race
            return
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)

    def server_close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=False)
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - already closed by the loop
            pass

    async def _serve_connection(self, reader, writer) -> None:
        """One keep-alive connection: parse → dispatch off-loop → respond."""
        loop = asyncio.get_running_loop()
        try:
            while True:
                try:
                    head = await reader.readuntil(b"\r\n\r\n")
                except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
                    break  # EOF between requests, or an oversized head
                request = self._parse_head(head)
                if request is None:
                    writer.write(
                        _render(400, {"error": "malformed request"}, True, False)
                    )
                    await writer.drain()
                    break
                method, target, headers, keep_alive = request
                length = int(headers.get("content-length") or 0)
                if length > _MAX_BODY_BYTES:
                    writer.write(
                        _render(413, {"error": "request body too large"}, True, False)
                    )
                    await writer.drain()
                    break
                body = await reader.readexactly(length) if length else b""
                status, payload, api_v1 = await loop.run_in_executor(
                    self._executor, dispatch, self._service, method, target, body
                )
                writer.write(_render(status, payload, api_v1, keep_alive))
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away mid-request; nothing was acknowledged
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    @staticmethod
    def _parse_head(head: bytes):
        """``(method, target, headers, keep_alive)`` or None if malformed."""
        request_line, _, header_block = head.partition(b"\r\n")
        pieces = request_line.decode("latin-1").split()
        if len(pieces) != 3:
            return None
        method, target, version = pieces
        headers: "dict[str, str]" = {}
        for line in header_block.decode("latin-1").split("\r\n"):
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                return None
            headers[name.strip().lower()] = value.strip()
        connection = headers.get("connection", "").lower()
        keep_alive = connection != "close" and (
            version != "HTTP/1.0" or connection == "keep-alive"
        )
        return method, target, headers, keep_alive
