"""Asyncio front end for the audit daemon's HTTP API.

PR 9 replaces the blocking :class:`http.server.ThreadingHTTPServer` (one
OS thread per in-flight connection) with a single-threaded ``asyncio``
reactor that multiplexes every connection and keeps them alive between
requests (connection pooling on the client side costs nothing when the
server honours keep-alive).  Two invariants make the swap safe:

* **Byte compatibility** — the route table, payloads, status codes, the
  ``/v1`` error envelope and the legacy ``Deprecation: true`` aliases are
  the exact shapes the threaded server produced; the pre-existing service
  tests run unmodified against this implementation.  All routing lives in
  :func:`dispatch`, a pure function from ``(method, target, body)`` to
  ``(status, payload, api_v1)`` — trivially testable without a socket.
* **Non-blocking reactor** — route handlers can block (``submit`` waits
  on a journal fsync), so :func:`dispatch` runs on a bounded thread pool
  via ``run_in_executor`` while the event loop keeps accepting and
  parsing other connections.  Submit/status round-trips therefore never
  queue behind a slow peer's socket.

The server object exposes the same tiny surface the daemon used before
(``server_address`` / ``serve_forever`` / ``shutdown`` / ``server_close``)
so :class:`~repro.service.server.AuditService` drives it unchanged.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import socket
import threading
from concurrent.futures import ThreadPoolExecutor
from http import HTTPStatus
from urllib.parse import parse_qsl, urlsplit

from repro.exceptions import JobRejectedError, ServiceError

__all__ = ["AsyncHTTPServer", "dispatch", "REJECTION_STATUS"]

#: Typed rejection reason → HTTP status (shared by both API surfaces).
REJECTION_STATUS = {
    "queue_full": 429,
    "rate_limited": 429,
    "duplicate_id": 409,
    "invalid_spec": 400,
    "shutting_down": 503,
    "degraded": 503,
}

#: Upper bound on a request head (request line + headers).
_MAX_HEAD_BYTES = 64 * 1024
#: Upper bound on a request body we are willing to buffer.
_MAX_BODY_BYTES = 64 * 1024 * 1024


# --------------------------------------------------------------------- routing


def _error(
    status: int,
    code: str,
    message: str,
    api_v1: bool,
    detail: "str | None" = None,
):
    """One error shape per surface: the v1 envelope, or the legacy flat
    body (without inventing keys old clients never saw)."""
    if api_v1:
        payload = {"error": {"code": code, "message": message, "detail": detail}}
    else:
        payload = {"error": message}
    return status, payload, api_v1


def _rejection(exc: JobRejectedError, api_v1: bool):
    status = REJECTION_STATUS.get(exc.reason, 400)
    if api_v1:
        return _error(status, exc.reason, str(exc), api_v1)
    return status, {"error": str(exc), "reason": exc.reason}, api_v1


def _jobs_query(query: str) -> dict:
    """Parse/validate ``GET /jobs`` filters; raises ServiceError on junk."""
    allowed = {"state", "kind", "tenant", "limit"}
    filters: dict = {}
    for key, value in parse_qsl(query, keep_blank_values=True):
        if key not in allowed:
            raise ServiceError(
                f"unknown query parameter {key!r}; allowed: {sorted(allowed)}"
            )
        filters[key] = value
    if "limit" in filters:
        try:
            filters["limit"] = int(filters["limit"])
        except ValueError as exc:
            raise ServiceError(f"limit must be an integer: {exc}") from exc
        if filters["limit"] < 1:
            raise ServiceError(f"limit must be >= 1, got {filters['limit']}")
    return filters


def dispatch(service, method: str, target: str, body: bytes):
    """Route one request; returns ``(status, json_payload, api_v1)``.

    ``target`` is the raw request target (path + optional query string);
    ``body`` the raw request body.  Never raises for client errors — they
    come back as the surface-appropriate error payload.
    """
    parts = urlsplit(target)
    path = parts.path
    api_v1 = path == "/v1" or path.startswith("/v1/")
    route = (path[len("/v1"):] or "/") if api_v1 else path

    def read_json():
        try:
            return json.loads(body or b"{}")
        except json.JSONDecodeError as exc:
            raise _BadBody(f"invalid JSON body: {exc}") from exc

    try:
        if method == "GET":
            return _dispatch_get(service, route, parts.query, api_v1, path)
        if method == "POST":
            return _dispatch_post(service, route, read_json, api_v1, path)
    except _BadBody as exc:
        return _error(400, "invalid_spec", str(exc), api_v1)
    return _error(404, "not_found", f"unknown path {path!r}", api_v1)


class _BadBody(Exception):
    """Request body failed to parse as JSON."""


def _dispatch_get(service, route: str, query: str, api_v1: bool, path: str):
    if route == "/healthz":
        return 200, service.health(), api_v1
    if route == "/metrics":
        return 200, service.metrics.as_dict(), api_v1
    if route == "/jobs":
        try:
            filters = _jobs_query(query)
            jobs = service.jobs_snapshot(**filters)
        except ServiceError as exc:
            return _error(400, "invalid_spec", str(exc), api_v1)
        return 200, {"jobs": jobs}, api_v1
    if route.startswith("/jobs/") and api_v1:
        try:
            record = service.record(route[len("/jobs/"):])
        except ServiceError as exc:
            return _error(404, "not_found", str(exc), api_v1)
        return 200, {"job": record.as_dict()}, api_v1
    if route == "/populations":
        return 200, {"populations": service.monitors_snapshot()}, api_v1
    if route.startswith("/populations/"):
        segments = route.strip("/").split("/")
        try:
            if len(segments) == 2:
                return 200, service.monitor(segments[1]).as_dict(), api_v1
            if len(segments) == 3 and segments[2] == "series":
                return 200, {"series": service.monitor_series(segments[1])}, api_v1
        except ServiceError as exc:
            return _error(404, "not_found", str(exc), api_v1)
    return _error(404, "not_found", f"unknown path {path!r}", api_v1)


def _dispatch_post(service, route: str, read_json, api_v1: bool, path: str):
    if route == "/jobs/batch" and api_v1:
        # Bulk submit: one request, one group-committed journal fsync,
        # per-item acceptance (a batch can be partially rejected).
        payload = read_json()
        jobs = payload.get("jobs") if isinstance(payload, dict) else None
        if not isinstance(jobs, list) or not jobs:
            return _error(
                400, "invalid_spec", "body must be {'jobs': [spec, ...]}", api_v1
            )
        results = []
        accepted = 0
        for outcome in service.submit_many(jobs):
            if isinstance(outcome, JobRejectedError):
                results.append(
                    {"error": {"code": outcome.reason, "message": str(outcome)}}
                )
            else:
                accepted += 1
                results.append({"job": outcome.as_dict()})
        return 202, {
            "accepted": accepted,
            "rejected": len(results) - accepted,
            "results": results,
        }, api_v1
    if route == "/jobs" and api_v1:
        payload = read_json()
        try:
            record = service.submit(payload)
        except JobRejectedError as exc:
            return _rejection(exc, api_v1)
        return 202, {"job": record.as_dict()}, api_v1
    if route == "/submit" and not api_v1:
        # Deprecated alias of POST /v1/jobs (original response shape).
        payload = read_json()
        try:
            record = service.submit(payload)
        except JobRejectedError as exc:
            return _rejection(exc, api_v1)
        return 202, {"accepted": record.job.id, "state": record.state.value}, api_v1
    if route == "/populations":
        payload = read_json()
        try:
            summary = service.create_monitor(payload)
        except JobRejectedError as exc:
            return _rejection(exc, api_v1)
        return 201, summary, api_v1
    if route.startswith("/populations/"):
        segments = route.strip("/").split("/")
        if len(segments) != 3 or segments[2] != "mutations":
            return _error(404, "not_found", f"unknown path {path!r}", api_v1)
        payload = read_json()
        if isinstance(payload, dict):
            payload = payload.get("mutations", payload)
        try:
            info = service.apply_mutations(segments[1], payload)
        except JobRejectedError as exc:
            return _rejection(exc, api_v1)
        except ServiceError as exc:
            return _error(404, "not_found", str(exc), api_v1)
        return 202, info, api_v1
    return _error(404, "not_found", f"unknown path {path!r}", api_v1)


# ---------------------------------------------------------------------- server


def _render(status: int, payload: dict, api_v1: bool, keep_alive: bool) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    head = [
        f"HTTP/1.1 {status} {HTTPStatus(status).phrase}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
    ]
    if not api_v1:
        head.append("Deprecation: true")
    if not keep_alive:
        head.append("Connection: close")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


class AsyncHTTPServer:
    """Drop-in replacement for the daemon's ``ThreadingHTTPServer``.

    The listening socket is bound in the constructor (so
    ``server_address`` is immediately valid, and ``port=0`` resolves to a
    real ephemeral port before any thread starts); the event loop runs
    inside :meth:`serve_forever`, which the daemon calls on a dedicated
    thread.  ``shutdown`` is thread-safe and idempotent.
    """

    def __init__(
        self,
        service,
        host: str,
        port: int,
        request_timeout: "float | None" = 30.0,
        chaos=None,
    ) -> None:
        self._service = service
        self._socket = socket.create_server((host, port))
        self.server_address = self._socket.getsockname()[:2]
        self._executor = ThreadPoolExecutor(thread_name_prefix="audit-http")
        self._loop: "asyncio.AbstractEventLoop | None" = None
        self._stop: "asyncio.Event | None" = None
        self._started = threading.Event()
        self._closed = False
        #: Total head+body deadline per request (None disables); a peer
        #: that trickles bytes slower than this gets a 408 and the socket
        #: back — one slow-loris client cannot pin reactor buffers open.
        self._request_timeout = request_timeout
        #: Optional :class:`repro.service.chaos.NetChaosConfig` — injected
        #: response-side faults (reset/truncate/stall/close), deterministic
        #: per response index so a seeded run replays the same carnage.
        self._chaos = chaos if chaos is not None and chaos.enabled else None
        self._responses = 0

    def serve_forever(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        server = await asyncio.start_server(
            self._serve_connection, sock=self._socket, limit=_MAX_HEAD_BYTES
        )
        self._started.set()
        async with server:
            await self._stop.wait()

    def shutdown(self) -> None:
        """Stop accepting and unwind the loop (callable from any thread)."""
        if not self._started.wait(timeout=10):  # pragma: no cover - startup race
            return
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None and loop.is_running():
            loop.call_soon_threadsafe(stop.set)

    def server_close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._executor.shutdown(wait=False)
        try:
            self._socket.close()
        except OSError:  # pragma: no cover - already closed by the loop
            pass

    def _metric(self, name: str, value: float = 1) -> None:
        metrics = getattr(self._service, "metrics", None)
        if metrics is not None:
            metrics.inc(name, value)

    async def _serve_connection(self, reader, writer) -> None:
        """One keep-alive connection: parse → dispatch off-loop → respond.

        Every request gets a single deadline covering both the head and
        body reads (``request_timeout``); a peer that stalls mid-head or
        trickles its body (slow loris) is answered with 408 and
        disconnected.  The same 408-then-close answers an idle keep-alive
        connection that outlives the deadline — RFC 9110 blesses 408 as
        the "close your idle connection" signal, and clients retry it on
        a fresh connection.
        """
        loop = asyncio.get_running_loop()
        timeout = self._request_timeout
        try:
            while True:
                deadline = loop.time() + timeout if timeout is not None else None
                try:
                    head = await asyncio.wait_for(
                        reader.readuntil(b"\r\n\r\n"),
                        None if deadline is None else timeout,
                    )
                except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
                    break  # EOF between requests, or an oversized head
                except asyncio.TimeoutError:
                    self._metric("service.request_timeouts")
                    writer.write(
                        _render(408, {"error": "request timed out"}, True, False)
                    )
                    await writer.drain()
                    break
                request = self._parse_head(head)
                if request is None:
                    writer.write(
                        _render(400, {"error": "malformed request"}, True, False)
                    )
                    await writer.drain()
                    break
                method, target, headers, keep_alive = request
                length = int(headers.get("content-length") or 0)
                if length > _MAX_BODY_BYTES:
                    writer.write(
                        _render(413, {"error": "request body too large"}, True, False)
                    )
                    await writer.drain()
                    break
                try:
                    if length:
                        remaining = (
                            None if deadline is None
                            else max(0.001, deadline - loop.time())
                        )
                        body = await asyncio.wait_for(
                            reader.readexactly(length), remaining
                        )
                    else:
                        body = b""
                except asyncio.TimeoutError:
                    self._metric("service.request_timeouts")
                    writer.write(
                        _render(408, {"error": "request timed out"}, True, False)
                    )
                    await writer.drain()
                    break
                status, payload, api_v1 = await loop.run_in_executor(
                    self._executor, dispatch, self._service, method, target, body
                )
                if self._chaos is not None:
                    keep_alive, finished = await self._inject_response_chaos(
                        writer, status, payload, api_v1, keep_alive
                    )
                    if not finished:
                        break
                else:
                    writer.write(_render(status, payload, api_v1, keep_alive))
                    await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peer went away mid-request; nothing was acknowledged
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _inject_response_chaos(
        self, writer, status: int, payload: dict, api_v1: bool, keep_alive: bool
    ) -> "tuple[bool, bool]":
        """Write one response through the network fault plane.

        Returns ``(keep_alive, finished)``; ``finished=False`` means the
        connection was deliberately wrecked (reset mid-body or truncated)
        and the caller must stop serving it.  Faults are injected strictly
        *after* dispatch — the service processed the request, only the
        client's view of the outcome is damaged, which is exactly the
        partial-failure shape retrying clients must survive.
        """
        chaos = self._chaos
        self._responses += 1
        key = f"resp-{self._responses}"
        if chaos.roll("stall", key):
            self._metric("chaos.faults_injected")
            self._metric("chaos.net_stall")
            await asyncio.sleep(chaos.stall_seconds)
        if chaos.roll("close", key) and keep_alive:
            self._metric("chaos.faults_injected")
            self._metric("chaos.net_close")
            keep_alive = False  # keep-alive churn: force a reconnect
        data = _render(status, payload, api_v1, keep_alive)
        if chaos.roll("reset", key):
            # Connection reset mid-body: half the bytes, then RST.
            self._metric("chaos.faults_injected")
            self._metric("chaos.net_reset")
            writer.write(data[: max(1, len(data) // 2)])
            with contextlib.suppress(OSError):
                await writer.drain()
            writer.transport.abort()
            return False, False
        if chaos.roll("truncate", key):
            # Truncated response: full headers (full Content-Length
            # declared), half the body, then a clean FIN.
            self._metric("chaos.faults_injected")
            self._metric("chaos.net_truncate")
            head_end = data.index(b"\r\n\r\n") + 4
            body_len = len(data) - head_end
            writer.write(data[: len(data) - max(1, body_len // 2)])
            with contextlib.suppress(OSError):
                await writer.drain()
            return False, False
        writer.write(data)
        await writer.drain()
        return keep_alive, True

    @staticmethod
    def _parse_head(head: bytes):
        """``(method, target, headers, keep_alive)`` or None if malformed."""
        request_line, _, header_block = head.partition(b"\r\n")
        pieces = request_line.decode("latin-1").split()
        if len(pieces) != 3:
            return None
        method, target, version = pieces
        headers: "dict[str, str]" = {}
        for line in header_block.decode("latin-1").split("\r\n"):
            if not line:
                continue
            name, sep, value = line.partition(":")
            if not sep:
                return None
            headers[name.strip().lower()] = value.strip()
        connection = headers.get("connection", "").lower()
        keep_alive = connection != "close" and (
            version != "HTTP/1.0" or connection == "keep-alive"
        )
        return method, target, headers, keep_alive
