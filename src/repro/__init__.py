"""repro — a from-scratch reproduction of
*Exploring Fairness of Ranking in Online Job Marketplaces* (EDBT 2019).

The library answers one question about an online job marketplace: **which
demographic subgroup does a given ranking function treat worst?**  It
searches all partitionings of the workers on their protected attributes for
the one whose score distributions differ the most (average pairwise Earth
Mover's Distance), using the paper's ``balanced`` and ``unbalanced`` greedy
algorithms plus all the baselines its evaluation compares against.

Quickstart::

    from repro import FairnessAuditor, generate_paper_population, paper_functions

    population = generate_paper_population(500, seed=42)
    auditor = FairnessAuditor(population)
    report = auditor.audit(paper_functions()["f4"])
    print(report.render())

See README.md for the full tour and DESIGN.md for the architecture.
"""

from repro.analysis.importance import AttributeImportance, attribute_importance
from repro.analysis.significance import (
    PermutationTestResult,
    noise_floor,
    permutation_test,
)
from repro.analysis.workload import WorkloadAuditSummary, audit_workload
from repro.core.algorithms import (
    PAPER_ALGORITHMS,
    AlgorithmResult,
    available_algorithms,
    count_split_trees,
    get_algorithm,
)
from repro.core.attributes import (
    CategoricalAttribute,
    IntegerAttribute,
    ObservedAttribute,
)
from repro.core.audit import AuditReport, FairnessAuditor, GroupSummary
from repro.core.histogram import HistogramSpec
from repro.core.partition import Partition, Partitioning
from repro.core.population import Population
from repro.core.schema import WorkerSchema
from repro.core.tree import build_split_tree, render_split_tree
from repro.core.unfairness import UnfairnessEvaluator, unfairness
from repro.engine import (
    Deadline,
    EvaluationEngine,
    FaultConfig,
    FaultInjectionBackend,
    RetryingBackend,
    RetryPolicy,
    SearchContext,
    StepDeadline,
    available_backends,
)
from repro.exceptions import (
    BackendError,
    BackendExhaustedError,
    BackendTimeoutError,
    BudgetExceededError,
    CheckpointError,
    CorruptResultError,
    DeadlineExceededError,
    JobRejectedError,
    JobStateError,
    JournalError,
    MetricError,
    PartitioningError,
    PopulationError,
    ReproError,
    SchemaError,
    ScoringError,
    ServiceError,
    WorkerCrashError,
)
from repro.service import (
    AuditJob,
    AuditService,
    JobJournal,
    JobRecord,
    JobState,
    ServiceConfig,
)
from repro.marketplace.biased import (
    AttributeCondition,
    RuleBasedScoringFunction,
    ScoreRule,
    paper_biased_functions,
)
from repro.marketplace.exposure import exposure_disparity, group_exposure
from repro.marketplace.platform import Marketplace
from repro.marketplace.ranking import Ranking, rank_workers
from repro.marketplace.scoring import (
    LinearScoringFunction,
    ScoringFunction,
    paper_functions,
)
from repro.marketplace.tasks import Task, task_from_weights
from repro.metrics.base import available_metrics, get_metric
from repro.obs import (
    MetricsRegistry,
    NullTracer,
    Tracer,
    setup_logging,
    write_trace,
)
from repro.repair import (
    RepairResult,
    RepairStrategy,
    available_strategies,
    get_strategy,
    repair_ranking,
    repair_scores,
)
from repro.simulation.config import (
    LARGE_WORKER_COUNT,
    SMALL_WORKER_COUNT,
    PaperConfig,
    paper_schema,
)
from repro.simulation.generator import (
    generate_paper_population,
    generate_population,
    toy_population,
)
from repro.simulation.checkpoint import CheckpointStore
from repro.simulation.realistic import generate_realistic_population
from repro.simulation.runner import ExperimentResult, ExperimentRow, run_scenario
from repro.simulation.scenarios import (
    Scenario,
    figure1_scenario,
    table1_scenario,
    table2_scenario,
    table3_scenario,
)

__version__ = "1.0.0"

__all__ = [
    # core model
    "CategoricalAttribute",
    "IntegerAttribute",
    "ObservedAttribute",
    "WorkerSchema",
    "Population",
    "HistogramSpec",
    "Partition",
    "Partitioning",
    "UnfairnessEvaluator",
    "unfairness",
    "build_split_tree",
    "render_split_tree",
    # algorithms
    "AlgorithmResult",
    "PAPER_ALGORITHMS",
    "available_algorithms",
    "get_algorithm",
    "count_split_trees",
    # audit API
    "FairnessAuditor",
    "AuditReport",
    "GroupSummary",
    # evaluation engine
    "EvaluationEngine",
    "SearchContext",
    "available_backends",
    # resilience & fault injection
    "RetryPolicy",
    "RetryingBackend",
    "FaultConfig",
    "FaultInjectionBackend",
    "CheckpointStore",
    # deadlines
    "Deadline",
    "StepDeadline",
    # audit service
    "AuditJob",
    "AuditService",
    "JobJournal",
    "JobRecord",
    "JobState",
    "ServiceConfig",
    # observability
    "Tracer",
    "NullTracer",
    "MetricsRegistry",
    "write_trace",
    "setup_logging",
    # marketplace
    "ScoringFunction",
    "LinearScoringFunction",
    "RuleBasedScoringFunction",
    "ScoreRule",
    "AttributeCondition",
    "paper_functions",
    "paper_biased_functions",
    "Task",
    "task_from_weights",
    "Ranking",
    "rank_workers",
    "Marketplace",
    "group_exposure",
    "exposure_disparity",
    # metrics
    "available_metrics",
    "get_metric",
    # repair
    "RepairResult",
    "RepairStrategy",
    "available_strategies",
    "get_strategy",
    "repair_ranking",
    "repair_scores",
    # analysis
    "PermutationTestResult",
    "permutation_test",
    "noise_floor",
    "WorkloadAuditSummary",
    "audit_workload",
    "AttributeImportance",
    "attribute_importance",
    # simulation
    "PaperConfig",
    "paper_schema",
    "SMALL_WORKER_COUNT",
    "LARGE_WORKER_COUNT",
    "generate_population",
    "generate_paper_population",
    "generate_realistic_population",
    "toy_population",
    "Scenario",
    "figure1_scenario",
    "table1_scenario",
    "table2_scenario",
    "table3_scenario",
    "run_scenario",
    "ExperimentResult",
    "ExperimentRow",
    # exceptions
    "ReproError",
    "SchemaError",
    "PopulationError",
    "ScoringError",
    "PartitioningError",
    "MetricError",
    "BudgetExceededError",
    "BackendError",
    "WorkerCrashError",
    "BackendTimeoutError",
    "CorruptResultError",
    "BackendExhaustedError",
    "CheckpointError",
    "DeadlineExceededError",
    "ServiceError",
    "JobRejectedError",
    "JobStateError",
    "JournalError",
]
