"""Shared evaluation engine: the single substrate for unfairness queries.

See :mod:`repro.engine.engine` for the entry point
(:class:`EvaluationEngine`), :mod:`repro.engine.kernels` for the vectorized
distance kernels, :mod:`repro.engine.incremental` for O(k·Δ) frontier
updates, and :mod:`repro.engine.backends` for the execution backends.
"""

from repro.engine.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SequentialBackend,
    available_backends,
    get_backend,
)
from repro.engine.context import SearchContext
from repro.engine.engine import EngineStats, EvaluationEngine
from repro.engine.incremental import FullRecomputeObjective, IncrementalObjective
from repro.engine.kernels import (
    average_from_matrix,
    cross_matrix,
    full_objective,
    has_vectorized_kernel,
    pairwise_matrix,
)

__all__ = [
    "EvaluationEngine",
    "EngineStats",
    "SearchContext",
    "ExecutionBackend",
    "SequentialBackend",
    "ProcessPoolBackend",
    "available_backends",
    "get_backend",
    "IncrementalObjective",
    "FullRecomputeObjective",
    "cross_matrix",
    "pairwise_matrix",
    "average_from_matrix",
    "full_objective",
    "has_vectorized_kernel",
]
