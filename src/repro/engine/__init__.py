"""Shared evaluation engine: the single substrate for unfairness queries.

See :mod:`repro.engine.engine` for the entry point
(:class:`EvaluationEngine`), :mod:`repro.engine.kernels` for the vectorized
distance kernels, :mod:`repro.engine.incremental` for O(k·Δ) frontier
updates, :mod:`repro.engine.backends` for the execution backends,
:mod:`repro.engine.resilience` for retry/timeout/fallback hardening, and
:mod:`repro.engine.faults` for deterministic fault injection, and
:mod:`repro.engine.streaming` for O(Δ) re-audits of mutable populations.
"""

from repro.engine.backends import (
    ExecutionBackend,
    ProcessPoolBackend,
    SequentialBackend,
    ShardedBackend,
    available_backends,
    get_backend,
)
from repro.engine.context import SearchContext
from repro.engine.deadline import Deadline, StepDeadline
from repro.engine.engine import EngineStats, EvaluationEngine
from repro.engine.faults import FaultConfig, FaultInjectionBackend
from repro.engine.resilience import RetryingBackend, RetryPolicy, validate_batch
from repro.engine.incremental import FullRecomputeObjective, IncrementalObjective
from repro.engine.kernels import (
    DEFAULT_KERNEL,
    KERNEL_BACKENDS,
    available_kernel_backends,
    average_from_matrix,
    cross_matrix,
    full_objective,
    has_vectorized_kernel,
    kernel_backend_status,
    pairwise_matrix,
    resolve_kernel_backend,
)
from repro.engine.pricing import (
    RepricingReport,
    group_pmfs,
    partition_codes,
    price_repair,
)
from repro.engine.streaming import (
    MutableAtomState,
    StreamingAuditor,
    StreamingAuditReport,
    StreamingEngine,
    proxy_population,
)

__all__ = [
    "EvaluationEngine",
    "EngineStats",
    "SearchContext",
    "Deadline",
    "StepDeadline",
    "ExecutionBackend",
    "SequentialBackend",
    "ProcessPoolBackend",
    "ShardedBackend",
    "available_backends",
    "get_backend",
    "RetryPolicy",
    "RetryingBackend",
    "validate_batch",
    "FaultConfig",
    "FaultInjectionBackend",
    "IncrementalObjective",
    "FullRecomputeObjective",
    "cross_matrix",
    "pairwise_matrix",
    "average_from_matrix",
    "full_objective",
    "has_vectorized_kernel",
    "KERNEL_BACKENDS",
    "DEFAULT_KERNEL",
    "available_kernel_backends",
    "kernel_backend_status",
    "resolve_kernel_backend",
    "RepricingReport",
    "group_pmfs",
    "partition_codes",
    "price_repair",
    "MutableAtomState",
    "StreamingAuditor",
    "StreamingAuditReport",
    "StreamingEngine",
    "proxy_population",
]
