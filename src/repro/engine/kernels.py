"""Vectorized pairwise/cross distance kernels over histogram matrices.

The search algorithms spend essentially all of their time asking "how far
apart are these score histograms?".  The seed code answered that one pair at
a time through :meth:`HistogramDistance.distance` (except for the EMD
average, which has a closed-form fast path).  This module batches the
question: all candidate histograms of one greedy step are stacked into a
single ``(c, bins)`` matrix and every registered metric evaluates a whole
``(c, k)`` block of candidate-vs-frontier distances in one NumPy call.

Two entry points:

* :func:`cross_matrix` — distances between every row of ``left`` and every
  row of ``right``, shape ``(nl, nr)``.
* :func:`pairwise_matrix` — the dense symmetric ``(k, k)`` matrix for one
  stack of histograms.

Both dispatch on the metric's registry ``name`` to a vectorized kernel and
fall back to a scalar ``metric.distance`` loop for metrics without one
(e.g. the LP-based ``emd-t``), so the engine works with *every* registered
metric.  Vectorized and scalar paths agree to float round-off; the engine's
property tests pin the agreement at 1e-12.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.histogram import HistogramSpec
from repro.metrics.base import HistogramDistance

__all__ = [
    "cross_matrix",
    "pairwise_matrix",
    "has_vectorized_kernel",
    "average_from_matrix",
    "full_objective",
]


def _emd_cross(left: np.ndarray, right: np.ndarray, spec: HistogramSpec) -> np.ndarray:
    lc = np.cumsum(left, axis=1)
    rc = np.cumsum(right, axis=1)
    return spec.bin_width * np.abs(lc[:, None, :] - rc[None, :, :]).sum(axis=2)


def _ks_cross(left: np.ndarray, right: np.ndarray, spec: HistogramSpec) -> np.ndarray:
    lc = np.cumsum(left, axis=1)
    rc = np.cumsum(right, axis=1)
    return np.abs(lc[:, None, :] - rc[None, :, :]).max(axis=2)


def _tv_cross(left: np.ndarray, right: np.ndarray, spec: HistogramSpec) -> np.ndarray:
    return 0.5 * np.abs(left[:, None, :] - right[None, :, :]).sum(axis=2)


def _hellinger_cross(
    left: np.ndarray, right: np.ndarray, spec: HistogramSpec
) -> np.ndarray:
    diff = np.sqrt(left)[:, None, :] - np.sqrt(right)[None, :, :]
    return np.sqrt(0.5 * (diff**2).sum(axis=2))


def _js_cross(left: np.ndarray, right: np.ndarray, spec: HistogramSpec) -> np.ndarray:
    # sqrt(JS divergence) with base-2 logs, matching JensenShannonDistance.
    # The mixture m = (p + q) / 2 is positive wherever p or q is, so the
    # 0·log(0) = 0 convention is the only special case to handle.
    p = left[:, None, :]
    q = right[None, :, :]
    m = 0.5 * (p + q)
    with np.errstate(divide="ignore", invalid="ignore"):
        kl_p = np.where(p > 0, p * np.log2(np.where(p > 0, p / m, 1.0)), 0.0)
        kl_q = np.where(q > 0, q * np.log2(np.where(q > 0, q / m, 1.0)), 0.0)
    divergence = 0.5 * kl_p.sum(axis=2) + 0.5 * kl_q.sum(axis=2)
    return np.sqrt(np.maximum(divergence, 0.0))


_CROSS_KERNELS: dict[str, Callable[[np.ndarray, np.ndarray, HistogramSpec], np.ndarray]] = {
    "emd": _emd_cross,
    "ks": _ks_cross,
    "tv": _tv_cross,
    "hellinger": _hellinger_cross,
    "js": _js_cross,
}


def has_vectorized_kernel(metric: HistogramDistance) -> bool:
    """True when ``metric`` has a batched NumPy kernel (vs a scalar loop)."""
    return metric.name in _CROSS_KERNELS


def cross_matrix(
    metric: HistogramDistance,
    left: np.ndarray,
    right: np.ndarray,
    spec: HistogramSpec,
) -> np.ndarray:
    """``(nl, nr)`` matrix of distances between rows of ``left`` and ``right``.

    One NumPy call per metric for the registered vectorized kernels; scalar
    fallback otherwise.
    """
    left = np.atleast_2d(np.asarray(left, dtype=np.float64))
    right = np.atleast_2d(np.asarray(right, dtype=np.float64))
    if left.shape[0] == 0 or right.shape[0] == 0:
        return np.zeros((left.shape[0], right.shape[0]), dtype=np.float64)
    kernel = _CROSS_KERNELS.get(metric.name)
    if kernel is not None:
        return kernel(left, right, spec)
    # Scalar fallback (metrics without a batched kernel, e.g. the LP-based
    # emd-t): candidate stacks are full of repeated histograms — sibling
    # partitions recur across candidates — so compute each *distinct* row
    # pair once and broadcast the unique-block result back out.
    left_u, left_inv = np.unique(left, axis=0, return_inverse=True)
    right_u, right_inv = np.unique(right, axis=0, return_inverse=True)
    out_u = np.zeros((left_u.shape[0], right_u.shape[0]), dtype=np.float64)
    for i in range(left_u.shape[0]):
        for j in range(right_u.shape[0]):
            out_u[i, j] = metric.distance(left_u[i], right_u[j], spec)
    return out_u[np.ix_(left_inv, right_inv)]


def pairwise_matrix(
    metric: HistogramDistance, pmfs: np.ndarray, spec: HistogramSpec
) -> np.ndarray:
    """Dense symmetric ``(k, k)`` distance matrix for one histogram stack."""
    pmfs = np.atleast_2d(np.asarray(pmfs, dtype=np.float64))
    k = pmfs.shape[0]
    if k == 0:
        return np.zeros((0, 0), dtype=np.float64)
    kernel = _CROSS_KERNELS.get(metric.name)
    if kernel is not None:
        out = kernel(pmfs, pmfs, spec)
        # The kernels are exactly symmetric in exact arithmetic but can
        # differ in the last ulp; symmetrise so downstream sums are stable.
        np.fill_diagonal(out, 0.0)
        return 0.5 * (out + out.T)
    out = np.zeros((k, k), dtype=np.float64)
    for i in range(k):
        for j in range(i + 1, k):
            out[i, j] = out[j, i] = metric.distance(pmfs[i], pmfs[j], spec)
    return out


def average_from_matrix(
    matrix: np.ndarray, weights: np.ndarray | None = None
) -> float:
    """(Weighted) average over the unordered pairs of a symmetric distance
    matrix with a zero diagonal.

    Pair {i, j} carries weight ``weights[i] * weights[j]`` when weights are
    given (the size-weighted objective variant); returns 0.0 for fewer than
    two rows or degenerate weights.
    """
    k = matrix.shape[0]
    if k < 2:
        return 0.0
    if weights is None:
        return float(matrix.sum() / (k * (k - 1)))
    w = np.asarray(weights, dtype=np.float64)
    weight_pairs = (w.sum() ** 2 - np.dot(w, w)) / 2.0
    if weight_pairs <= 0:
        return 0.0
    total = 0.5 * float(w @ matrix @ w)
    return total / weight_pairs


def full_objective(
    metric: HistogramDistance,
    pmfs: np.ndarray,
    spec: HistogramSpec,
    weights: np.ndarray | None = None,
) -> tuple[float, int]:
    """Average pairwise distance of a histogram stack, computed from scratch.

    This is the one shared "full evaluation" code path: the sequential
    engine, the process-pool workers and the incremental objective's
    reference all call it, which is what keeps backend results
    bit-identical.  Returns ``(value, pairs_materialized)`` where the second
    element counts the individual pairwise distances actually computed —
    0 for metrics with a closed-form average (EMD's sorted-prefix-sum path
    never materialises a single pair).
    """
    pmfs = np.atleast_2d(np.asarray(pmfs, dtype=np.float64))
    k = pmfs.shape[0]
    if k < 2:
        return 0.0, 0
    overrides_average = (
        type(metric).average_pairwise is not HistogramDistance.average_pairwise
    )
    if overrides_average:
        return float(metric.average_pairwise(pmfs, spec, weights)), 0
    n_pairs = k * (k - 1) // 2
    if has_vectorized_kernel(metric):
        return average_from_matrix(pairwise_matrix(metric, pmfs, spec), weights), n_pairs
    return float(metric.average_pairwise(pmfs, spec, weights)), n_pairs
