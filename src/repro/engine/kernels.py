"""Pluggable pairwise/cross distance kernels over histogram matrices.

The search algorithms spend essentially all of their time asking "how far
apart are these score histograms?".  The seed code answered that one pair at
a time through :meth:`HistogramDistance.distance` (except for the EMD
average, which has a closed-form fast path).  This module batches the
question — all candidate histograms of one greedy step are stacked into a
single ``(c, bins)`` matrix and a whole ``(c, k)`` block of distances is
produced per call — and makes the *implementation* of that block a pluggable
**kernel backend**:

``numpy`` (default)
    The fused broadcast kernels: one vectorised NumPy expression per metric.
``scalar``
    The differential reference: a per-unique-pair Python loop over 1-D
    mirrors of the fused kernels, sharing their exact dtype and order of
    operations.  Slow, but the ground truth the parity harness compares
    every other backend against bit-for-bit.
``numba``
    Optional JIT-compiled loops (pure-Python forms of the same arithmetic,
    including a replica of NumPy's pairwise summation so reductions match
    bit-for-bit).  Gated behind ``import numba``; an activation self-check
    compares the compiled kernels against the ``numpy`` backend and refuses
    to enable a backend that is not bit-identical.

Two entry points:

* :func:`cross_matrix` — distances between every row of ``left`` and every
  row of ``right``, shape ``(nl, nr)``.
* :func:`pairwise_matrix` — the dense symmetric ``(k, k)`` matrix for one
  stack of histograms.

Both entry points hoist unique-row deduplication: candidate stacks are full
of repeated histograms (sibling partitions recur across candidates), so each
*distinct* row pair is computed once and the unique-block result broadcast
back out with ``np.ix_``.  Every output element is a pure function of its
row pair, so dedup + scatter is bit-identical to the dense computation (the
parity suite pins this with exact equality, and a counter-based regression
test pins that duplicate pairs are never rescanned).  Dedup is *applied*
only when it can pay for itself — see :data:`DEDUP_MIN_PAIRS_PER_ROW`; the
gate is a pure function of the metric and the block shape, never of the
kernel backend, so backends stay bit-identical, effort counters included.

Metrics without a registered kernel (e.g. the LP-based ``emd-t``) fall back
to a ``metric.distance`` loop over the same deduplicated pairs on every
backend, so the engine works with *every* registered metric and backends
still agree exactly.
"""

from __future__ import annotations

import math
from typing import Callable, MutableMapping

import numpy as np

from repro.core.histogram import HistogramSpec
from repro.exceptions import KernelError
from repro.metrics.base import HistogramDistance

__all__ = [
    "KERNEL_BACKENDS",
    "DEFAULT_KERNEL",
    "available_kernel_backends",
    "resolve_kernel_backend",
    "kernel_backend_status",
    "cross_matrix",
    "pairwise_matrix",
    "has_vectorized_kernel",
    "average_from_matrix",
    "full_objective",
]

#: Registered kernel backend names, in documentation order.
KERNEL_BACKENDS = ("numpy", "scalar", "numba")

#: The backend every caller gets unless asked otherwise.
DEFAULT_KERNEL = "numpy"

#: Counter keys the entry points maintain when handed a ``counters`` mapping.
#: ``pairs_evaluated`` counts distance computations actually performed
#: (unique row pairs); ``pairs_served`` counts output cells delivered; the
#: difference is the work dedup saved.
KERNEL_COUNTER_KEYS = ("invocations", "pairs_evaluated", "pairs_served")

#: Dedup profitability gate: a block is deduplicated only when it holds at
#: least this many pairs per stacked row, i.e. ``l*r >= 64*(l + r)``.  The
#: unique sort costs ~one row comparison per stacked row while the fused
#: kernels cost ~one cheap vectorised cell per pair, so on skinny blocks
#: (one updated pmf against a large frontier, a handful of candidate
#: splits) the sort dwarfs the arithmetic it would save — measured on a
#: ``(1, 10) x (1800, 10)`` EMD cross, ``np.unique`` alone costs ~8x the
#: whole fused block.  Metrics without a vectorized kernel ignore the gate
#: and always dedup: their unit of work is a per-pair Python call (an LP
#: solve for ``emd-t``) that dwarfs the sort at any size.  The gate reads
#: only the metric and the shapes — never the kernel backend — so all
#: backends take the same branch and stay bit-identical, counters included.
DEDUP_MIN_PAIRS_PER_ROW = 64


# --------------------------------------------------------------------------
# numpy backend: fused broadcast kernels (one vectorised call per metric)
# --------------------------------------------------------------------------


def _emd_cross(left: np.ndarray, right: np.ndarray, spec: HistogramSpec) -> np.ndarray:
    lc = np.cumsum(left, axis=1)
    rc = np.cumsum(right, axis=1)
    return spec.bin_width * np.abs(lc[:, None, :] - rc[None, :, :]).sum(axis=2)


def _ks_cross(left: np.ndarray, right: np.ndarray, spec: HistogramSpec) -> np.ndarray:
    lc = np.cumsum(left, axis=1)
    rc = np.cumsum(right, axis=1)
    return np.abs(lc[:, None, :] - rc[None, :, :]).max(axis=2)


def _tv_cross(left: np.ndarray, right: np.ndarray, spec: HistogramSpec) -> np.ndarray:
    return 0.5 * np.abs(left[:, None, :] - right[None, :, :]).sum(axis=2)


def _hellinger_cross(
    left: np.ndarray, right: np.ndarray, spec: HistogramSpec
) -> np.ndarray:
    diff = np.sqrt(left)[:, None, :] - np.sqrt(right)[None, :, :]
    return np.sqrt(0.5 * (diff**2).sum(axis=2))


def _js_cross(left: np.ndarray, right: np.ndarray, spec: HistogramSpec) -> np.ndarray:
    # sqrt(JS divergence) with base-2 logs, matching JensenShannonDistance.
    # The mixture m = (p + q) / 2 is positive wherever p or q is, so the
    # 0·log(0) = 0 convention is the only special case to handle.
    p = left[:, None, :]
    q = right[None, :, :]
    m = 0.5 * (p + q)
    with np.errstate(divide="ignore", invalid="ignore"):
        kl_p = np.where(p > 0, p * np.log2(np.where(p > 0, p / m, 1.0)), 0.0)
        kl_q = np.where(q > 0, q * np.log2(np.where(q > 0, q / m, 1.0)), 0.0)
    divergence = 0.5 * kl_p.sum(axis=2) + 0.5 * kl_q.sum(axis=2)
    return np.sqrt(np.maximum(divergence, 0.0))


_CROSS_KERNELS: dict[str, Callable[[np.ndarray, np.ndarray, HistogramSpec], np.ndarray]] = {
    "emd": _emd_cross,
    "ks": _ks_cross,
    "tv": _tv_cross,
    "hellinger": _hellinger_cross,
    "js": _js_cross,
}


# --------------------------------------------------------------------------
# scalar backend: 1-D mirrors of the fused kernels (the parity reference)
# --------------------------------------------------------------------------
#
# These are NOT the metrics' public ``distance`` implementations: e.g.
# ``emd()`` computes ``cumsum(p - q)`` while the fused kernel computes
# ``cumsum(p) - cumsum(q)``, which can differ in the last ulp.  The parity
# contract is against the *kernel* arithmetic, so the reference mirrors the
# fused expressions element-for-element on one pair at a time.


def _emd_ref(p: np.ndarray, q: np.ndarray, spec: HistogramSpec) -> float:
    return float(spec.bin_width * np.abs(np.cumsum(p) - np.cumsum(q)).sum())


def _ks_ref(p: np.ndarray, q: np.ndarray, spec: HistogramSpec) -> float:
    return float(np.abs(np.cumsum(p) - np.cumsum(q)).max())


def _tv_ref(p: np.ndarray, q: np.ndarray, spec: HistogramSpec) -> float:
    return float(0.5 * np.abs(p - q).sum())


def _hellinger_ref(p: np.ndarray, q: np.ndarray, spec: HistogramSpec) -> float:
    diff = np.sqrt(p) - np.sqrt(q)
    return float(np.sqrt(0.5 * (diff**2).sum()))


def _js_ref(p: np.ndarray, q: np.ndarray, spec: HistogramSpec) -> float:
    m = 0.5 * (p + q)
    with np.errstate(divide="ignore", invalid="ignore"):
        kl_p = np.where(p > 0, p * np.log2(np.where(p > 0, p / m, 1.0)), 0.0)
        kl_q = np.where(q > 0, q * np.log2(np.where(q > 0, q / m, 1.0)), 0.0)
    divergence = 0.5 * kl_p.sum() + 0.5 * kl_q.sum()
    return float(np.sqrt(np.maximum(divergence, 0.0)))


_REF_KERNELS: dict[str, Callable[[np.ndarray, np.ndarray, HistogramSpec], float]] = {
    "emd": _emd_ref,
    "ks": _ks_ref,
    "tv": _tv_ref,
    "hellinger": _hellinger_ref,
    "js": _js_ref,
}


# --------------------------------------------------------------------------
# numba backend: JIT-able pure-Python loops (bit-identical by construction)
# --------------------------------------------------------------------------
#
# NumPy reduces ``.sum(axis=-1)`` with *pairwise summation*, not a naive
# left-to-right loop, and the two disagree in the last ulp from ~100
# elements.  The loop kernels therefore replicate NumPy's pairwise algorithm
# (8-way unrolled 128-element blocks, recursive halving to a multiple of 8)
# so their reductions are bit-identical to the fused kernels.  The functions
# below are plain Python — importable and testable without numba — and are
# fed to ``numba.njit`` only when the optional dependency is present.

_PW_BLOCKSIZE = 128


def _pairwise_sum(a: np.ndarray, lo: int, n: int) -> float:
    if n < 8:
        res = 0.0
        for i in range(n):
            res += a[lo + i]
        return res
    if n <= _PW_BLOCKSIZE:
        r0 = a[lo]
        r1 = a[lo + 1]
        r2 = a[lo + 2]
        r3 = a[lo + 3]
        r4 = a[lo + 4]
        r5 = a[lo + 5]
        r6 = a[lo + 6]
        r7 = a[lo + 7]
        i = 8
        while i < n - (n % 8):
            r0 += a[lo + i]
            r1 += a[lo + i + 1]
            r2 += a[lo + i + 2]
            r3 += a[lo + i + 3]
            r4 += a[lo + i + 4]
            r5 += a[lo + i + 5]
            r6 += a[lo + i + 6]
            r7 += a[lo + i + 7]
            i += 8
        res = ((r0 + r1) + (r2 + r3)) + ((r4 + r5) + (r6 + r7))
        while i < n:
            res += a[lo + i]
            i += 1
        return res
    n2 = n // 2
    n2 -= n2 % 8
    return _pairwise_sum(a, lo, n2) + _pairwise_sum(a, lo + n2, n - n2)


def _row_cumsum(block: np.ndarray) -> np.ndarray:
    out = np.empty_like(block)
    rows, bins = block.shape
    for i in range(rows):
        acc = 0.0
        for k in range(bins):
            acc += block[i, k]
            out[i, k] = acc
    return out


# Each loop kernel closes over its helpers so the numba path can rebuild the
# same closures around *jitted* helpers without touching module globals (the
# pure-Python forms below stay importable and testable with or without
# numba installed).


def _make_emd_block(pairwise_sum, row_cumsum):
    def _emd_block(left, right, bin_width):
        lc = row_cumsum(left)
        rc = row_cumsum(right)
        nl, bins = left.shape
        nr = right.shape[0]
        out = np.empty((nl, nr), dtype=np.float64)
        tmp = np.empty(bins, dtype=np.float64)
        for i in range(nl):
            for j in range(nr):
                for k in range(bins):
                    tmp[k] = abs(lc[i, k] - rc[j, k])
                out[i, j] = bin_width * pairwise_sum(tmp, 0, bins)
        return out

    return _emd_block


def _make_ks_block(pairwise_sum, row_cumsum):
    def _ks_block(left, right, bin_width):
        lc = row_cumsum(left)
        rc = row_cumsum(right)
        nl, bins = left.shape
        nr = right.shape[0]
        out = np.empty((nl, nr), dtype=np.float64)
        for i in range(nl):
            for j in range(nr):
                best = abs(lc[i, 0] - rc[j, 0])
                for k in range(1, bins):
                    d = abs(lc[i, k] - rc[j, k])
                    if d > best:
                        best = d
                out[i, j] = best
        return out

    return _ks_block


def _make_tv_block(pairwise_sum, row_cumsum):
    def _tv_block(left, right, bin_width):
        nl, bins = left.shape
        nr = right.shape[0]
        out = np.empty((nl, nr), dtype=np.float64)
        tmp = np.empty(bins, dtype=np.float64)
        for i in range(nl):
            for j in range(nr):
                for k in range(bins):
                    tmp[k] = abs(left[i, k] - right[j, k])
                out[i, j] = 0.5 * pairwise_sum(tmp, 0, bins)
        return out

    return _tv_block


def _make_hellinger_block(pairwise_sum, row_cumsum):
    def _hellinger_block(left, right, bin_width):
        nl, bins = left.shape
        nr = right.shape[0]
        sl = np.empty_like(left)
        sr = np.empty_like(right)
        for i in range(nl):
            for k in range(bins):
                sl[i, k] = math.sqrt(left[i, k])
        for j in range(nr):
            for k in range(bins):
                sr[j, k] = math.sqrt(right[j, k])
        out = np.empty((nl, nr), dtype=np.float64)
        tmp = np.empty(bins, dtype=np.float64)
        for i in range(nl):
            for j in range(nr):
                for k in range(bins):
                    d = sl[i, k] - sr[j, k]
                    tmp[k] = d * d
                out[i, j] = math.sqrt(0.5 * pairwise_sum(tmp, 0, bins))
        return out

    return _hellinger_block


def _make_js_block(pairwise_sum, row_cumsum):
    def _js_block(left, right, bin_width):
        nl, bins = left.shape
        nr = right.shape[0]
        out = np.empty((nl, nr), dtype=np.float64)
        kl_p = np.empty(bins, dtype=np.float64)
        kl_q = np.empty(bins, dtype=np.float64)
        for i in range(nl):
            for j in range(nr):
                for k in range(bins):
                    p = left[i, k]
                    q = right[j, k]
                    m = 0.5 * (p + q)
                    kl_p[k] = p * math.log2(p / m) if p > 0 else 0.0
                    kl_q[k] = q * math.log2(q / m) if q > 0 else 0.0
                divergence = 0.5 * pairwise_sum(kl_p, 0, bins) + 0.5 * pairwise_sum(
                    kl_q, 0, bins
                )
                if not divergence > 0.0:
                    divergence = 0.0
                out[i, j] = math.sqrt(divergence)
        return out

    return _js_block


_BLOCK_FACTORIES = {
    "emd": _make_emd_block,
    "ks": _make_ks_block,
    "tv": _make_tv_block,
    "hellinger": _make_hellinger_block,
    "js": _make_js_block,
}

#: The pure-Python loop kernels (testable without numba installed).
_PY_BLOCK_KERNELS: dict[str, Callable[[np.ndarray, np.ndarray, float], np.ndarray]] = {
    name: factory(_pairwise_sum, _row_cumsum)
    for name, factory in _BLOCK_FACTORIES.items()
}

#: Lazy numba activation state: ``None`` = not yet attempted, otherwise a
#: dict with ``available`` / ``reason`` / ``kernels``.
_NUMBA_STATE: "dict | None" = None


def _self_check_blocks(
    kernels: "dict[str, Callable[[np.ndarray, np.ndarray, float], np.ndarray]]",
) -> "list[str]":
    """Metric names whose block kernel is NOT bit-identical to numpy's.

    Deterministic seeded probe covering several bin counts (crossing the
    pairwise-summation block boundaries) plus degenerate shapes.
    """
    spec = HistogramSpec(bins=10)
    failures: list[str] = []
    rng = np.random.default_rng(20260809)
    cases = []
    for bins in (1, 3, 10, 100, 250):
        left = rng.random((4, bins))
        left /= left.sum(axis=1, keepdims=True)
        right = rng.random((3, bins))
        right /= right.sum(axis=1, keepdims=True)
        cases.append((left, right))
    one_hot = np.zeros((2, 10))
    one_hot[0, 0] = 1.0
    one_hot[1, 9] = 1.0
    cases.append((one_hot, one_hot.copy()))
    for name, kernel in kernels.items():
        reference = _CROSS_KERNELS[name]
        for left, right in cases:
            expected = reference(left, right, spec)
            got = kernel(left, right, spec.bin_width)
            if not np.array_equal(expected, got):
                failures.append(name)
                break
    return failures


def _numba_state() -> dict:
    """Probe-and-cache the optional numba backend (import + self-check)."""
    global _NUMBA_STATE
    if _NUMBA_STATE is not None:
        return _NUMBA_STATE
    try:
        import numba
    except ImportError:
        _NUMBA_STATE = {
            "available": False,
            "reason": "numba is not installed",
            "kernels": None,
        }
        return _NUMBA_STATE
    try:
        pairwise = numba.njit(cache=False)(_pairwise_sum)
        row_cumsum = numba.njit(cache=False)(_row_cumsum)
        compiled = {
            name: numba.njit(cache=False)(factory(pairwise, row_cumsum))
            for name, factory in _BLOCK_FACTORIES.items()
        }
        failures = _self_check_blocks(compiled)
    except Exception as exc:  # pragma: no cover - depends on optional dep
        _NUMBA_STATE = {
            "available": False,
            "reason": f"numba activation failed: {exc!r}",
            "kernels": None,
        }
        return _NUMBA_STATE
    if failures:
        _NUMBA_STATE = {
            "available": False,
            "reason": (
                "numba self-check failed (not bit-identical to numpy) for: "
                + ", ".join(sorted(failures))
            ),
            "kernels": None,
        }
    else:
        _NUMBA_STATE = {"available": True, "reason": "", "kernels": compiled}
    return _NUMBA_STATE


# --------------------------------------------------------------------------
# backend registry and resolution
# --------------------------------------------------------------------------


def available_kernel_backends() -> tuple[str, ...]:
    """Kernel backends that can actually run in this environment."""
    names = ["numpy", "scalar"]
    if _numba_state()["available"]:
        names.append("numba")
    return tuple(names)


def kernel_backend_status() -> dict:
    """Diagnostic map for CLI/CI notices (why numba is or is not active)."""
    state = _numba_state()
    return {
        "registered": KERNEL_BACKENDS,
        "available": available_kernel_backends(),
        "numba": {"available": state["available"], "reason": state["reason"]},
    }


def resolve_kernel_backend(kernel: "str | None") -> str:
    """Validate a kernel backend name (``None`` → the default).

    Raises :class:`~repro.exceptions.KernelError` for unknown names and for
    the numba backend when the dependency is missing or its bit-identity
    self-check failed.
    """
    if kernel is None:
        return DEFAULT_KERNEL
    if kernel not in KERNEL_BACKENDS:
        raise KernelError(
            f"unknown kernel backend {kernel!r}; registered: {KERNEL_BACKENDS}"
        )
    if kernel == "numba":
        state = _numba_state()
        if not state["available"]:
            raise KernelError(f"kernel backend 'numba' unavailable: {state['reason']}")
    return kernel


def has_vectorized_kernel(metric: HistogramDistance) -> bool:
    """True when ``metric`` has a batched kernel (vs a ``distance`` loop)."""
    return metric.name in _CROSS_KERNELS


def _bump(
    counters: "MutableMapping[str, int] | None", key: str, amount: int
) -> None:
    if counters is not None and amount:
        counters[key] = counters.get(key, 0) + amount


# --------------------------------------------------------------------------
# entry points
# --------------------------------------------------------------------------


def _unique_rows(block: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    unique, inverse = np.unique(block, axis=0, return_inverse=True)
    return unique, np.asarray(inverse).reshape(-1)


def _should_dedup(metric: HistogramDistance, n_left: int, n_right: int) -> bool:
    """Whether the unique-row sort is worth its cost for this block (see
    :data:`DEDUP_MIN_PAIRS_PER_ROW`); pure in (metric, shapes) so every
    kernel backend takes the same branch."""
    if metric.name not in _CROSS_KERNELS:
        return True
    return n_left * n_right >= DEDUP_MIN_PAIRS_PER_ROW * (n_left + n_right)


def _cross_block(
    metric: HistogramDistance,
    left_u: np.ndarray,
    right_u: np.ndarray,
    spec: HistogramSpec,
    kernel: str,
) -> "np.ndarray | None":
    """Distance block over *unique* rows, or ``None`` for loop-fallback metrics."""
    if metric.name not in _CROSS_KERNELS:
        return None
    if kernel == "numpy":
        return _CROSS_KERNELS[metric.name](left_u, right_u, spec)
    if kernel == "scalar":
        ref = _REF_KERNELS[metric.name]
        out = np.empty((left_u.shape[0], right_u.shape[0]), dtype=np.float64)
        for i in range(left_u.shape[0]):
            for j in range(right_u.shape[0]):
                out[i, j] = ref(left_u[i], right_u[j], spec)
        return out
    if kernel == "numba":
        state = _numba_state()
        if not state["available"]:
            raise KernelError(f"kernel backend 'numba' unavailable: {state['reason']}")
        return state["kernels"][metric.name](
            np.ascontiguousarray(left_u), np.ascontiguousarray(right_u), spec.bin_width
        )
    raise KernelError(
        f"unknown kernel backend {kernel!r}; registered: {KERNEL_BACKENDS}"
    )


def cross_matrix(
    metric: HistogramDistance,
    left: np.ndarray,
    right: np.ndarray,
    spec: HistogramSpec,
    *,
    kernel: str = DEFAULT_KERNEL,
    counters: "MutableMapping[str, int] | None" = None,
) -> np.ndarray:
    """``(nl, nr)`` matrix of distances between rows of ``left`` and ``right``.

    Dedups unique rows up front (on every backend — the hoisted form of the
    old scalar-fallback dedup) when the block is large enough to repay the
    sort (:func:`_should_dedup`), computes the unique block with the
    selected kernel backend, and scatters the block back out.
    """
    left = np.atleast_2d(np.asarray(left, dtype=np.float64))
    right = np.atleast_2d(np.asarray(right, dtype=np.float64))
    if left.shape[0] == 0 or right.shape[0] == 0:
        return np.zeros((left.shape[0], right.shape[0]), dtype=np.float64)
    _bump(counters, "invocations", 1)
    _bump(counters, "pairs_served", left.shape[0] * right.shape[0])
    dedup = _should_dedup(metric, left.shape[0], right.shape[0])
    left_u, left_inv = _unique_rows(left) if dedup else (left, None)
    right_u, right_inv = _unique_rows(right) if dedup else (right, None)
    out_u = _cross_block(metric, left_u, right_u, spec, kernel)
    if out_u is None:
        # Metrics without a batched kernel (e.g. the LP-based emd-t): one
        # metric.distance call per distinct row pair, identical on every
        # backend.  (``_should_dedup`` always dedups these, so the loop
        # only ever runs over unique rows.)
        out_u = np.zeros((left_u.shape[0], right_u.shape[0]), dtype=np.float64)
        for i in range(left_u.shape[0]):
            for j in range(right_u.shape[0]):
                out_u[i, j] = metric.distance(left_u[i], right_u[j], spec)
    _bump(counters, "pairs_evaluated", left_u.shape[0] * right_u.shape[0])
    if not dedup:
        return out_u
    return out_u[np.ix_(left_inv, right_inv)]


def pairwise_matrix(
    metric: HistogramDistance,
    pmfs: np.ndarray,
    spec: HistogramSpec,
    *,
    kernel: str = DEFAULT_KERNEL,
    counters: "MutableMapping[str, int] | None" = None,
) -> np.ndarray:
    """Dense symmetric ``(k, k)`` distance matrix for one histogram stack.

    Like :func:`cross_matrix`, dedups unique rows before computing (when
    the stack is large enough to repay the sort): the old scalar path
    rescanned duplicate atom pairs once per occurrence, which is exactly
    the PR-4 inefficiency the hoisted dedup removes (pinned by a
    counter-based regression test in ``tests/parity``).
    """
    pmfs = np.atleast_2d(np.asarray(pmfs, dtype=np.float64))
    k = pmfs.shape[0]
    if k == 0:
        return np.zeros((0, 0), dtype=np.float64)
    _bump(counters, "invocations", 1)
    _bump(counters, "pairs_served", k * k)
    dedup = _should_dedup(metric, k, k)
    unique, inverse = _unique_rows(pmfs) if dedup else (pmfs, None)
    u = unique.shape[0]
    out_u = _cross_block(metric, unique, unique, spec, kernel)
    if out_u is not None:
        _bump(counters, "pairs_evaluated", u * u)
        # The kernels are exactly symmetric in exact arithmetic but can
        # differ in the last ulp; symmetrise so downstream sums are stable.
        # (Scatter of the symmetrised unique block == symmetrisation of the
        # scattered dense matrix, elementwise.)
        np.fill_diagonal(out_u, 0.0)
        out_u = 0.5 * (out_u + out_u.T)
        if not dedup:
            return out_u
        return out_u[np.ix_(inverse, inverse)]
    counts = np.bincount(inverse, minlength=u)
    out_u = np.zeros((u, u), dtype=np.float64)
    evaluated = 0
    for i in range(u):
        # A unique row that occurs more than once pairs with itself in the
        # dense matrix (off-diagonal duplicate cells), so its self-distance
        # is needed; singleton rows only hit the (zeroed) diagonal.
        if counts[i] > 1:
            out_u[i, i] = metric.distance(unique[i], unique[i], spec)
            evaluated += 1
        for j in range(i + 1, u):
            out_u[i, j] = out_u[j, i] = metric.distance(unique[i], unique[j], spec)
            evaluated += 1
    _bump(counters, "pairs_evaluated", evaluated)
    out = out_u[np.ix_(inverse, inverse)]
    np.fill_diagonal(out, 0.0)
    return out


def average_from_matrix(
    matrix: np.ndarray, weights: np.ndarray | None = None
) -> float:
    """(Weighted) average over the unordered pairs of a symmetric distance
    matrix with a zero diagonal.

    Pair {i, j} carries weight ``weights[i] * weights[j]`` when weights are
    given (the size-weighted objective variant); returns 0.0 for fewer than
    two rows or degenerate weights.
    """
    k = matrix.shape[0]
    if k < 2:
        return 0.0
    if weights is None:
        return float(matrix.sum() / (k * (k - 1)))
    w = np.asarray(weights, dtype=np.float64)
    weight_pairs = (w.sum() ** 2 - np.dot(w, w)) / 2.0
    if weight_pairs <= 0:
        return 0.0
    total = 0.5 * float(w @ matrix @ w)
    return total / weight_pairs


def full_objective(
    metric: HistogramDistance,
    pmfs: np.ndarray,
    spec: HistogramSpec,
    weights: np.ndarray | None = None,
    *,
    kernel: str = DEFAULT_KERNEL,
    counters: "MutableMapping[str, int] | None" = None,
) -> tuple[float, int]:
    """Average pairwise distance of a histogram stack, computed from scratch.

    This is the one shared "full evaluation" code path: the sequential
    engine, the process-pool workers and the incremental objective's
    reference all call it, which is what keeps backend results
    bit-identical.  Returns ``(value, pairs_materialized)`` where the second
    element counts the individual pairwise distances actually computed —
    0 for metrics with a closed-form average (EMD's sorted-prefix-sum path
    never materialises a single pair).

    Closed-form ``average_pairwise`` overrides are preferred on *every*
    kernel backend, so the algorithm-level objective stays bit-identical
    across backends by construction (the kernels only decide how the dense
    matrices, cross blocks, and override-less averages are produced).
    """
    pmfs = np.atleast_2d(np.asarray(pmfs, dtype=np.float64))
    k = pmfs.shape[0]
    if k < 2:
        return 0.0, 0
    overrides_average = (
        type(metric).average_pairwise is not HistogramDistance.average_pairwise
    )
    if overrides_average:
        return float(metric.average_pairwise(pmfs, spec, weights)), 0
    n_pairs = k * (k - 1) // 2
    if has_vectorized_kernel(metric):
        matrix = pairwise_matrix(metric, pmfs, spec, kernel=kernel, counters=counters)
        return average_from_matrix(matrix, weights), n_pairs
    return float(metric.average_pairwise(pmfs, spec, weights)), n_pairs
