"""Cooperative deadlines for search loops and service jobs.

A :class:`Deadline` is a monotonic-clock budget that search algorithms poll
at iteration boundaries (via ``SearchContext.should_stop``) so a run past
its budget stops at the *next* boundary and returns a flagged partial
result instead of hanging its worker thread.  Polling — rather than
preemption — keeps the guarantee the rest of the engine is built on: the
work done before the cutoff is bit-identical to the same-iteration prefix
of an unbounded run, because the deadline never changes *what* an iteration
computes, only whether the next one starts.

:class:`StepDeadline` expires after a fixed number of polls instead of a
wall-clock duration.  It exists for determinism: tests (and the service
smoke drill) can cut a search at an exact iteration boundary and compare
the partial result against a reference prefix, independent of machine
speed.
"""

from __future__ import annotations

import time
from typing import Callable

from repro.exceptions import DeadlineExceededError

__all__ = ["Deadline", "StepDeadline"]


class Deadline:
    """A wall-clock compute budget, polled cooperatively.

    Parameters
    ----------
    seconds:
        Budget from *now* (monotonic).  Must be positive and finite.
    clock:
        Injectable time source for tests (defaults to
        :func:`time.monotonic`).
    """

    def __init__(
        self, seconds: float, clock: Callable[[], float] = time.monotonic
    ) -> None:
        seconds = float(seconds)
        if not seconds > 0:
            raise ValueError(f"deadline seconds must be > 0, got {seconds}")
        self.seconds = seconds
        self._clock = clock
        self._expires_at = clock() + seconds

    def expired(self) -> bool:
        """True once the budget is spent (monotone: never flips back)."""
        return self._clock() >= self._expires_at

    def remaining(self) -> float:
        """Seconds left, clamped at 0."""
        return max(0.0, self._expires_at - self._clock())

    def raise_if_expired(self) -> None:
        """Hard-failure variant: raise :class:`DeadlineExceededError`."""
        if self.expired():
            raise DeadlineExceededError(self)

    def __repr__(self) -> str:
        return f"Deadline(seconds={self.seconds}, remaining={self.remaining():.3f})"


class StepDeadline:
    """A deadline that expires after ``max_checks`` ``expired()`` polls.

    Search loops poll exactly once per iteration boundary, so
    ``StepDeadline(n)`` lets the first ``n - 1`` boundaries proceed and
    stops the search at the ``n``-th — the same cut on every machine, which
    is what the partial-result prefix tests pin down.
    """

    def __init__(self, max_checks: int) -> None:
        if max_checks < 1:
            raise ValueError(f"max_checks must be >= 1, got {max_checks}")
        self.max_checks = max_checks
        self.checks = 0

    def expired(self) -> bool:
        self.checks += 1
        return self.checks >= self.max_checks

    def remaining(self) -> float:
        return float(max(0, self.max_checks - self.checks))

    def raise_if_expired(self) -> None:
        if self.expired():
            raise DeadlineExceededError(self)

    def __repr__(self) -> str:
        return f"StepDeadline({self.checks}/{self.max_checks})"
