"""O(Δ) re-auditing of mutable populations.

The batch stack pays O(n) at three places per audit: digitising scores,
building the :class:`~repro.engine.atoms.AtomTable`, and materialising
member-index arrays while splitting.  For a streaming audit over a
population absorbing small delta batches, all three are avoidable — the
objective is a function of the per-atom score histograms alone, and a
mutation touches exactly one atom.

Three pieces make the audit O(atoms) end to end:

* :class:`MutableAtomState` — the atom count cube as a ``key → histogram``
  dict, patched in O(1) per mutation and materialised (sorted, dense) into
  an :class:`AtomTable` only when dirty.  A table materialised after any
  mutation history is **bit-identical** to one built from scratch on the
  final population: same integer counts, same ascending-key atom order.
* The **atom proxy**: the search runs on a synthetic population with one
  row per atom (raw values decoded from the atom's codes), so *member*
  arrays inside the algorithms are atom-row arrays.  Every partition the
  search forms over the proxy has indices that are exactly its atom rows.
* :class:`StreamingEngine` — an :class:`EvaluationEngine` over the proxy
  whose histogram arithmetic divides by **true member sizes** from the
  table.  Because the batch engine's objective values are pure functions
  of (integer histogram, integer size) pairs and both paths produce the
  same integers, every float the search compares is the same IEEE value —
  greedy decisions, and hence final partitionings, match the batch audit
  exactly.  The engine persists across re-audits: its content-addressed
  value cache is keyed on histogram bytes, so a mutation batch only
  invalidates the entries whose histograms actually changed (untouched
  keys keep hitting), and its process-pool backend republishes the
  shared-memory cube only when the atom version moved.

:class:`StreamingAuditor` ties it together: sync mutations from a
:class:`~repro.marketplace.streaming.MutablePopulation`, re-run the
configured algorithm on the proxy, and (between full audits) re-score the
*previous* partitioning against the moved population in O(Δ·k) via
:meth:`IncrementalObjective.update_pmf`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.attributes import CategoricalAttribute
from repro.core.population import Population
from repro.engine.atoms import AtomTable, encode_codes, protected_cards
from repro.engine.engine import EngineStats, EvaluationEngine
from repro.exceptions import MutationError, PartitioningError

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily: marketplace.streaming pulls in the io/simulation
    # stack, which would close an import cycle back to core.algorithms.
    from repro.core.partition import Partition
    from repro.marketplace.streaming import AppliedMutation, MutablePopulation

__all__ = [
    "MutableAtomState",
    "StreamingEngine",
    "StreamingAuditor",
    "StreamingAuditReport",
    "proxy_population",
]


class MutableAtomState:
    """Incrementally maintained atom count cube.

    ``_counts`` maps the mixed-radix atom key to its ``(bins,)`` int64
    score histogram; a mutation patches one cell of one row.  Zero rows
    are dropped eagerly so materialisation only ever sees non-empty atoms
    (matching :meth:`AtomTable.build`, which can't see empty cells).
    """

    def __init__(
        self,
        attribute_names: "tuple[str, ...]",
        cards: "tuple[int, ...]",
        bins: int,
    ) -> None:
        self.attribute_names = attribute_names
        self.cards = cards
        self.bins = int(bins)
        self._counts: dict[int, np.ndarray] = {}
        self.version = 0
        self._table: "AtomTable | None" = None
        self._table_version = -1

    @classmethod
    def from_store(cls, store: MutablePopulation) -> "MutableAtomState":
        """Bulk-build from a mutable population's current state (one O(n) pass)."""
        names, cards = protected_cards(store.schema)
        state = cls(names, cards, store.hist_spec.bins)
        code_matrix = store.partition_code_matrix()
        bin_idx = store.bin_column()
        n = code_matrix.shape[0]
        if n:
            key = code_matrix[:, 0].astype(np.int64, copy=True)
            for j in range(1, len(cards)):
                key = key * cards[j] + code_matrix[:, j]
            unique_keys, inverse = np.unique(key, return_inverse=True)
            counts = np.bincount(
                inverse.astype(np.int64) * state.bins + bin_idx,
                minlength=unique_keys.shape[0] * state.bins,
            ).reshape(unique_keys.shape[0], state.bins)
            state._counts = {
                int(k): counts[i].astype(np.int64, copy=True)
                for i, k in enumerate(unique_keys)
            }
        state.version = store.version
        return state

    # -------------------------------------------------------------- mutation

    def apply(self, applied: AppliedMutation) -> None:
        """Patch the cube for one applied mutation (O(affected atoms) = O(1))."""
        key = encode_codes(applied.codes, self.cards)
        if applied.kind == "add":
            row = self._counts.get(key)
            if row is None:
                row = np.zeros(self.bins, dtype=np.int64)
                self._counts[key] = row
            row[applied.bin] += 1
        elif applied.kind == "remove":
            self._decrement(key, applied.bin)
        elif applied.kind == "update_score":
            if applied.old_bin is None:
                raise MutationError("update_score delta is missing its old bin")
            if applied.old_bin != applied.bin:
                row = self._require(key, applied.old_bin)
                row[applied.old_bin] -= 1
                row[applied.bin] += 1
        else:  # pragma: no cover - Mutation validates kinds
            raise MutationError(f"unknown mutation kind {applied.kind!r}")
        self.version += 1

    def _require(self, key: int, bin_: int) -> np.ndarray:
        row = self._counts.get(key)
        if row is None or row[bin_] <= 0:
            raise MutationError(
                "atom count underflow: the mutation log is inconsistent with "
                "the atom state (was the state rebuilt from a different version?)"
            )
        return row

    def _decrement(self, key: int, bin_: int) -> None:
        row = self._require(key, bin_)
        row[bin_] -= 1
        if not row.any():
            del self._counts[key]

    # ---------------------------------------------------------- materialise

    @property
    def n_atoms(self) -> int:
        return len(self._counts)

    def materialize(self) -> AtomTable:
        """Dense, sorted :class:`AtomTable` of the current counts (cached
        until the next mutation).  Bit-identical to ``AtomTable.build`` on
        the equivalent frozen population."""
        if self._table is None or self._table_version != self.version:
            keys = np.fromiter(sorted(self._counts), dtype=np.int64, count=len(self._counts))
            counts = (
                np.stack([self._counts[int(k)] for k in keys])
                if keys.size
                else np.zeros((0, self.bins), dtype=np.int64)
            )
            self._table = AtomTable.from_key_counts(
                self.attribute_names, self.cards, keys, counts
            )
            self._table_version = self.version
        return self._table

    def fingerprint(self) -> str:
        """Content fingerprint of the current atom state (the materialised
        table's digest).  Mutations that change any count change it; two
        states reached through different mutation orders but holding the
        same counts share it — the content-addressing property the
        cross-job cache relies on."""
        return self.materialize().fingerprint()


def proxy_population(schema, table: AtomTable) -> Population:
    """One synthetic worker per atom, carrying that atom's code tuple.

    Raw values are chosen so each proxy row's partition codes equal the
    atom's codes: categorical attributes take the code itself, integer
    attributes take the smallest integer of the code's bucket
    (``ceil(bucket_edges[code])`` — the inverse the bucketiser maps back).
    Observed columns are filler (the search never reads them).
    """
    protected = {}
    for j, name in enumerate(table.attribute_names):
        attr = schema.protected_attribute(name)
        codes = table.codes[:, j]
        if isinstance(attr, CategoricalAttribute):
            protected[name] = codes.copy()
        else:
            protected[name] = np.ceil(attr.bucket_edges[codes]).astype(np.int64)
    observed = {
        attr.name: np.full(table.n_atoms, attr.low, dtype=np.float64)
        for attr in schema.observed
    }
    return Population(schema, protected, observed)


class StreamingEngine(EvaluationEngine):
    """Engine over the atom proxy, arithmetically identical to the batch path.

    Overrides make three substitutions: partition indices *are* atom rows
    (no constraint resolution), pmf denominators and objective weights are
    **true member sizes** from the table, and ``close()`` keeps the backend
    alive so one engine serves every re-audit of a monitored population
    (call :meth:`shutdown` to actually release it).
    """

    def __init__(self, population, scores, *, table: AtomTable, **kwargs) -> None:
        if kwargs.get("mode", "incremental") == "full":
            raise PartitioningError(
                "StreamingEngine requires mode='incremental' (the full-recompute "
                "baseline measures the member-array cost model)"
            )
        kwargs["use_atoms"] = True
        super().__init__(population, scores, **kwargs)
        self._atom_table = table
        self.metrics.set_gauge("engine.atoms", table.n_atoms)

    # ------------------------------------------------------------- overrides

    def atom_rows(self, partition: "Partition") -> np.ndarray:
        """In the proxy, a partition's member indices are its atom rows."""
        return partition.indices

    def true_size(self, partition: "Partition") -> int:
        """True member count of a proxy partition (sum of its atoms' sizes)."""
        return int(self._atom_table.sizes[partition.indices].sum())

    def pmf(self, partition: "Partition") -> np.ndarray:
        cached = self._pmf_cache.get(partition)
        if cached is None:
            table = self._atom_table
            rows = partition.indices
            counts = table.counts[rows].sum(axis=0)
            cached = counts / int(table.sizes[rows].sum())
            cached.setflags(write=False)
            self._pmf_cache[partition] = cached
        return cached

    def partition_weights(self, partitions) -> "np.ndarray | None":
        if self.weighting != "size":
            return None
        return np.array([self.true_size(p) for p in partitions], dtype=np.float64)

    def _cache_key(self, partitions) -> tuple:
        if self.weighting == "size":
            return tuple(
                sorted((self.pmf(p).tobytes(), self.true_size(p)) for p in partitions)
            )
        return tuple(sorted(self.pmf(p).tobytes() for p in partitions))

    # ------------------------------------------------------------- lifecycle

    def rebind(self, population, scores, table: AtomTable) -> None:
        """Swap in the post-mutation proxy and table; keep what's still valid.

        Partition-object-keyed caches go (their Partition objects belong to
        the previous audit's proxy); the content-addressed value cache
        stays — an entry whose histograms did not change keeps hitting, so
        only touched cache keys miss.  ``atom_version`` bumps only when the
        table actually changed: that is what tells the process backend the
        shared cube is dirty and must be republished (an audit with no
        intervening mutations reuses the live segments).
        """
        if population.size != table.n_atoms:
            raise PartitioningError(
                f"proxy population has {population.size} rows for {table.n_atoms} atoms"
            )
        self.population = population
        scores = np.asarray(scores, dtype=np.float64)
        self.scores = scores
        self._bin_idx = self.spec.bin_indices(scores)
        if table is not self._atom_table:
            self._atom_table = table
            self.atom_version += 1
        self._pmf_cache.clear()
        self._atom_rows_cache.clear()
        self.stats = EngineStats(
            backend=self.backend.name, workers=self.backend.workers, kernel=self.kernel
        )
        self._synced_stats = {}
        self.metrics.set_gauge("engine.atoms", table.n_atoms)

    def close(self) -> None:
        """Per-run close: flush metrics but keep the backend's pool warm.

        ``PartitioningAlgorithm.run`` closes its engine in a ``finally``;
        for a persistent streaming engine that must not tear down the
        process pool between re-audits.  :meth:`shutdown` does.
        """
        self.sync_metrics()

    def shutdown(self) -> None:
        """Actually release backend resources (pool, shared memory)."""
        super().close()


@dataclass(frozen=True)
class StreamingAuditReport:
    """One point of a monitored population's unfairness-over-time series.

    ``kind`` is ``"audit"`` (a full re-run of the search, bit-identical to
    a batch audit of the same state) or ``"delta"`` (the previous audit's
    groups re-scored against the moved population in O(Δ·k)).
    ``group_sizes`` are true member counts; ``groups`` carries each group's
    constraint conjunction as ``[[attribute, code], ...]`` lists.
    """

    kind: str
    version: int
    population_size: int
    unfairness: float
    n_partitions: int
    attributes: tuple[str, ...]
    group_sizes: tuple[int, ...]
    groups: tuple[tuple[tuple[str, int], ...], ...]
    algorithm: str
    metric: str
    duration_seconds: float
    deadline_hit: bool = False
    n_evaluations: int = 0
    cache_hits: int = 0
    stale: bool = False

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "version": self.version,
            "population_size": self.population_size,
            "unfairness": self.unfairness,
            "n_partitions": self.n_partitions,
            "attributes": list(self.attributes),
            "group_sizes": list(self.group_sizes),
            "groups": [[[name, int(code)] for name, code in group] for group in self.groups],
            "algorithm": self.algorithm,
            "metric": self.metric,
            "duration_seconds": self.duration_seconds,
            "deadline_hit": self.deadline_hit,
            "n_evaluations": self.n_evaluations,
            "cache_hits": self.cache_hits,
            "stale": self.stale,
        }


@dataclass
class _Frontier:
    """The last full audit's groups, tracked for O(Δ·k) delta re-scoring.

    The pairwise-distance tracker costs O(k²) to seed, so it is built
    lazily on the first :meth:`StreamingAuditor.rescore_delta` call —
    audits that are never delta-repriced (``delta_series=False`` monitors,
    one-shot audits) never pay for it.
    """

    constraints: "list[tuple[tuple[str, int], ...]]"
    partitions: "list[Partition]"
    attr_positions: dict[str, int]
    #: k×n_attrs matrix of each group's constraints, -1 = unconstrained —
    #: lets a code tuple find its owning group in one vectorised compare.
    constraint_matrix: "np.ndarray" = None
    sizes: "list[int]" = field(default_factory=list)
    tracker: object = None  # IncrementalObjective, seeded on first use
    #: code tuple → owning group index (None = covered by no group), so
    #: repeat mutations of the same atom skip even the vectorised scan.
    code_groups: "dict[tuple[int, ...], int | None]" = field(default_factory=dict)
    dirty: set = field(default_factory=set)
    stale: bool = False


class StreamingAuditor:
    """Re-audits a :class:`MutablePopulation` with O(Δ) incremental work.

    One persistent :class:`StreamingEngine` serves every audit;
    :meth:`sync` folds new mutations into the atom state; :meth:`audit`
    re-runs the configured algorithm (bit-identical to a batch audit of
    the current state); :meth:`rescore_delta` re-prices the previous
    audit's partitioning against the moved population without searching.
    """

    def __init__(
        self,
        store: MutablePopulation,
        algorithm: str = "balanced",
        metric: str = "emd",
        weighting: str = "uniform",
        backend: "str | None" = None,
        workers: "int | None" = None,
        seed: int = 0,
        retry_policy=None,
        fault_config=None,
        algorithm_options: "dict | None" = None,
        metrics=None,
        tracer=None,
        kernel: "str | None" = None,
    ) -> None:
        self.store = store
        self.algorithm = algorithm
        self.metric = metric
        self.weighting = weighting
        self.backend = backend
        self.workers = workers
        self.kernel = kernel
        self.seed = seed
        self.retry_policy = retry_policy
        self.fault_config = fault_config
        self.algorithm_options = dict(algorithm_options or {})
        self.metrics = metrics
        self.tracer = tracer
        self.state = MutableAtomState.from_store(store)
        self.audits = 0
        self.mutations_absorbed = 0
        self._applied_seq = store.version
        #: Optional engine value cache transplanted into the first engine
        #: this auditor builds (see :mod:`repro.service.cache`); consumed
        #: once, then cleared.
        self.seed_value_cache: "dict | None" = None
        self._engine: "StreamingEngine | None" = None
        self._proxy: "Population | None" = None
        self._proxy_version = -1
        self._frontier: "_Frontier | None" = None

    # ------------------------------------------------------------------ sync

    @property
    def version(self) -> int:
        """Store version the atom state has absorbed."""
        return self._applied_seq

    def sync(self) -> int:
        """Fold mutations newer than the absorbed version into the atom
        state (O(Δ)); returns how many were applied."""
        log = self.store.log_since(self._applied_seq)
        for applied in log:
            self.state.apply(applied)
            self._mark_frontier_dirty(applied)
        if log:
            self._applied_seq = log[-1].seq
            self.mutations_absorbed += len(log)
            self.store.trim_log(self._applied_seq)
        return len(log)

    def _ensure_proxy(self) -> "tuple[Population, AtomTable]":
        table = self.state.materialize()
        if self._proxy is None or self._proxy_version != self.state.version:
            self._proxy = proxy_population(self.store.schema, table)
            self._proxy_version = self.state.version
        return self._proxy, table

    def _engine_factory(self, population, scores, **kwargs):
        table = self.state.materialize()
        if kwargs.get("kernel") is None and self.kernel is not None:
            kwargs["kernel"] = self.kernel
        if self._engine is None:
            if self.seed_value_cache is not None:
                kwargs.setdefault("seed_value_cache", self.seed_value_cache)
                self.seed_value_cache = None
            self._engine = StreamingEngine(population, scores, table=table, **kwargs)
        else:
            self._engine.rebind(population, scores, table)
        return self._engine

    def engine_value_cache(self) -> "dict[tuple, float]":
        """Exported objective value cache of the persistent engine (empty
        before the first audit); safe to transplant into an engine with the
        same spec/metric/weighting (keys are content-addressed)."""
        if self._engine is None:
            return {}
        return self._engine.export_value_cache()

    # ----------------------------------------------------------------- audit

    def audit(self, deadline=None) -> StreamingAuditReport:
        """Full re-audit of the current state; O(atoms) end to end.

        Runs the configured algorithm on the atom proxy through the
        persistent engine.  The result (objective value, chosen groups,
        group sizes) is bit-identical to a fresh batch audit of the frozen
        current population with the same seed.
        """
        from repro.core.algorithms.base import get_algorithm

        self.sync()
        if self.store.size == 0:
            raise MutationError("cannot audit an empty population")
        proxy, table = self._ensure_proxy()
        proxy_scores = np.full(proxy.size, self.store.hist_spec.low, dtype=np.float64)
        start = time.perf_counter()
        result = get_algorithm(self.algorithm, **self.algorithm_options).run(
            proxy,
            proxy_scores,
            hist_spec=self.store.hist_spec,
            metric=self.metric,
            rng=self.seed,
            weighting=self.weighting,
            backend=self.backend,
            workers=self.workers,
            tracer=self.tracer,
            metrics=self.metrics,
            retry_policy=self.retry_policy,
            fault_config=self.fault_config,
            deadline=deadline,
            engine_factory=self._engine_factory,
            kernel=self.kernel,
        )
        duration = time.perf_counter() - start
        engine = self._engine
        assert engine is not None
        partitions = list(result.partitioning)
        sizes = tuple(engine.true_size(p) for p in partitions)
        groups = tuple(
            tuple((name, int(code)) for name, code in p.constraints) for p in partitions
        )
        self.audits += 1
        self._seed_frontier(partitions, sizes)
        return StreamingAuditReport(
            kind="audit",
            version=self.store.version,
            population_size=self.store.size,
            unfairness=result.unfairness,
            n_partitions=result.partitioning.k,
            attributes=tuple(result.partitioning.attributes_used()),
            group_sizes=sizes,
            groups=groups,
            algorithm=self.algorithm,
            metric=self.metric,
            duration_seconds=duration,
            deadline_hit=result.deadline_hit,
            n_evaluations=result.n_evaluations,
            cache_hits=result.cache_hits,
        )

    # ------------------------------------------------------------ delta path

    def _seed_frontier(
        self, partitions: "list[Partition]", sizes: "tuple[int, ...]"
    ) -> None:
        engine = self._engine
        assert engine is not None
        constraints = [
            tuple((name, int(code)) for name, code in p.constraints) for p in partitions
        ]
        positions = {
            name: j for j, name in enumerate(self.store.schema.protected_names)
        }
        matrix = np.full((len(constraints), len(positions)), -1, dtype=np.int64)
        for j, group in enumerate(constraints):
            for name, code in group:
                matrix[j, positions[name]] = code
        self._frontier = _Frontier(
            constraints=constraints,
            partitions=list(partitions),
            attr_positions=positions,
            constraint_matrix=matrix,
            sizes=list(sizes),
            dirty=set(),
        )

    def _mark_frontier_dirty(self, applied: AppliedMutation) -> None:
        frontier = self._frontier
        if frontier is None or frontier.stale:
            return
        key = tuple(int(code) for code in applied.codes)
        try:
            index = frontier.code_groups[key]
        except KeyError:
            matrix = frontier.constraint_matrix
            row = np.asarray(key, dtype=np.int64)
            hits = np.flatnonzero(((matrix == row) | (matrix < 0)).all(axis=1))
            index = int(hits[0]) if hits.size else None
            frontier.code_groups[key] = index
        if index is None:
            # The mutation's code combination matches no chosen group: the
            # partitioning no longer covers the population and must be
            # re-found.
            frontier.stale = True
        else:
            frontier.dirty.add(index)

    def rescore_delta(self) -> "StreamingAuditReport | None":
        """Re-price the previous audit's groups after a mutation batch.

        Only groups a mutation actually touched get a new histogram, and
        each patch recomputes one row/column of the tracker's distance
        matrix — O(Δ·k) work total.  Returns None when no audit has run
        yet; returns a ``stale=True`` report (value of the *coverable*
        groups) when the old partitioning no longer covers the population
        (a full :meth:`audit` is then required).
        """
        self.sync()
        frontier = self._frontier
        if frontier is None or self._engine is None:
            return None
        start = time.perf_counter()
        table = self.state.materialize()
        if frontier.tracker is None:
            # First delta after an audit: seed the O(k²) pairwise tracker
            # from the audit-time table the engine is still bound to.
            frontier.tracker = self._engine.incremental(frontier.partitions)
        tracker = frontier.tracker
        stale = frontier.stale
        if not stale:
            for index in sorted(frontier.dirty):
                rows = table.rows_for_constraints(frontier.constraints[index])
                if rows.shape[0] == 0:
                    # A mutation batch emptied this group entirely.
                    stale = True
                    frontier.stale = True
                    break
                counts = table.histogram(rows)
                size = int(table.sizes[rows].sum())
                pmf = counts / size
                frontier.sizes[index] = size
                tracker.update_pmf(
                    index,
                    pmf,
                    weight=float(size) if self.weighting == "size" else None,
                )
        frontier.dirty.clear()
        value = float(tracker.unfairness())
        sizes = list(frontier.sizes)
        duration = time.perf_counter() - start
        return StreamingAuditReport(
            kind="delta",
            version=self.store.version,
            population_size=self.store.size,
            unfairness=value,
            n_partitions=len(frontier.constraints),
            attributes=tuple(
                sorted({name for c in frontier.constraints for name, _ in c})
            ),
            group_sizes=tuple(sizes),
            groups=tuple(frontier.constraints),
            algorithm=self.algorithm,
            metric=self.metric,
            duration_seconds=duration,
            stale=stale,
        )

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        """Release the persistent engine's backend (pool, shared memory)."""
        if self._engine is not None:
            self._engine.shutdown()
