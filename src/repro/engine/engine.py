"""The shared evaluation substrate: :class:`EvaluationEngine`.

Every unfairness query the search algorithms, the CLI, the benchmark
harness and the audit layer make flows through one engine instance.  The
engine binds a population, a score vector, a histogram spec, a metric and
a weighting — exactly like :class:`~repro.core.unfairness.UnfairnessEvaluator`,
which remains the straight-line reference implementation — and adds the
three things the reference deliberately does not have:

* a **value cache** keyed on the multiset of partition histograms (the
  objective depends on nothing else), so re-visited partitionings cost a
  dictionary lookup;
* **vectorized kernels** (:mod:`repro.engine.kernels`) and an
  **incremental objective** (:mod:`repro.engine.incremental`) so a greedy
  step pays O(k·Δ) instead of O(k²);
* **pluggable backends** (:mod:`repro.engine.backends`) so candidate
  batches fan out across processes.

The engine also keeps :class:`EngineStats` — evaluation counts, cache
hits, and pairwise distances actually materialised vs the naive dense
cost — which :class:`~repro.core.algorithms.base.AlgorithmResult` records
and the microbenchmarks compare across modes.

``mode="full"`` disables the cache and the closed-form average fast paths
and materialises the dense pairwise matrix on every query: that is the
seed's cost model, kept as the measurable baseline.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.histogram import HistogramSpec
from repro.core.partition import Partition, Partitioning
from repro.core.population import Population
from repro.engine.atoms import AtomTable
from repro.engine.backends import ExecutionBackend, get_backend
from repro.engine.incremental import FullRecomputeObjective, IncrementalObjective
from repro.engine.kernels import (
    KERNEL_COUNTER_KEYS,
    average_from_matrix,
    cross_matrix,
    full_objective,
    pairwise_matrix,
    resolve_kernel_backend,
)
from repro.exceptions import PartitioningError
from repro.metrics.base import HistogramDistance, get_metric
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER, NullTracer, Tracer

__all__ = ["EvaluationEngine", "EngineStats"]

#: Value-cache capacity.  Keys are a few hundred bytes each; 50k entries
#: bound the cache at tens of MB.  Eviction is LRU (least recently *hit*
#: entry goes first), so a long run keeps its working set instead of
#: periodically dropping everything.
_CACHE_CAP = 50_000

#: Sentinel distinguishing "not resolved yet" from a cached ``None``
#: (fallback) in the per-partition atom-row cache.
_UNRESOLVED = object()


@dataclass
class EngineStats:
    """Search-effort accounting, reported through ``AlgorithmResult``.

    ``pair_distances_full`` is the *naive dense cost*: C(k, 2) summed over
    every objective query, i.e. what the evaluation would cost if each query
    materialised every pair (the seed's model).  ``pair_distances_computed``
    counts pair distances actually materialised — the gap between the two is
    what the cache, the closed-form averages and the incremental updates
    saved.
    """

    n_evaluations: int = 0
    n_full_evaluations: int = 0
    n_incremental_evaluations: int = 0
    cache_hits: int = 0
    pair_distances_computed: int = 0
    pair_distances_full: int = 0
    backend: str = "sequential"
    workers: int = 1
    kernel: str = "numpy"

    def as_dict(self) -> dict:
        """Plain-dict view for serialization."""
        return {
            "n_evaluations": self.n_evaluations,
            "n_full_evaluations": self.n_full_evaluations,
            "n_incremental_evaluations": self.n_incremental_evaluations,
            "cache_hits": self.cache_hits,
            "pair_distances_computed": self.pair_distances_computed,
            "pair_distances_full": self.pair_distances_full,
            "backend": self.backend,
            "workers": self.workers,
            "kernel": self.kernel,
        }


class EvaluationEngine:
    """Serves every unfairness query over one (population, scores) binding.

    Parameters
    ----------
    population, scores, hist_spec, metric, weighting:
        As in :class:`~repro.core.unfairness.UnfairnessEvaluator`.
    backend:
        Backend name (``"sequential"`` / ``"process"``) or an
        :class:`~repro.engine.backends.ExecutionBackend` instance; batch
        queries through :meth:`score_many` run on it.
    workers:
        Worker count for the process backend (ignored by sequential).
    retry_policy:
        Optional :class:`~repro.engine.resilience.RetryPolicy` attached to
        the backend (timeouts, bounded retry with backoff, sequential
        degradation); ignored when ``backend`` is already an instance.
    fault_config:
        Optional :class:`~repro.engine.faults.FaultConfig` injecting seeded
        crashes/hangs/corruption into the backend (chaos mode / tests);
        ignored when ``backend`` is already an instance.
    mode:
        ``"incremental"`` (default: cache + fast paths + O(k·Δ) frontier
        updates) or ``"full"`` (dense recomputation every query — the
        baseline the microbenchmarks measure against).
    tracer:
        An :class:`~repro.obs.tracer.Tracer` to record per-evaluation spans
        into; defaults to the disabled :data:`~repro.obs.tracer.NULL_TRACER`,
        in which case the hot paths skip span creation entirely (one
        attribute check per query).
    metrics:
        A :class:`~repro.obs.metrics.MetricsRegistry` the engine mirrors its
        effort counters into (``engine.*`` namespace, see
        :meth:`sync_metrics`) and records timing histograms into while
        tracing; a private registry is created when omitted.
    use_atoms:
        Enable the :class:`~repro.engine.atoms.AtomTable` fast path
        (default).  Pass ``False`` to force the member-array path — the
        benchmark's "member" baseline.  Always off in ``mode="full"``.
        Both paths are bit-identical; this is purely a cost-model switch.
    kernel:
        Kernel backend name (``"numpy"`` / ``"scalar"`` / ``"numba"``, see
        :mod:`repro.engine.kernels`) deciding *how* distance blocks are
        computed.  All backends are bit-identical (the parity harness pins
        this), so like ``use_atoms`` this is purely a cost-model switch;
        ``None`` means the default fused-numpy kernels.
    atom_table:
        Optional prebuilt :class:`~repro.engine.atoms.AtomTable` for this
        exact (population, bin spec) binding — the service's cross-job
        cache injects one on a hit so the engine skips its O(n) build.
    seed_value_cache:
        Optional mapping of value-cache entries (content-addressed pmf
        multiset keys → objective values) to pre-warm the cache with; used
        by the cross-job cache.  Entries beyond the cache cap are dropped
        oldest-first.
    """

    def __init__(
        self,
        population: Population,
        scores: np.ndarray,
        hist_spec: HistogramSpec | None = None,
        metric: "str | HistogramDistance" = "emd",
        weighting: str = "uniform",
        backend: "str | ExecutionBackend | None" = None,
        workers: "int | None" = None,
        mode: str = "incremental",
        tracer: "Tracer | NullTracer | None" = None,
        metrics: "MetricsRegistry | None" = None,
        retry_policy=None,
        fault_config=None,
        use_atoms: "bool | None" = None,
        kernel: "str | None" = None,
        atom_table: "AtomTable | None" = None,
        seed_value_cache: "dict | None" = None,
    ) -> None:
        self.population = population
        self.spec = hist_spec or HistogramSpec()
        self.metric = get_metric(metric)
        if weighting not in ("uniform", "size"):
            raise PartitioningError(
                f"weighting must be 'uniform' or 'size', got {weighting!r}"
            )
        self.weighting = weighting
        if mode not in ("incremental", "full"):
            raise PartitioningError(
                f"mode must be 'incremental' or 'full', got {mode!r}"
            )
        self.mode = mode
        self.kernel = resolve_kernel_backend(kernel)
        #: Kernel-effort counters (see ``KERNEL_COUNTER_KEYS``): entry-point
        #: invocations, unique pairs actually evaluated, and output cells
        #: served.  Mirrored into the registry as ``engine.kernel_*``.
        self._kernel_counters: dict[str, int] = {}
        scores = np.asarray(scores, dtype=np.float64)
        if scores.shape != (population.size,):
            raise PartitioningError(
                f"scores have shape {scores.shape}, expected ({population.size},)"
            )
        self.scores = scores
        self._bin_idx = self.spec.bin_indices(scores)
        self.backend = get_backend(
            backend, workers, policy=retry_policy, faults=fault_config
        )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Hot-path guard: span creation (and timing observation) is skipped
        #: entirely unless a real tracer was passed in.
        self._trace = bool(getattr(self.tracer, "enabled", False))
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._synced_stats: dict[str, int] = {}
        self.stats = EngineStats(
            backend=self.backend.name, workers=self.backend.workers, kernel=self.kernel
        )
        self._pmf_cache: dict[Partition, np.ndarray] = {}
        self._value_cache: "OrderedDict[tuple, float]" = OrderedDict()
        if seed_value_cache:
            for key, value in seed_value_cache.items():
                self._value_cache[key] = value
            while len(self._value_cache) > _CACHE_CAP:
                self._value_cache.popitem(last=False)
        # Atom-table fast path: on by default in incremental mode, never in
        # mode="full" (the baseline cost model must keep paying member-array
        # prices).  The table itself is built lazily on first use.
        self._use_atoms = bool(use_atoms) if use_atoms is not None else True
        if self.mode == "full":
            self._use_atoms = False
        self._atom_table: "AtomTable | None" = None
        if atom_table is not None and self._use_atoms:
            self._atom_table = atom_table
        self._atom_rows_cache: dict[Partition, object] = {}
        #: Monotone version of the atom-count binding.  The process backend
        #: keys its shared-memory publication on (engine id, atom_version),
        #: so a streaming engine that swaps in a new table (see
        #: :meth:`~repro.engine.streaming.StreamingEngine.rebind`) republishes
        #: the cube, while an unchanged binding reuses the live segments.
        self.atom_version = 0
        # True when the metric's average_pairwise is a closed form that never
        # materialises individual pairs (EMD's sorted-prefix-sum path).
        self._closed_form_average = (
            type(self.metric).average_pairwise
            is not HistogramDistance.average_pairwise
        )

    # ---------------------------------------------------------------- atoms

    @property
    def use_atoms(self) -> bool:
        """True when the atom-table fast path is enabled for this engine."""
        return self._use_atoms

    @property
    def atom_table(self) -> AtomTable:
        """The population's :class:`~repro.engine.atoms.AtomTable`, built on
        first access (one O(n) pass) and reused for the engine's lifetime."""
        if self._atom_table is None:
            with self.tracer.span("engine.atom_table.build") as span, self.metrics.time(
                "engine.atom_table_build_seconds"
            ):
                self._atom_table = AtomTable.build(
                    self.population, self._bin_idx, self.spec.bins
                )
                span.set(n_atoms=self._atom_table.n_atoms)
            self.metrics.set_gauge("engine.atoms", self._atom_table.n_atoms)
        return self._atom_table

    def atom_rows(self, partition: Partition) -> "np.ndarray | None":
        """Atom rows of one partition, or None when the member path must be
        used (atoms disabled, or the partition's constraints do not account
        for its members).  Resolution is cached per Partition object."""
        if not self._use_atoms:
            return None
        rows = self._atom_rows_cache.get(partition, _UNRESOLVED)
        if rows is _UNRESOLVED:
            rows = self.atom_table.resolve(partition)
            self._atom_rows_cache[partition] = rows
            self.metrics.inc(
                "engine.atom_hits" if rows is not None else "engine.atom_fallbacks"
            )
        return rows

    # ----------------------------------------------------------- histograms

    def pmf(self, partition: Partition) -> np.ndarray:
        """Normalised score histogram of one partition (cached per object).

        With atoms enabled and the partition resolvable, the histogram is an
        int64 row-sum over the atom table — bit-identical to the member-path
        ``bincount`` but independent of the partition's member count.
        """
        cached = self._pmf_cache.get(partition)
        if cached is None:
            rows = self.atom_rows(partition)
            if rows is not None:
                counts = self.atom_table.histogram(rows)
            else:
                counts = self.spec.histogram_from_bin_indices(
                    self._bin_idx[partition.indices]
                )
            cached = counts / partition.size
            cached.setflags(write=False)
            self._pmf_cache[partition] = cached
        return cached

    def pmf_matrix(self, partitions: Sequence[Partition]) -> np.ndarray:
        """Stacked (k, bins) matrix of normalised histograms."""
        if not partitions:
            return np.zeros((0, self.spec.bins), dtype=np.float64)
        return np.vstack([self.pmf(p) for p in partitions])

    def partition_weights(
        self, partitions: Sequence[Partition]
    ) -> "np.ndarray | None":
        """Per-partition objective weights (sizes), or None when uniform."""
        if self.weighting != "size":
            return None
        return np.array([p.size for p in partitions], dtype=np.float64)

    # ----------------------------------------------------------- objectives

    def unfairness(self, partitioning: "Partitioning | Sequence[Partition]") -> float:
        """Average pairwise distance between all partition histograms.

        Interface-compatible with
        :meth:`~repro.core.unfairness.UnfairnessEvaluator.unfairness`; cached
        and vectorized in the default mode.  With tracing enabled, each query
        records an ``engine.unfairness`` span (k, value, cache hit) and an
        ``engine.unfairness_seconds`` timing observation.
        """
        partitions = list(partitioning)
        if not self._trace:
            return self._unfairness(partitions)
        with self.tracer.span("engine.unfairness", k=len(partitions)) as span:
            hits_before = self.stats.cache_hits
            value = self._unfairness(partitions)
            span.set(value=value, cache_hit=self.stats.cache_hits > hits_before)
        self.metrics.observe("engine.unfairness_seconds", span.duration_seconds)
        return value

    def _unfairness(self, partitions: "list[Partition]") -> float:
        k = len(partitions)
        self.stats.n_evaluations += 1
        if k < 2:
            return 0.0
        self.stats.pair_distances_full += k * (k - 1) // 2

        if self.mode == "full":
            # Baseline cost model: dense matrix, no cache, no closed forms.
            self.stats.n_full_evaluations += 1
            self.stats.pair_distances_computed += k * (k - 1) // 2
            matrix = pairwise_matrix(
                self.metric,
                self.pmf_matrix(partitions),
                self.spec,
                kernel=self.kernel,
                counters=self._kernel_counters,
            )
            return average_from_matrix(matrix, self.partition_weights(partitions))

        key = self._cache_key(partitions)
        cached = self._value_cache.get(key)
        if cached is not None:
            self._value_cache.move_to_end(key)
            self.stats.cache_hits += 1
            return cached
        value, pairs = full_objective(
            self.metric,
            self.pmf_matrix(partitions),
            self.spec,
            self.partition_weights(partitions),
            kernel=self.kernel,
            counters=self._kernel_counters,
        )
        self.stats.n_full_evaluations += 1
        self.stats.pair_distances_computed += pairs
        self._cache_insert(key, value)
        return value

    def _cache_insert(self, key: tuple, value: float) -> None:
        """Insert one value, evicting the least recently used entry at cap."""
        if len(self._value_cache) >= _CACHE_CAP:
            self._value_cache.popitem(last=False)
            self.metrics.inc("engine.cache_evictions")
        self._value_cache[key] = value

    def reset_caches(self) -> None:
        """Drop memoised pmfs and objective values (the atom table and its
        resolutions survive — they are per-binding, not per-query).  The
        scaling benchmark uses this to re-measure queries cold."""
        self._pmf_cache.clear()
        self._value_cache.clear()

    def export_value_cache(self) -> "dict[tuple, float]":
        """A plain-dict copy of the value cache, in LRU order (oldest first).

        Keys are content-addressed — the multiset of partition-histogram
        bytes (plus sizes under size weighting) — so entries are safe to
        reuse in *any* engine bound to the same (bin spec, metric,
        weighting), which is exactly what the service's cross-job cache
        does.
        """
        return dict(self._value_cache)

    def kernel_counters(self) -> "dict[str, int]":
        """Plain-dict copy of the kernel-effort counters (see kernels.py)."""
        return dict(self._kernel_counters)

    def union_average(
        self, group: Sequence[Partition], siblings: Sequence[Partition]
    ) -> float:
        """Average pairwise distance over ``group ∪ siblings`` (Algorithm 2's
        two-argument ``averageEMD`` under the union reading)."""
        return self.unfairness(list(group) + list(siblings))

    def cross_average(
        self, group: Sequence[Partition], siblings: Sequence[Partition]
    ) -> float:
        """Average distance over pairs (g, s), g in group, s in siblings."""
        if self._trace:
            with self.tracer.span(
                "engine.cross_average", group=len(group), siblings=len(siblings)
            ) as span:
                value = self._cross_average(list(group), list(siblings))
                span.set(value=value)
            self.metrics.observe("engine.unfairness_seconds", span.duration_seconds)
            return value
        return self._cross_average(list(group), list(siblings))

    def _cross_average(
        self, group: "list[Partition]", siblings: "list[Partition]"
    ) -> float:
        self.stats.n_evaluations += 1
        if not group or not siblings:
            return 0.0
        n_pairs = len(group) * len(siblings)
        self.stats.n_full_evaluations += 1
        self.stats.pair_distances_full += n_pairs
        self.stats.pair_distances_computed += n_pairs
        matrix = cross_matrix(
            self.metric,
            self.pmf_matrix(group),
            self.pmf_matrix(siblings),
            self.spec,
            kernel=self.kernel,
            counters=self._kernel_counters,
        )
        return float(matrix.mean())

    def pairwise_matrix(self, partitions: Sequence[Partition]) -> np.ndarray:
        """Dense pairwise-distance matrix, for reporting and analysis."""
        return pairwise_matrix(
            self.metric,
            self.pmf_matrix(list(partitions)),
            self.spec,
            kernel=self.kernel,
            counters=self._kernel_counters,
        )

    # ------------------------------------------------------------- batching

    def score_many(
        self, candidates: Sequence[Sequence[Partition]]
    ) -> list[float]:
        """Objective of every candidate partitioning, via the backend."""
        candidates = list(candidates)
        if not self._trace:
            return self.backend.score_partitionings(self, candidates)
        with self.tracer.span(
            "engine.score_many",
            n_candidates=len(candidates),
            backend=self.backend.name,
        ) as span:
            values = self.backend.score_partitionings(self, candidates)
        self.metrics.observe("engine.score_many_seconds", span.duration_seconds)
        return values

    def score_rows_many(self, tasks: "Sequence[list]") -> list[float]:
        """Objective of every wire-format candidate, via the backend.

        Each task is a list of ``("a", atom_rows)`` / ``("m", member_idx)``
        entries — one per partition of the candidate.  This is the atom-path
        sibling of :meth:`score_many`: candidates ship as atom-id lists, so
        a process-pool dispatch is O(atoms) per partition instead of
        O(members).
        """
        tasks = list(tasks)
        if not self._trace:
            return self.backend.score_histogram_tasks(self, tasks)
        with self.tracer.span(
            "engine.score_rows_many",
            n_candidates=len(tasks),
            backend=self.backend.name,
        ) as span:
            values = self.backend.score_histogram_tasks(self, tasks)
        self.metrics.observe("engine.score_many_seconds", span.duration_seconds)
        return values

    def score_tasks_inline(self, tasks: "Sequence[list]") -> list[float]:
        """Score wire-format candidates in-process (sequential backends'
        histogram-task path), with the same value cache and effort
        accounting as :meth:`unfairness` — same histograms produce the same
        cache keys, hits and counter increments on either path."""
        return [self._score_pmf_stack(*self._task_pmfs(task)) for task in tasks]

    def _task_pmfs(self, task: "Sequence[tuple]") -> "tuple[np.ndarray, list[int]]":
        """Materialise one wire-format candidate as (pmf stack, sizes)."""
        pmfs = np.empty((len(task), self.spec.bins), dtype=np.float64)
        sizes: list[int] = []
        for i, (kind, payload) in enumerate(task):
            if kind == "a":
                counts = self.atom_table.histogram(payload)
                size = int(self.atom_table.sizes[payload].sum())
            else:
                counts = self.spec.histogram_from_bin_indices(self._bin_idx[payload])
                size = int(payload.shape[0])
            pmfs[i] = counts / size
            sizes.append(size)
        return pmfs, sizes

    def _score_pmf_stack(self, pmfs: np.ndarray, sizes: "list[int]") -> float:
        """Cache-aware objective of one pmf stack; mirrors :meth:`_unfairness`
        (same keys, stats and eviction behaviour) for candidates that exist
        only as histograms, never as Partition objects."""
        k = pmfs.shape[0]
        self.stats.n_evaluations += 1
        if k < 2:
            return 0.0
        self.stats.pair_distances_full += k * (k - 1) // 2
        if self.weighting == "size":
            weights = np.array(sizes, dtype=np.float64)
            key = tuple(sorted((pmfs[i].tobytes(), sizes[i]) for i in range(k)))
        else:
            weights = None
            key = tuple(sorted(pmfs[i].tobytes() for i in range(k)))
        if self.mode == "full":
            self.stats.n_full_evaluations += 1
            self.stats.pair_distances_computed += k * (k - 1) // 2
            matrix = pairwise_matrix(
                self.metric,
                pmfs,
                self.spec,
                kernel=self.kernel,
                counters=self._kernel_counters,
            )
            return average_from_matrix(matrix, weights)
        cached = self._value_cache.get(key)
        if cached is not None:
            self._value_cache.move_to_end(key)
            self.stats.cache_hits += 1
            return cached
        value, pairs = full_objective(
            self.metric,
            pmfs,
            self.spec,
            weights,
            kernel=self.kernel,
            counters=self._kernel_counters,
        )
        self.stats.n_full_evaluations += 1
        self.stats.pair_distances_computed += pairs
        self._cache_insert(key, value)
        return value

    def score_attribute_splits(
        self, partitions: Sequence[Partition], candidates: Sequence[str]
    ) -> "list[float] | None":
        """Score every candidate attribute of a balanced greedy step as one
        grouped aggregation over the atom table.

        For each candidate attribute, every partition's atom rows are grouped
        by that attribute's code column (the exact children
        ``split_partitions`` would build, without materialising a single
        member array) and the resulting candidate is scored through
        :meth:`score_rows_many`.  Returns None when the atom path cannot
        serve the query — atoms disabled, a partition unresolvable, an
        attribute unknown or already constrained — in which case the caller
        must use the legacy split-then-score path (preserving its error
        semantics).
        """
        if not self._use_atoms:
            return None
        partitions = list(partitions)
        rows_per_partition = []
        for partition in partitions:
            rows = self.atom_rows(partition)
            if rows is None:
                return None
            rows_per_partition.append(rows)
        table = self.atom_table
        constrained = [set(p.constrained_attributes()) for p in partitions]
        tasks: list[list] = []
        try:
            for attribute in candidates:
                if any(attribute in used for used in constrained):
                    return None
                tasks.append(
                    [
                        ("a", group)
                        for rows in rows_per_partition
                        for group in table.split_rows(rows, attribute)
                    ]
                )
        except KeyError:
            return None
        return self.score_rows_many(tasks)

    def split_pmfs(
        self, partition: Partition, candidates: Sequence[str]
    ) -> "list[tuple[np.ndarray, np.ndarray | None]] | None":
        """Per-candidate ``(child pmfs, child weights)`` stacks of one
        partition's single-attribute splits, from the atom table.

        The stacks are bit-identical to what ``split_partition`` +
        :meth:`pmf_matrix` / :meth:`partition_weights` would produce (same
        integer counts divided by the same integer sizes, children in
        ascending code order), so an
        :meth:`IncrementalObjective.score_add_pmfs` query over them matches
        the member path exactly.  Returns None when the atom path cannot
        serve the query (see :meth:`score_attribute_splits`).
        """
        if not self._use_atoms:
            return None
        rows = self.atom_rows(partition)
        if rows is None:
            return None
        table = self.atom_table
        constrained = set(partition.constrained_attributes())
        out: "list[tuple[np.ndarray, np.ndarray | None]]" = []
        try:
            for attribute in candidates:
                if attribute in constrained:
                    return None
                groups = table.split_rows(rows, attribute)
                pmfs = np.empty((len(groups), self.spec.bins), dtype=np.float64)
                sizes = np.empty(len(groups), dtype=np.float64)
                for i, group in enumerate(groups):
                    size = int(table.sizes[group].sum())
                    pmfs[i] = table.histogram(group) / size
                    sizes[i] = size
                out.append((pmfs, sizes if self.weighting == "size" else None))
        except KeyError:
            return None
        return out

    def incremental(
        self, partitions: Sequence[Partition]
    ) -> "IncrementalObjective | FullRecomputeObjective":
        """An objective tracker seeded with ``partitions`` as the frontier.

        Returns the matrix-maintaining :class:`IncrementalObjective` in the
        default mode and the recompute-everything
        :class:`FullRecomputeObjective` in ``mode="full"``.
        """
        if self.mode == "full":
            return FullRecomputeObjective(self, partitions)
        return IncrementalObjective(self, partitions)

    # --------------------------------------------- kernel/stat plumbing used
    # by IncrementalObjective and the backends; not part of the search API.

    def materialize_pairwise(self, pmfs: np.ndarray) -> np.ndarray:
        """Dense pairwise matrix of a pmf stack (no EngineStats side effects;
        kernel-effort counters still accrue)."""
        return pairwise_matrix(
            self.metric,
            pmfs,
            self.spec,
            kernel=self.kernel,
            counters=self._kernel_counters,
        )

    def materialize_cross(self, left: np.ndarray, right: np.ndarray) -> np.ndarray:
        """Cross-distance matrix of two pmf stacks (no EngineStats side
        effects; kernel-effort counters still accrue)."""
        return cross_matrix(
            self.metric,
            left,
            right,
            self.spec,
            kernel=self.kernel,
            counters=self._kernel_counters,
        )

    def record_incremental_evaluation(self, k: int, new_pairs: int) -> None:
        """Account one O(k·Δ) frontier query: ``new_pairs`` distances were
        materialised where a dense recomputation would have cost C(k, 2)."""
        self.stats.n_evaluations += 1
        self.stats.n_incremental_evaluations += 1
        self.stats.pair_distances_computed += new_pairs
        self.stats.pair_distances_full += k * (k - 1) // 2

    def record_external_evaluations(
        self, candidates: Sequence[Sequence[Partition]]
    ) -> None:
        """Account candidates a worker pool evaluated on the parent's stats.

        Workers run :func:`~repro.engine.kernels.full_objective`, so each
        candidate is one full evaluation that materialised C(k, 2) pairs —
        or none at all when the metric's average is a closed form.
        """
        for candidate in candidates:
            k = len(candidate)
            self.stats.n_evaluations += 1
            self.stats.n_full_evaluations += 1
            if k < 2:
                continue
            n_pairs = k * (k - 1) // 2
            self.stats.pair_distances_full += n_pairs
            if not self._closed_form_average:
                self.stats.pair_distances_computed += n_pairs

    def worker_payload(self) -> dict:
        """Initializer state for process-pool workers (see backends).

        ``atom_counts`` is the atom table's count matrix when the atom path
        is enabled (workers serve ``("a", rows)`` wire entries from it) and
        None otherwise; the process backend publishes it — and ``bin_idx`` —
        through shared memory rather than pickling them per worker.
        """
        return {
            "spec": self.spec,
            "metric": self.metric,
            "bin_idx": self._bin_idx,
            "weighting": self.weighting,
            "atom_counts": self.atom_table.counts if self._use_atoms else None,
            "kernel": self.kernel,
        }

    # ------------------------------------------------------------ lifecycle

    @property
    def n_evaluations(self) -> int:
        """Total objective queries served (search-effort unit in results)."""
        return self.stats.n_evaluations

    @property
    def trace_enabled(self) -> bool:
        """True when a real tracer was attached (hot paths record spans)."""
        return self._trace

    def sync_metrics(self) -> MetricsRegistry:
        """Mirror :class:`EngineStats` into the metrics registry.

        Counter metrics (``engine.n_evaluations`` …) receive the *delta*
        since the last sync, so repeated syncs are idempotent and several
        engines sharing one registry accumulate rather than overwrite.
        Returns the registry.
        """
        current = self.stats.as_dict()
        for key in (
            "n_evaluations",
            "n_full_evaluations",
            "n_incremental_evaluations",
            "cache_hits",
            "pair_distances_computed",
            "pair_distances_full",
        ):
            value = current[key]
            delta = value - self._synced_stats.get(key, 0)
            if delta:
                self.metrics.inc(f"engine.{key}", delta)
            self._synced_stats[key] = value
        for key in KERNEL_COUNTER_KEYS:
            value = self._kernel_counters.get(key, 0)
            synced_key = f"kernel_{key}"
            delta = value - self._synced_stats.get(synced_key, 0)
            if delta:
                self.metrics.inc(f"engine.{synced_key}", delta)
            self._synced_stats[synced_key] = value
        self.metrics.set_gauge("engine.workers", self.stats.workers)
        self.metrics.set_gauge("engine.value_cache_size", len(self._value_cache))
        return self.metrics

    def metrics_snapshot(self) -> dict:
        """Sync the effort counters and return the registry's plain-dict view."""
        return self.sync_metrics().as_dict()

    def close(self) -> None:
        """Release backend resources; the engine stays usable sequentially."""
        self.sync_metrics()
        self.backend.close()

    def _cache_key(self, partitions: Sequence[Partition]) -> tuple:
        # The objective is a function of the *multiset* of histograms only
        # (plus sizes under size weighting), so that is the cache key —
        # partitionings reached through different split trees share entries.
        if self.weighting == "size":
            return tuple(sorted((self.pmf(p).tobytes(), p.size) for p in partitions))
        return tuple(sorted(self.pmf(p).tobytes() for p in partitions))

    def __repr__(self) -> str:
        return (
            f"EvaluationEngine(metric={self.metric.name!r}, mode={self.mode!r}, "
            f"backend={self.backend.name!r}, workers={self.backend.workers})"
        )
