"""Fault-tolerant execution: retry policies and the retrying backend wrapper.

A multi-hour table run dies with its slowest worker unless something between
the engine and the backend *tolerates* failure.  This module provides the
two generic pieces:

* :class:`RetryPolicy` — one dataclass holding every knob: retry budget,
  per-batch timeout, exponential backoff with jitter, and whether an
  exhausted backend degrades to the sequential path or raises a typed
  :class:`~repro.exceptions.BackendExhaustedError`.  Surfaced on the CLI as
  ``--engine-retries`` / ``--engine-timeout`` / ``--engine-retry-backoff`` /
  ``--engine-no-fallback``.
* :class:`RetryingBackend` — wraps *any*
  :class:`~repro.engine.backends.ExecutionBackend` and retries whole-batch
  evaluations on transient failures (worker crashes, timeouts, corrupt
  returns), validating every batch it accepts.  Because retries re-run the
  same kernels over the same inputs, a run that survives injected faults is
  bit-identical to an undisturbed one.

The hardened :class:`~repro.engine.backends.ProcessPoolBackend` implements
the same policy natively at *chunk* granularity (straggler re-dispatch, pool
rebuilds); this wrapper is the backend-agnostic fallback and the natural
seam for the fault-injection harness (:mod:`repro.engine.faults`).

Every retry/timeout/fallback event is counted in the engine's
:class:`~repro.obs.metrics.MetricsRegistry` (``engine.retries``,
``engine.timeouts``, ``engine.worker_crashes``, ``engine.corrupt_results``,
``engine.backend_fallbacks``) and recorded as a ``backend.retry`` trace
span, so chaos runs are observable with the PR-2 tooling.
"""

from __future__ import annotations

import math
import random
import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Sequence

from repro.engine.backends import ExecutionBackend, SequentialBackend
from repro.exceptions import (
    BackendExhaustedError,
    BackendTimeoutError,
    CorruptResultError,
    PartitioningError,
    WorkerCrashError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.partition import Partition
    from repro.engine.engine import EvaluationEngine

__all__ = ["RetryPolicy", "RetryingBackend", "TRANSIENT_ERRORS", "validate_batch"]

#: Failure types the retry machinery treats as transient (retryable).
TRANSIENT_ERRORS = (WorkerCrashError, BackendTimeoutError, CorruptResultError)


@dataclass
class RetryPolicy:
    """Every fault-tolerance knob of a backend, in one place.

    Attributes
    ----------
    max_retries:
        Re-attempts after the first failure (0 = fail fast).  The total
        attempt count is ``max_retries + 1``.
    timeout_seconds:
        Per-dispatch deadline.  ``None`` (default) disables timeouts; the
        process backend requires one when hang injection is enabled.
    backoff_seconds / backoff_multiplier / jitter:
        Delay before retry ``n`` is ``backoff_seconds * multiplier**n``
        scaled by ``1 + jitter * u`` with ``u ~ U[0, 1)``, capping thundering
        re-dispatch herds without synchronising them.
    fallback_sequential:
        When the budget is exhausted, degrade to the in-process sequential
        path (results stay bit-identical; only throughput is lost) instead
        of raising :class:`~repro.exceptions.BackendExhaustedError`.
    sleep:
        Injectable sleep for tests (defaults to :func:`time.sleep`).
    """

    max_retries: int = 3
    timeout_seconds: "float | None" = None
    backoff_seconds: float = 0.05
    backoff_multiplier: float = 2.0
    jitter: float = 0.25
    fallback_sequential: bool = True
    sleep: Callable[[float], None] = field(default=time.sleep, repr=False)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise PartitioningError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.timeout_seconds is not None and not (
            self.timeout_seconds > 0 and math.isfinite(self.timeout_seconds)
        ):
            raise PartitioningError(
                f"timeout_seconds must be positive and finite, got {self.timeout_seconds}"
            )
        if self.backoff_seconds < 0 or self.backoff_multiplier < 1:
            raise PartitioningError(
                "backoff_seconds must be >= 0 and backoff_multiplier >= 1, got "
                f"{self.backoff_seconds}/{self.backoff_multiplier}"
            )
        if not 0 <= self.jitter <= 1:
            raise PartitioningError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int, rng: "random.Random | None" = None) -> float:
        """Backoff before re-attempt ``attempt`` (0-based), jittered."""
        delay = self.backoff_seconds * self.backoff_multiplier**attempt
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * rng.random()
        return delay


def validate_batch(values: "Sequence[float]", expected: int) -> list[float]:
    """Check one batch/chunk result for shape and finiteness.

    Raises :class:`~repro.exceptions.CorruptResultError` on a length
    mismatch or any non-finite value; returns the values as a list
    otherwise.  This is the corruption detector the retry layers share —
    objective values are finite non-negative floats by construction, so
    anything else is a damaged return.
    """
    if values is None or len(values) != expected:
        raise CorruptResultError(
            f"backend returned {0 if values is None else len(values)} values "
            f"for {expected} candidates"
        )
    out = []
    for value in values:
        value = float(value)
        if not math.isfinite(value):
            raise CorruptResultError(f"backend returned non-finite value {value!r}")
        out.append(value)
    return out


class RetryingBackend(ExecutionBackend):
    """Bounded-retry wrapper around any execution backend.

    Each ``score_partitionings`` call is attempted up to
    ``policy.max_retries + 1`` times.  A configured ``timeout_seconds`` runs
    the inner call on a daemon thread and abandons it at the deadline
    (counted in ``engine.timeouts``); crashes and corrupt results are
    retried after a jittered exponential backoff.  On exhaustion the batch
    either degrades to a fresh :class:`SequentialBackend` (bit-identical
    values, ``engine.backend_fallbacks``) or raises
    :class:`~repro.exceptions.BackendExhaustedError`.

    The wrapper keeps the inner backend's ``name``/``workers`` so recorded
    results are indistinguishable from an unwrapped run.
    """

    def __init__(
        self, inner: ExecutionBackend, policy: "RetryPolicy | None" = None
    ) -> None:
        self.inner = inner
        self.policy = policy or RetryPolicy()
        self.name = inner.name
        self.workers = inner.workers
        # Jitter source; seeded so reruns sleep identically (never affects
        # computed values, only pacing).
        self._rng = random.Random(0x5EED)

    def score_partitionings(
        self,
        engine: "EvaluationEngine",
        candidates: Sequence[Sequence["Partition"]],
    ) -> list[float]:
        candidates = list(candidates)
        if not candidates:
            return []
        return self._run_with_retries(
            engine,
            len(candidates),
            lambda: self.inner.score_partitionings(engine, candidates),
            lambda: SequentialBackend().score_partitionings(engine, candidates),
        )

    def score_histogram_tasks(
        self, engine: "EvaluationEngine", tasks: "Sequence[list]"
    ) -> list[float]:
        """Wire-format (atom-path) batches get the exact same retry loop,
        validation and sequential fallback as partitioning batches."""
        tasks = list(tasks)
        if not tasks:
            return []
        return self._run_with_retries(
            engine,
            len(tasks),
            lambda: self.inner.score_histogram_tasks(engine, tasks),
            lambda: ExecutionBackend.score_histogram_tasks(
                SequentialBackend(), engine, tasks
            ),
        )

    def _run_with_retries(
        self,
        engine: "EvaluationEngine",
        n_candidates: int,
        attempt_call: "Callable[[], Sequence[float]]",
        fallback_call: "Callable[[], list[float]]",
    ) -> list[float]:
        """The bounded-retry loop shared by both batch entry points."""
        policy, metrics = self.policy, engine.metrics
        last_error: "BaseException | None" = None
        for attempt in range(policy.max_retries + 1):
            if attempt:
                metrics.inc("engine.retries")
                with engine.tracer.span(
                    "backend.retry",
                    attempt=attempt,
                    error=type(last_error).__name__,
                    backend=self.inner.name,
                ):
                    policy.sleep(policy.delay(attempt - 1, self._rng))
            try:
                values = self._dispatch(n_candidates, attempt_call)
                return validate_batch(values, n_candidates)
            except TRANSIENT_ERRORS as exc:
                last_error = exc
                if isinstance(exc, BackendTimeoutError):
                    metrics.inc("engine.timeouts")
                elif isinstance(exc, CorruptResultError):
                    metrics.inc("engine.corrupt_results")
                else:
                    metrics.inc("engine.worker_crashes")
        if policy.fallback_sequential:
            metrics.inc("engine.backend_fallbacks")
            with engine.tracer.span(
                "backend.fallback",
                reason=type(last_error).__name__,
                n_candidates=n_candidates,
            ):
                return fallback_call()
        raise BackendExhaustedError(policy.max_retries + 1, last_error)

    def _dispatch(
        self,
        n_candidates: int,
        attempt_call: "Callable[[], Sequence[float]]",
    ) -> "Sequence[float]":
        """One attempt, with the policy's deadline applied if configured.

        The timed path runs the inner call on a daemon thread and abandons
        it when the deadline passes — the hung call keeps its thread but can
        no longer affect the run (its result is discarded).
        """
        timeout = self.policy.timeout_seconds
        if not timeout:
            return attempt_call()
        box: "list[tuple[str, object]]" = []

        def target() -> None:
            try:
                box.append(("ok", attempt_call()))
            except BaseException as exc:  # noqa: BLE001 - ferried to caller
                box.append(("error", exc))

        thread = threading.Thread(target=target, daemon=True)
        thread.start()
        thread.join(timeout)
        if thread.is_alive() or not box:
            raise BackendTimeoutError(
                f"batch of {n_candidates} candidates exceeded {timeout}s"
            )
        kind, payload = box[0]
        if kind == "error":
            raise payload  # type: ignore[misc]
        return payload  # type: ignore[return-value]

    def close(self) -> None:
        self.inner.close()

    def __repr__(self) -> str:
        return f"RetryingBackend({self.inner!r}, max_retries={self.policy.max_retries})"
