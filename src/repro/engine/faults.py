"""Deterministic fault injection for execution backends (chaos mode).

The robustness layer is only trustworthy if its failure paths are
*exercised*, so this module makes failure reproducible: a
:class:`FaultConfig` decides — from a seed and a stable per-dispatch key,
never from global randomness — whether a given dispatch crashes, hangs, or
returns corrupted values.  The same seed therefore produces the same fault
schedule on every run, which is what lets the test suite assert that a run
surviving injected faults is **bit-identical** to an undisturbed one.

Two injection sites share the config:

* :class:`FaultInjectionBackend` wraps any backend and injects at the
  batch level (the substrate for the generic
  :class:`~repro.engine.resilience.RetryingBackend` tests);
* the :class:`~repro.engine.backends.ProcessPoolBackend` ships the config
  to its workers and injects per *chunk attempt*, so crashes surface as
  real cross-process failures (including hard ``os._exit`` kills that
  break the pool) and hangs as real stragglers.

Corruption is always *detectable* (a non-finite value or a truncated
chunk) so the validation in the retry layer catches and repairs it; see
``validate_batch`` in :mod:`repro.engine.resilience`.

User-facing: ``--inject-faults crash=0.3,hang=0.1,corrupt=0.05,seed=1``
turns any CLI run into a chaos drill for validating a deployment.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Sequence

from repro.engine.backends import ExecutionBackend
from repro.exceptions import PartitioningError, WorkerCrashError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.partition import Partition
    from repro.engine.engine import EvaluationEngine

__all__ = ["FaultConfig", "FaultInjectionBackend"]


@dataclass(frozen=True)
class FaultConfig:
    """Seeded fault schedule: what fails, how often, and how.

    Attributes
    ----------
    crash_rate / hang_rate / corrupt_rate:
        Per-dispatch probabilities in [0, 1] of raising a
        :class:`~repro.exceptions.WorkerCrashError`, sleeping
        ``hang_seconds`` (to trip the timeout machinery), or damaging the
        returned values.
    seed:
        Together with the dispatch key, fully determines every decision.
    hang_seconds:
        How long an injected hang sleeps; keep it above the retry policy's
        ``timeout_seconds`` so hangs actually look hung.
    crash_hard:
        When set, crashes in process-pool workers call ``os._exit`` —
        killing the worker and breaking the pool — instead of raising.
        Exercises the pool-rebuild path rather than per-chunk retry.
    """

    crash_rate: float = 0.0
    hang_rate: float = 0.0
    corrupt_rate: float = 0.0
    seed: int = 0
    hang_seconds: float = 30.0
    crash_hard: bool = False

    def __post_init__(self) -> None:
        for name in ("crash_rate", "hang_rate", "corrupt_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise PartitioningError(f"{name} must be in [0, 1], got {rate}")
        if self.hang_seconds <= 0:
            raise PartitioningError(
                f"hang_seconds must be positive, got {self.hang_seconds}"
            )

    @property
    def enabled(self) -> bool:
        """True when any fault can fire."""
        return (self.crash_rate + self.hang_rate + self.corrupt_rate) > 0

    # ------------------------------------------------------------- decisions

    def roll(self, kind: str, key: str) -> bool:
        """Deterministic Bernoulli draw for one (fault kind, dispatch key).

        Uses CRC32 of ``seed:kind:key`` mapped to [0, 1) — stable across
        processes and Python hash randomisation, which ``hash()`` is not.
        """
        rate = getattr(self, f"{kind}_rate")
        if rate <= 0.0:
            return False
        token = f"{self.seed}:{kind}:{key}".encode()
        return (zlib.crc32(token) / 0x1_0000_0000) < rate

    def maybe_crash_or_hang(self, key: str) -> None:
        """Apply crash/hang decisions for one dispatch (worker side).

        Order matters and is fixed: hang first (the dispatch becomes a
        straggler), then crash.  A hard crash kills the whole process.
        """
        if self.roll("hang", key):
            time.sleep(self.hang_seconds)
        if self.roll("crash", key):
            if self.crash_hard:  # pragma: no cover - kills the worker
                os._exit(3)
            raise WorkerCrashError(f"injected crash at {key!r}")

    def corrupt_values(self, values: "Sequence[float]", key: str) -> list[float]:
        """Damage a result list detectably (NaN poison or truncation)."""
        out = list(values)
        if zlib.crc32(f"{self.seed}:corrupt-mode:{key}".encode()) & 1 or not out:
            return out[:-1]
        out[len(out) // 2] = float("nan")
        return out

    # --------------------------------------------------------------- parsing

    @classmethod
    def parse(cls, spec: str) -> "FaultConfig":
        """Build a config from a CLI spec like ``crash=0.3,hang=0.1,seed=2``.

        Keys: ``crash``, ``hang``, ``corrupt`` (rates), ``seed``,
        ``hang-seconds`` (or ``hang_seconds``), ``hard`` (0/1).  Raises
        :class:`ValueError` on unknown keys or malformed values.
        """
        config = cls()
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ValueError(f"fault spec entry {part!r} is not key=value")
            key, _, raw = part.partition("=")
            key = key.strip().lower().replace("-", "_")
            try:
                if key in ("crash", "hang", "corrupt"):
                    config = replace(config, **{f"{key}_rate": float(raw)})
                elif key == "seed":
                    config = replace(config, seed=int(raw))
                elif key == "hang_seconds":
                    config = replace(config, hang_seconds=float(raw))
                elif key == "hard":
                    config = replace(config, crash_hard=bool(int(raw)))
                else:
                    raise ValueError(f"unknown fault spec key {key!r}")
            except PartitioningError as exc:
                raise ValueError(str(exc)) from None
        return config


class FaultInjectionBackend(ExecutionBackend):
    """Wrap a backend and inject faults at the batch boundary.

    Every ``score_partitionings`` call consumes one dispatch key
    (``call-<n>``), so a retried batch rolls fresh dice — injected faults
    are transient, and a sufficiently patient retry policy always recovers
    the true values.  An injected hang sleeps ``hang_seconds`` and then
    raises :class:`~repro.exceptions.WorkerCrashError` (a hung dispatch
    that is eventually reaped), so it is observable both with and without
    a timeout configured.

    Fired faults are counted in ``engine.faults_injected``.
    """

    def __init__(self, inner: ExecutionBackend, config: FaultConfig) -> None:
        self.inner = inner
        self.config = config
        self.name = inner.name
        self.workers = inner.workers
        self._calls = 0

    def score_partitionings(
        self,
        engine: "EvaluationEngine",
        candidates: Sequence[Sequence["Partition"]],
    ) -> list[float]:
        return self._inject(
            engine, lambda: self.inner.score_partitionings(engine, candidates)
        )

    def score_histogram_tasks(
        self, engine: "EvaluationEngine", tasks: "Sequence[list]"
    ) -> list[float]:
        """Atom-path batches draw from the same ``call-<n>`` key sequence,
        so a chaos schedule covers both dispatch formats uniformly."""
        return self._inject(
            engine, lambda: self.inner.score_histogram_tasks(engine, tasks)
        )

    def _inject(self, engine: "EvaluationEngine", dispatch) -> list[float]:
        key = f"call-{self._calls}"
        self._calls += 1
        config, metrics = self.config, engine.metrics
        if config.roll("hang", key):
            metrics.inc("engine.faults_injected")
            time.sleep(config.hang_seconds)
            raise WorkerCrashError(f"injected hang at {key!r} reaped")
        if config.roll("crash", key):
            metrics.inc("engine.faults_injected")
            raise WorkerCrashError(f"injected crash at {key!r}")
        values = dispatch()
        if config.roll("corrupt", key):
            metrics.inc("engine.faults_injected")
            return config.corrupt_values(values, key)
        return values

    def close(self) -> None:
        self.inner.close()

    def __repr__(self) -> str:
        return f"FaultInjectionBackend({self.inner!r}, {self.config})"
