"""Atom-table sufficient statistics for the partitioning search.

The search only ever forms partitions from *conjunctions of
protected-attribute values*, so every partition the algorithms can reach
is a union of the finest non-empty attribute cells — the **atoms**.  An
:class:`AtomTable` precomputes, once per (population, scoring-function)
binding, the ``(n_atoms, bins)`` int64 contingency cube of per-atom score
histograms plus the per-atom code tuples needed to map any constraint
conjunction onto a subset of atom rows.

With the table in hand the hot paths stop touching member-index arrays:

* a candidate partition's histogram is an integer **row-sum** over its
  atom rows — O(atoms x bins), independent of the population size;
* every single-attribute split of a greedy step is a **grouped
  aggregation**: group the parent's atom rows by that attribute's code
  column and sum each group;
* a process-pool task ships an atom-id list (a few dozen ints) instead of
  a member-index array (a few million), and the count matrix itself is
  published zero-copy through ``multiprocessing.shared_memory`` (see
  :mod:`repro.engine.backends`).

Everything stays **bit-identical** to the member-array path: the row-sums
are exact int64 arithmetic, so they equal ``bincount`` over the member
rows, and the float64 pmfs obtained by dividing by the same integer size
are the same IEEE values the legacy path produces.

Correctness contract: a partition's ``constraints`` are trusted as the
predicate defining its member set.  That invariant holds by construction
for every partition the algorithms create (root + repeated
``split_partition``).  Resolution cross-checks the conjunction's total
atom size against ``partition.size`` and falls back to the member path on
any mismatch, so hand-built partitions whose constraints do not describe
their members degrade gracefully instead of mis-resolving.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.partition import Partition
    from repro.core.population import Population

__all__ = ["AtomTable", "protected_cards", "encode_codes", "decode_keys"]


def protected_cards(schema) -> "tuple[tuple[str, ...], tuple[int, ...]]":
    """Protected attribute names and cardinalities, in schema (radix) order."""
    names = tuple(schema.protected_names)
    cards = tuple(schema.protected_attribute(name).cardinality for name in names)
    return names, cards


def encode_codes(codes: Sequence[int], cards: Sequence[int]) -> int:
    """Mixed-radix fold of one code tuple — the atom key of one worker.

    Must match :meth:`AtomTable.build`'s vectorised fold exactly: the first
    attribute is the most significant digit.
    """
    key = 0
    for code, card in zip(codes, cards):
        key = key * card + int(code)
    return key


def decode_keys(keys: np.ndarray, cards: Sequence[int]) -> np.ndarray:
    """Invert the mixed-radix fold: ``(n_atoms, n_attributes)`` code columns."""
    n_atoms = int(keys.shape[0])
    codes = np.empty((n_atoms, len(cards)), dtype=np.int64)
    if len(cards):
        remainder = np.asarray(keys, dtype=np.int64)
        for j in range(len(cards) - 1, 0, -1):
            remainder, codes[:, j] = np.divmod(remainder, cards[j])
        codes[:, 0] = remainder
    return codes


class AtomTable:
    """The finest protected-attribute cells of one population, with their
    score histograms.

    Attributes
    ----------
    attribute_names:
        Protected attribute names, in schema order (the code-column order).
    codes:
        ``(n_atoms, n_attributes)`` int64 — partition code of each atom on
        each attribute.
    counts:
        ``(n_atoms, bins)`` int64 — score histogram of each atom's members.
    sizes:
        ``(n_atoms,)`` int64 — members per atom (``counts.sum(axis=1)``).
    worker_atom:
        ``(n,)`` int64 — atom row of every worker.
    """

    __slots__ = ("attribute_names", "codes", "counts", "sizes", "worker_atom", "_attr_index")

    def __init__(
        self,
        attribute_names: tuple[str, ...],
        codes: np.ndarray,
        counts: np.ndarray,
        worker_atom: np.ndarray,
    ) -> None:
        self.attribute_names = attribute_names
        self.codes = codes
        self.counts = counts
        self.sizes = counts.sum(axis=1)
        self.worker_atom = worker_atom
        self._attr_index = {name: j for j, name in enumerate(attribute_names)}
        for array in (self.codes, self.counts, self.sizes, self.worker_atom):
            array.setflags(write=False)

    # ------------------------------------------------------------ construction

    @classmethod
    def build(cls, population: "Population", bin_idx: np.ndarray, bins: int) -> "AtomTable":
        """Compute the table for one population/digitised-score binding.

        One O(n) pass: workers are keyed by the mixed-radix encoding of
        their partition codes, unique keys become atom rows, and the count
        cube is a single flat ``bincount`` over ``atom * bins + bin``.
        """
        names = tuple(population.schema.protected_names)
        cards = [
            population.schema.protected_attribute(name).cardinality for name in names
        ]
        if names:
            key = population.partition_codes(names[0]).astype(np.int64)
            for name, card in zip(names[1:], cards[1:]):
                key = key * card + population.partition_codes(name)
        else:
            key = np.zeros(population.size, dtype=np.int64)
        unique_keys, worker_atom = np.unique(key, return_inverse=True)
        worker_atom = worker_atom.astype(np.int64)
        n_atoms = int(unique_keys.shape[0])
        counts = np.bincount(
            worker_atom * bins + np.asarray(bin_idx, dtype=np.int64),
            minlength=n_atoms * bins,
        ).reshape(n_atoms, bins)
        codes = decode_keys(unique_keys, cards)
        return cls(names, codes, np.ascontiguousarray(counts, dtype=np.int64), worker_atom)

    @classmethod
    def from_key_counts(
        cls,
        attribute_names: tuple[str, ...],
        cards: Sequence[int],
        keys: np.ndarray,
        counts: np.ndarray,
    ) -> "AtomTable":
        """Build a table directly from per-atom (key, histogram) pairs.

        This is the streaming path: a
        :class:`~repro.engine.streaming.MutableAtomState` maintains the
        key → histogram mapping incrementally and materialises it here.
        ``keys`` must be sorted ascending — the order :meth:`build` produces
        via ``np.unique`` — so a table built from identical statistics is
        bit-identical to a from-scratch build.  ``worker_atom`` is the
        identity: in the streaming proxy, "worker" *i* is atom *i*.
        """
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size > 1 and not bool(np.all(keys[1:] > keys[:-1])):
            raise ValueError("atom keys must be strictly ascending")
        codes = decode_keys(keys, cards)
        counts = np.ascontiguousarray(counts, dtype=np.int64)
        worker_atom = np.arange(keys.shape[0], dtype=np.int64)
        return cls(attribute_names, codes, counts, worker_atom)

    # ------------------------------------------------------------- inspection

    @property
    def n_atoms(self) -> int:
        """Number of non-empty finest cells."""
        return int(self.codes.shape[0])

    @property
    def bins(self) -> int:
        """Histogram bins per atom."""
        return int(self.counts.shape[1])

    def attribute_index(self, name: str) -> int:
        """Code-column index of a protected attribute (KeyError if unknown)."""
        return self._attr_index[name]

    def nbytes(self) -> int:
        """Approximate memory footprint of the table's arrays."""
        return int(
            self.codes.nbytes + self.counts.nbytes + self.sizes.nbytes + self.worker_atom.nbytes
        )

    def fingerprint(self) -> str:
        """Content-addressed SHA-256 over the table's defining arrays.

        Two tables with the same fingerprint hold byte-identical codes,
        counts, sizes and worker→atom mapping for the same attribute order —
        the identity the service's cross-job cache keys entries on.  The
        digest covers array *shapes* too, so reshaped-but-equal-bytes data
        cannot alias.
        """
        import hashlib

        digest = hashlib.sha256()
        digest.update(repr(tuple(self.attribute_names)).encode())
        for array in (self.codes, self.counts, self.sizes, self.worker_atom):
            digest.update(repr((array.shape, str(array.dtype))).encode())
            digest.update(np.ascontiguousarray(array).tobytes())
        return digest.hexdigest()

    # -------------------------------------------------------------- resolution

    def rows_for_constraints(
        self, constraints: Sequence[tuple[str, int]]
    ) -> np.ndarray:
        """Atom rows whose codes satisfy a constraint conjunction.

        Raises ``KeyError`` for a constraint on an unknown attribute (the
        caller falls back to the member path, which raises the canonical
        error).
        """
        if not constraints:
            return np.arange(self.n_atoms, dtype=np.int64)
        mask = np.ones(self.n_atoms, dtype=bool)
        for name, code in constraints:
            mask &= self.codes[:, self.attribute_index(name)] == code
        return np.flatnonzero(mask)

    def resolve(self, partition: "Partition") -> "np.ndarray | None":
        """Atom rows of one partition, or None when it cannot be trusted.

        Resolution is purely constraint-based (never touches the member
        array) and is accepted only when the matched atoms' total size
        equals the partition's size — the cross-check that rejects
        partitions whose constraints do not describe their members.
        """
        try:
            rows = self.rows_for_constraints(partition.constraints)
        except KeyError:
            return None
        if rows.shape[0] == 0 or int(self.sizes[rows].sum()) != partition.size:
            return None
        return rows

    def verify(self, partition: "Partition", rows: np.ndarray) -> bool:
        """Strong (O(|partition|)) check that ``rows`` is exactly the atom
        set of the partition's members; used by the property tests."""
        members = np.bincount(
            self.worker_atom[partition.indices], minlength=self.n_atoms
        )
        expected = np.zeros(self.n_atoms, dtype=np.int64)
        expected[rows] = self.sizes[rows]
        return bool(np.array_equal(members, expected))

    # ------------------------------------------------------------- aggregation

    def histogram(self, rows: np.ndarray) -> np.ndarray:
        """Int64 score histogram of the union of ``rows`` (exact row-sum,
        equal to ``bincount`` over the matching member indices)."""
        return self.counts[rows].sum(axis=0)

    def split_rows(self, rows: np.ndarray, attribute: str) -> list[np.ndarray]:
        """Group ``rows`` by one attribute's code column.

        Returns the non-empty groups ordered by ascending code — the exact
        child order :func:`~repro.core.splitting.split_partition` produces —
        so downstream histogram stacks match the member path row for row.
        """
        column = self.codes[rows, self.attribute_index(attribute)]
        order = np.argsort(column, kind="stable")
        sorted_rows = rows[order]
        sorted_codes = column[order]
        boundaries = np.flatnonzero(sorted_codes[1:] != sorted_codes[:-1]) + 1
        return np.split(sorted_rows, boundaries)

    def __repr__(self) -> str:
        return (
            f"AtomTable(n_atoms={self.n_atoms}, bins={self.bins}, "
            f"attributes={list(self.attribute_names)})"
        )
