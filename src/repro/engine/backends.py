"""Pluggable execution backends for candidate-partitioning evaluation.

The expensive fan-out in the search algorithms is "score this batch of
candidate partitionings" (exhaustive enumeration chunks, beam-level
expansions).  :class:`EvaluationEngine` routes those batches through an
:class:`ExecutionBackend`:

* :class:`SequentialBackend` — in-process, cache-aware, the default.
* :class:`ProcessPoolBackend` — fans batches out across worker processes.
  Workers are initialised once per run with the digitised scores, the
  histogram spec and the metric, so a task is just a list of member-index
  arrays; every worker computes objectives through the *same*
  :func:`~repro.engine.kernels.full_objective` code path as the sequential
  engine, which keeps results bit-identical across backends.

Backends are selected from the CLI via ``--engine-backend
{sequential,process}`` and ``--engine-workers N`` and are recorded in
:class:`AlgorithmResult` so the benchmark harness can attribute runtimes.
With tracing enabled on the engine, each process-pool batch records
``backend.process.dispatch`` / ``backend.process.collect`` spans and the
matching ``backend.*_seconds`` timing histograms.
"""

from __future__ import annotations

import abc
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.exceptions import PartitioningError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.partition import Partition
    from repro.engine.engine import EvaluationEngine

__all__ = [
    "ExecutionBackend",
    "SequentialBackend",
    "ProcessPoolBackend",
    "available_backends",
    "get_backend",
]


class ExecutionBackend(abc.ABC):
    """Strategy for evaluating batches of candidate partitionings."""

    #: Registry key recorded in results (``sequential`` / ``process``).
    name: str = ""
    #: Degree of parallelism this backend provides.
    workers: int = 1

    @abc.abstractmethod
    def score_partitionings(
        self,
        engine: "EvaluationEngine",
        candidates: Sequence[Sequence["Partition"]],
    ) -> list[float]:
        """Objective value of every candidate, in input order."""

    def close(self) -> None:
        """Release any resources (worker processes); idempotent."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SequentialBackend(ExecutionBackend):
    """Evaluate candidates in-process through the engine's cached path."""

    name = "sequential"
    workers = 1

    def score_partitionings(
        self,
        engine: "EvaluationEngine",
        candidates: Sequence[Sequence["Partition"]],
    ) -> list[float]:
        engine.metrics.inc("backend.batches")
        engine.metrics.inc("backend.candidates", len(candidates))
        return [engine.unfairness(candidate) for candidate in candidates]


# ----------------------------------------------------------- process workers
#
# Worker-side state lives in module globals set by the pool initializer, so
# a scoring task only ships the candidate member-index arrays.

_WORKER_STATE: dict = {}


def _init_worker(payload: dict) -> None:  # pragma: no cover - runs in workers
    global _WORKER_STATE
    _WORKER_STATE = payload


def _score_chunk(
    chunk: "list[list[np.ndarray]]",
) -> list[float]:  # pragma: no cover - runs in workers
    from repro.engine.kernels import full_objective

    spec = _WORKER_STATE["spec"]
    metric = _WORKER_STATE["metric"]
    bin_idx = _WORKER_STATE["bin_idx"]
    weighting = _WORKER_STATE["weighting"]
    values: list[float] = []
    for member_arrays in chunk:
        if len(member_arrays) < 2:
            values.append(0.0)
            continue
        pmfs = np.vstack(
            [
                spec.histogram_from_bin_indices(bin_idx[members]) / members.shape[0]
                for members in member_arrays
            ]
        )
        weights = None
        if weighting == "size":
            weights = np.array(
                [members.shape[0] for members in member_arrays], dtype=np.float64
            )
        value, _ = full_objective(metric, pmfs, spec, weights)
        values.append(value)
    return values


class ProcessPoolBackend(ExecutionBackend):
    """Fan candidate evaluation out across a pool of worker processes.

    Parameters
    ----------
    workers:
        Pool size (default: ``os.cpu_count()``).
    chunk_size:
        Candidates per task; default splits each batch into roughly
        ``4 * workers`` tasks so stragglers rebalance.
    """

    name = "process"

    def __init__(self, workers: "int | None" = None, chunk_size: "int | None" = None) -> None:
        resolved = int(workers) if workers else (os.cpu_count() or 1)
        if resolved < 1:
            raise PartitioningError(f"workers must be >= 1, got {resolved}")
        self.workers = resolved
        self.chunk_size = chunk_size
        self._pool: "ProcessPoolExecutor | None" = None
        self._engine_id: "int | None" = None

    def _ensure_pool(self, engine: "EvaluationEngine") -> ProcessPoolExecutor:
        if self._pool is not None and self._engine_id != id(engine):
            # A backend instance is reusable across runs; re-seed the
            # workers with the new engine's scores/metric.
            self.close()
        if self._pool is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context()
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(engine.worker_payload(),),
            )
            self._engine_id = id(engine)
        return self._pool

    def score_partitionings(
        self,
        engine: "EvaluationEngine",
        candidates: Sequence[Sequence["Partition"]],
    ) -> list[float]:
        if not candidates:
            return []
        metrics = engine.metrics
        with engine.tracer.span(
            "backend.process.dispatch", n_candidates=len(candidates)
        ) as dispatch_span, metrics.time("backend.dispatch_seconds"):
            pool = self._ensure_pool(engine)
            tasks = [[p.indices for p in candidate] for candidate in candidates]
            chunk_size = self.chunk_size or max(
                1, len(tasks) // (4 * self.workers) or 1
            )
            chunks = [
                tasks[i : i + chunk_size] for i in range(0, len(tasks), chunk_size)
            ]
            dispatch_span.set(n_chunks=len(chunks), chunk_size=chunk_size)
        values: list[float] = []
        with engine.tracer.span(
            "backend.process.collect", n_chunks=len(chunks)
        ), metrics.time("backend.collect_seconds"):
            for result in pool.map(_score_chunk, chunks):
                values.extend(result)
        metrics.inc("backend.batches")
        metrics.inc("backend.candidates", len(candidates))
        engine.record_external_evaluations(candidates)
        return values

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._engine_id = None


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`get_backend` (and the CLI ``--engine-backend``)."""
    return ("sequential", "process")


def get_backend(
    backend: "str | ExecutionBackend | None", workers: "int | None" = None
) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through)."""
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None or backend == "sequential":
        return SequentialBackend()
    if backend == "process":
        return ProcessPoolBackend(workers)
    raise PartitioningError(
        f"unknown backend {backend!r}; available: {available_backends()}"
    )
