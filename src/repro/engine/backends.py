"""Pluggable execution backends for candidate-partitioning evaluation.

The expensive fan-out in the search algorithms is "score this batch of
candidate partitionings" (exhaustive enumeration chunks, beam-level
expansions).  :class:`EvaluationEngine` routes those batches through an
:class:`ExecutionBackend`:

* :class:`SequentialBackend` — in-process, cache-aware, the default.
* :class:`ProcessPoolBackend` — fans batches out across worker processes.
  Workers are initialised once per run with the digitised scores, the
  histogram spec and the metric, so a task is just a list of member-index
  arrays; every worker computes objectives through the *same*
  :func:`~repro.engine.kernels.full_objective` code path as the sequential
  engine, which keeps results bit-identical across backends.

The process pool is **fault tolerant** (PR 3): each chunk is dispatched
with an optional deadline and retried under the backend's
:class:`~repro.engine.resilience.RetryPolicy` — stragglers are re-dispatched
on timeout, crashed chunks are retried with exponential backoff + jitter, a
broken pool is rebuilt, and when the pool is irrecoverable the batch (and,
for repeated pool breakage, the whole backend) degrades to the in-process
sequential path, which computes the *same values* through the same kernels.
Exhausting the budget with fallback disabled raises a typed
:class:`~repro.exceptions.BackendExhaustedError`.  A seeded
:class:`~repro.engine.faults.FaultConfig` can be attached to inject crashes,
hangs and corrupt returns inside the workers (chaos mode / test harness).

Backends are selected from the CLI via ``--engine-backend
{sequential,process}`` and ``--engine-workers N`` and are recorded in
:class:`AlgorithmResult` so the benchmark harness can attribute runtimes.
With tracing enabled on the engine, each process-pool batch records
``backend.process.dispatch`` / ``backend.process.collect`` spans and the
matching ``backend.*_seconds`` timing histograms; fault-tolerance events
show up as ``backend.retry`` / ``backend.fallback`` spans and the
``engine.retries`` / ``engine.timeouts`` / ``engine.pool_rebuilds`` /
``engine.backend_fallbacks`` counters (see ``docs/robustness.md``).
"""

from __future__ import annotations

import abc
import multiprocessing
import os
import random
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.exceptions import (
    BackendExhaustedError,
    BackendTimeoutError,
    CorruptResultError,
    PartitioningError,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.partition import Partition
    from repro.engine.engine import EvaluationEngine
    from repro.engine.faults import FaultConfig
    from repro.engine.resilience import RetryPolicy

__all__ = [
    "ExecutionBackend",
    "SequentialBackend",
    "ProcessPoolBackend",
    "ShardedBackend",
    "available_backends",
    "get_backend",
]


class ExecutionBackend(abc.ABC):
    """Strategy for evaluating batches of candidate partitionings."""

    #: Registry key recorded in results (``sequential`` / ``process``).
    name: str = ""
    #: Degree of parallelism this backend provides.
    workers: int = 1

    @abc.abstractmethod
    def score_partitionings(
        self,
        engine: "EvaluationEngine",
        candidates: Sequence[Sequence["Partition"]],
    ) -> list[float]:
        """Objective value of every candidate, in input order."""

    def score_histogram_tasks(
        self, engine: "EvaluationEngine", tasks: "Sequence[list]"
    ) -> list[float]:
        """Objective value of every wire-format candidate, in input order.

        A task is a list of ``("a", atom_rows)`` / ``("m", member_indices)``
        entries — the atom-path dispatch format, where candidates exist only
        as histogram recipes, never as Partition objects.  The default runs
        in-process through the engine's cache-aware scoring path; the
        process backend overrides it to fan out across workers.
        """
        engine.metrics.inc("backend.batches")
        engine.metrics.inc("backend.candidates", len(tasks))
        return engine.score_tasks_inline(tasks)

    def close(self) -> None:
        """Release any resources (worker processes); idempotent."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SequentialBackend(ExecutionBackend):
    """Evaluate candidates in-process through the engine's cached path."""

    name = "sequential"
    workers = 1

    def score_partitionings(
        self,
        engine: "EvaluationEngine",
        candidates: Sequence[Sequence["Partition"]],
    ) -> list[float]:
        engine.metrics.inc("backend.batches")
        engine.metrics.inc("backend.candidates", len(candidates))
        return [engine.unfairness(candidate) for candidate in candidates]


# ----------------------------------------------------------- process workers
#
# Worker-side state lives in module globals set by the pool initializer.  The
# two big read-only arrays — the digitised scores and the atom count matrix —
# are published once through multiprocessing.shared_memory and attached here,
# so a scoring task ships only wire entries: ("a", atom_rows) for partitions
# resolvable on the atom table (a few dozen ints) or ("m", member_indices)
# for the legacy fallback.

_WORKER_STATE: dict = {}

#: Payload fields that may arrive as shared-memory descriptors.
_SHARED_FIELDS = ("bin_idx", "atom_counts")


def _shared_descriptor(array: np.ndarray) -> dict:
    """Copy one array into a new shared-memory segment; return its wire
    descriptor.  The caller owns the segment (close + unlink)."""
    from multiprocessing import shared_memory

    array = np.ascontiguousarray(array)
    segment = shared_memory.SharedMemory(create=True, size=max(1, array.nbytes))
    np.ndarray(array.shape, dtype=array.dtype, buffer=segment.buf)[...] = array
    return {
        "segment": segment,
        "shm_name": segment.name,
        "shape": array.shape,
        "dtype": str(array.dtype),
    }


def _init_worker(payload: dict) -> None:  # pragma: no cover - runs in workers
    global _WORKER_STATE
    from multiprocessing import shared_memory

    payload = dict(payload)
    attached = []
    for name in _SHARED_FIELDS:
        descriptor = payload.get(name)
        if isinstance(descriptor, dict):
            segment = shared_memory.SharedMemory(name=descriptor["shm_name"])
            attached.append(segment)
            array = np.ndarray(
                descriptor["shape"],
                dtype=np.dtype(descriptor["dtype"]),
                buffer=segment.buf,
            )
            array.setflags(write=False)
            payload[name] = array
    # Keep the SharedMemory handles alive for the worker's lifetime — the
    # arrays view their buffers.
    payload["_attached_segments"] = attached
    _WORKER_STATE = payload


def _score_wire_tasks(
    spec,
    metric,
    bin_idx: np.ndarray,
    weighting: str,
    atom_counts: "np.ndarray | None",
    chunk: "list[list[tuple]]",
    kernel: "str | None" = None,
) -> list[float]:
    """Score one chunk of wire-format candidates.

    The single scoring routine shared by pool workers and the parent's
    sequential-degradation path, so every execution route yields
    bit-identical values.  An ``("a", rows)`` entry is an int64 row-sum
    over the atom count matrix; an ``("m", members)`` entry is the legacy
    ``bincount`` over member indices — both divide the same integer counts
    by the same integer size, so the pmfs match bit for bit.  An
    ``("h", counts, size)`` entry is a pre-merged int64 histogram (the
    sharded backend's shard-sum output): the identical counts divided by
    the identical size, so it too lands on the same pmf bytes.
    """
    from repro.engine.kernels import DEFAULT_KERNEL, full_objective

    if kernel is None:
        kernel = DEFAULT_KERNEL
    values: list[float] = []
    for entries in chunk:
        if len(entries) < 2:
            values.append(0.0)
            continue
        pmfs = np.empty((len(entries), spec.bins), dtype=np.float64)
        sizes: list[int] = []
        for i, entry in enumerate(entries):
            kind, payload = entry[0], entry[1]
            if kind == "h":
                counts = payload
                size = int(entry[2])
            elif kind == "a":
                counts = atom_counts[payload].sum(axis=0)
                size = int(counts.sum())
            else:
                counts = spec.histogram_from_bin_indices(bin_idx[payload])
                size = int(payload.shape[0])
            pmfs[i] = counts / size
            sizes.append(size)
        weights = None
        if weighting == "size":
            weights = np.array(sizes, dtype=np.float64)
        value, _ = full_objective(metric, pmfs, spec, weights, kernel=kernel)
        values.append(value)
    return values


def _score_chunk(
    chunk: "list[list[tuple]]",
    task_key: "str | None" = None,
) -> list[float]:  # pragma: no cover - runs in workers
    faults = _WORKER_STATE.get("faults")
    if faults is not None and task_key is not None:
        faults.maybe_crash_or_hang(task_key)
    values = _score_wire_tasks(
        _WORKER_STATE["spec"],
        _WORKER_STATE["metric"],
        _WORKER_STATE["bin_idx"],
        _WORKER_STATE["weighting"],
        _WORKER_STATE.get("atom_counts"),
        chunk,
        _WORKER_STATE.get("kernel"),
    )
    if (
        faults is not None
        and task_key is not None
        and faults.roll("corrupt", task_key)
    ):
        values = faults.corrupt_values(values, task_key)
    return values


def _sum_wire_ranges(
    ranges: "list[tuple]",
) -> "list[np.ndarray]":  # pragma: no cover - runs in workers
    """Partial int64 histograms of one chunk of shard ranges.

    Each range is an ``("a", rows_slice)`` / ``("m", member_slice)`` entry
    exactly as in :func:`_score_wire_tasks`; the returned count vectors are
    the same integer sums that routine would compute for the slice, so
    merging contiguous slices back in shard order reproduces the unsharded
    histogram bit for bit (int64 addition is exact).
    """
    return _partial_histograms(
        _WORKER_STATE["spec"],
        _WORKER_STATE["bin_idx"],
        _WORKER_STATE.get("atom_counts"),
        ranges,
    )


def _partial_histograms(
    spec,
    bin_idx: "np.ndarray | None",
    atom_counts: "np.ndarray | None",
    ranges: "list[tuple]",
) -> "list[np.ndarray]":
    """Int64 count vector of every ``("a"|"m", slice)`` range, in order.

    Shared by pool workers and the parent's local fallback so a shard
    computed on either side carries identical integers.
    """
    out: "list[np.ndarray]" = []
    for kind, payload in ranges:
        if kind == "a":
            out.append(atom_counts[payload].sum(axis=0))
        else:
            out.append(spec.histogram_from_bin_indices(bin_idx[payload]))
    return out


class _ChunkTask:
    """Bookkeeping for one in-flight chunk: future, attempt, deadline."""

    __slots__ = ("future", "attempt", "deadline")

    def __init__(
        self, future: Future, attempt: int, deadline: "float | None"
    ) -> None:
        self.future = future
        self.attempt = attempt
        self.deadline = deadline


class ProcessPoolBackend(ExecutionBackend):
    """Fan candidate evaluation out across a pool of worker processes.

    Parameters
    ----------
    workers:
        Pool size (default: ``os.cpu_count()``).
    chunk_size:
        Candidates per task; default splits each batch into roughly
        ``4 * workers`` tasks so stragglers rebalance.
    policy:
        :class:`~repro.engine.resilience.RetryPolicy` governing per-chunk
        timeouts, retry budget, backoff and sequential degradation (default:
        ``RetryPolicy()`` — 3 retries, no timeout, fallback enabled).
    faults:
        Optional :class:`~repro.engine.faults.FaultConfig` shipped to the
        workers; injects seeded crashes/hangs/corruption per chunk attempt.
        Hang injection requires ``policy.timeout_seconds``.
    """

    name = "process"

    def __init__(
        self,
        workers: "int | None" = None,
        chunk_size: "int | None" = None,
        policy: "RetryPolicy | None" = None,
        faults: "FaultConfig | None" = None,
    ) -> None:
        from repro.engine.resilience import RetryPolicy

        resolved = int(workers) if workers else (os.cpu_count() or 1)
        if resolved < 1:
            raise PartitioningError(f"workers must be >= 1, got {resolved}")
        self.workers = resolved
        self.chunk_size = chunk_size
        self.policy = policy or RetryPolicy()
        self.faults = faults
        if (
            faults is not None
            and faults.hang_rate > 0
            and not self.policy.timeout_seconds
        ):
            raise PartitioningError(
                "hang injection on the process backend requires a per-chunk "
                "timeout (RetryPolicy.timeout_seconds / --engine-timeout)"
            )
        self._pool: "ProcessPoolExecutor | None" = None
        self._engine_key: "tuple[int, int] | None" = None
        self._batch_counter = 0
        self._rebuilds = 0
        self._degraded = False
        #: Shared-memory segments owned by the current pool (closed +
        #: unlinked with it; recreated by the next _ensure_pool).
        self._segments: list = []
        # Jitter source for backoff sleeps; seeded so reruns pace identically.
        self._rng = random.Random(0x5EED)

    @property
    def degraded(self) -> bool:
        """True once the pool was irrecoverable and the backend went sequential."""
        return self._degraded

    def _ensure_pool(self, engine: "EvaluationEngine") -> ProcessPoolExecutor:
        key = (id(engine), getattr(engine, "atom_version", 0))
        if self._pool is not None and self._engine_key != key:
            # A backend instance is reusable across runs; re-seed the
            # workers with the new engine's scores/metric.  The key includes
            # the engine's atom version, so a streaming engine that rebinds
            # to mutated counts republishes the shared-memory cube — and an
            # unchanged binding ("not dirty") keeps the live segments.
            self.close()
        if self._pool is None:
            try:
                context = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX platforms
                context = multiprocessing.get_context()
            payload = dict(engine.worker_payload())
            payload["faults"] = self.faults
            # Publish the big read-only arrays once through shared memory;
            # workers attach by name in _init_worker, so neither the fork
            # nor any task dispatch ever copies them.
            for name in _SHARED_FIELDS:
                array = payload.get(name)
                if array is not None:
                    descriptor = _shared_descriptor(array)
                    self._segments.append(descriptor.pop("segment"))
                    payload[name] = descriptor
            engine.metrics.set_gauge(
                "engine.shared_memory_bytes",
                sum(segment.size for segment in self._segments),
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(payload,),
            )
            self._engine_key = key
        return self._pool

    def score_partitionings(
        self,
        engine: "EvaluationEngine",
        candidates: Sequence[Sequence["Partition"]],
    ) -> list[float]:
        if not candidates:
            return []
        tasks = [
            [self._wire_entry(engine, p) for p in candidate]
            for candidate in candidates
        ]
        return self._score_wire_batch(engine, tasks)

    def score_histogram_tasks(
        self, engine: "EvaluationEngine", tasks: "Sequence[list]"
    ) -> list[float]:
        if not tasks:
            return []
        return self._score_wire_batch(engine, [list(task) for task in tasks])

    @staticmethod
    def _wire_entry(engine: "EvaluationEngine", partition: "Partition") -> tuple:
        """Cheapest dispatchable form of one partition: its atom rows when
        the engine can resolve them, its member indices otherwise."""
        rows = engine.atom_rows(partition)
        if rows is not None:
            return ("a", rows)
        return ("m", partition.indices)

    def _score_wire_batch(
        self, engine: "EvaluationEngine", tasks: "list[list[tuple]]"
    ) -> list[float]:
        metrics = engine.metrics
        batch = self._batch_counter
        self._batch_counter += 1
        if self._degraded:
            values = self._score_locally(engine, tasks)
        else:
            values = self._score_on_pool(engine, tasks, batch)
        metrics.inc("backend.batches")
        metrics.inc("backend.candidates", len(tasks))
        engine.record_external_evaluations(tasks)
        return values

    # -------------------------------------------------------- pool execution

    def _score_on_pool(
        self,
        engine: "EvaluationEngine",
        tasks: "list[list[tuple]]",
        batch: int,
    ) -> list[float]:
        metrics = engine.metrics
        with engine.tracer.span(
            "backend.process.dispatch", n_candidates=len(tasks)
        ) as dispatch_span, metrics.time("backend.dispatch_seconds"):
            pool = self._ensure_pool(engine)
            chunk_size = self.chunk_size or max(
                1, len(tasks) // (4 * self.workers) or 1
            )
            chunks = [
                tasks[i : i + chunk_size] for i in range(0, len(tasks), chunk_size)
            ]
            dispatch_span.set(n_chunks=len(chunks), chunk_size=chunk_size)
        try:
            with engine.tracer.span(
                "backend.process.collect", n_chunks=len(chunks)
            ), metrics.time("backend.collect_seconds"):
                per_chunk = self._collect(engine, pool, chunks, batch)
        except BackendExhaustedError as exc:
            if not self.policy.fallback_sequential:
                raise
            metrics.inc("engine.backend_fallbacks")
            if isinstance(exc.last_error, BrokenProcessPool):
                # The pool could not be kept alive; stop paying rebuild
                # costs and serve every later batch in-process.
                self._degraded = True
                self.close()
            with engine.tracer.span(
                "backend.fallback",
                reason=type(exc.last_error).__name__,
                n_candidates=len(tasks),
                degraded=self._degraded,
            ):
                return self._score_locally(engine, tasks)
        return [value for chunk_values in per_chunk for value in chunk_values]

    def _collect(
        self,
        engine: "EvaluationEngine",
        pool: ProcessPoolExecutor,
        chunks: "list[list[list[tuple]]]",
        batch: int,
    ) -> "list[list[float]]":
        """Gather all chunks, retrying/re-dispatching under the policy."""
        from repro.engine.resilience import validate_batch

        policy, metrics = self.policy, engine.metrics
        results: "dict[int, list[float]]" = {}
        state: "dict[int, _ChunkTask]" = {}
        for i in range(len(chunks)):
            try:
                state[i] = self._submit(pool, chunks, i, batch, 0)
            except BrokenProcessPool as exc:
                # A worker hard-crashed on an earlier batch; replace the
                # pool (re-dispatching anything already submitted) first.
                pool = self._rebuild_pool(engine, chunks, state, results, batch, exc)
                state[i] = self._submit(pool, chunks, i, batch, 0)
        while len(results) < len(chunks):
            try:
                current = {
                    task.future: i
                    for i, task in state.items()
                    if i not in results
                }
                done, _ = wait(
                    set(current),
                    timeout=self._wait_timeout(state, results),
                    return_when=FIRST_COMPLETED,
                )
                for future in done:
                    i = current[future]
                    task = state[i]
                    if task.future is not future:
                        continue  # superseded straggler; result discarded
                    try:
                        values = validate_batch(future.result(), len(chunks[i]))
                    except BrokenProcessPool:
                        raise
                    except CorruptResultError as exc:
                        metrics.inc("engine.corrupt_results")
                        pool = self._retry_chunk(engine, pool, chunks, state, i, batch, exc)
                    except Exception as exc:  # worker-raised, incl. crashes
                        metrics.inc("engine.worker_crashes")
                        pool = self._retry_chunk(engine, pool, chunks, state, i, batch, exc)
                    else:
                        results[i] = values
                if policy.timeout_seconds:
                    now = time.monotonic()
                    for i, task in list(state.items()):
                        if i in results or task.future.done():
                            continue
                        if task.deadline is not None and now >= task.deadline:
                            metrics.inc("engine.timeouts")
                            metrics.inc("engine.straggler_redispatches")
                            exc = BackendTimeoutError(
                                f"chunk {i} of batch {batch} exceeded "
                                f"{policy.timeout_seconds}s (attempt {task.attempt})"
                            )
                            pool = self._retry_chunk(
                                engine, pool, chunks, state, i, batch, exc
                            )
            except BrokenProcessPool as exc:
                pool = self._rebuild_pool(engine, chunks, state, results, batch, exc)
        return [results[i] for i in range(len(chunks))]

    def _submit(
        self,
        pool: ProcessPoolExecutor,
        chunks: "list[list[list[tuple]]]",
        i: int,
        batch: int,
        attempt: int,
    ) -> _ChunkTask:
        # The task key seeds worker-side fault decisions: retries roll
        # fresh dice, so injected faults are transient by construction.
        key = f"{batch}-{i}-{attempt}"
        future = pool.submit(_score_chunk, chunks[i], key)
        deadline = (
            time.monotonic() + self.policy.timeout_seconds
            if self.policy.timeout_seconds
            else None
        )
        return _ChunkTask(future, attempt, deadline)

    def _retry_chunk(
        self,
        engine: "EvaluationEngine",
        pool: ProcessPoolExecutor,
        chunks: "list[list[list[tuple]]]",
        state: "dict[int, _ChunkTask]",
        i: int,
        batch: int,
        exc: BaseException,
    ) -> ProcessPoolExecutor:
        """Re-dispatch one failed/straggling chunk, or give up typed."""
        task = state[i]
        if task.attempt >= self.policy.max_retries:
            raise BackendExhaustedError(task.attempt + 1, exc)
        engine.metrics.inc("engine.retries")
        with engine.tracer.span(
            "backend.retry",
            chunk=i,
            batch=batch,
            attempt=task.attempt + 1,
            error=type(exc).__name__,
        ):
            delay = self.policy.delay(task.attempt, self._rng)
            if delay:
                self.policy.sleep(delay)
        state[i] = self._submit(pool, chunks, i, batch, task.attempt + 1)
        return pool

    def _rebuild_pool(
        self,
        engine: "EvaluationEngine",
        chunks: "list[list[list[tuple]]]",
        state: "dict[int, _ChunkTask]",
        results: "dict[int, list[float]]",
        batch: int,
        exc: BaseException,
    ) -> ProcessPoolExecutor:
        """Replace a broken pool and re-dispatch every unfinished chunk.

        Each resubmission consumes one retry from its chunk's budget, so a
        crash-looping pool still terminates in a
        :class:`~repro.exceptions.BackendExhaustedError`.
        """
        metrics = engine.metrics
        metrics.inc("engine.pool_rebuilds")
        self._rebuilds += 1
        with engine.tracer.span(
            "backend.pool_rebuild", batch=batch, rebuilds=self._rebuilds
        ):
            self.close()
            delay = self.policy.delay(self._rebuilds - 1, self._rng)
            if delay:
                self.policy.sleep(delay)
            pool = self._ensure_pool(engine)
        for i, task in list(state.items()):
            if i in results:
                continue
            if task.attempt >= self.policy.max_retries:
                raise BackendExhaustedError(task.attempt + 1, exc)
            metrics.inc("engine.retries")
            state[i] = self._submit(pool, chunks, i, batch, task.attempt + 1)
        return pool

    def _wait_timeout(
        self,
        state: "dict[int, _ChunkTask]",
        results: "dict[int, list[float]]",
    ) -> "float | None":
        """How long ``wait`` may block: until the nearest chunk deadline."""
        if not self.policy.timeout_seconds:
            return None
        deadlines = [
            task.deadline
            for i, task in state.items()
            if i not in results and task.deadline is not None
        ]
        if not deadlines:
            return None
        return max(0.0, min(deadlines) - time.monotonic()) + 1e-3

    # ------------------------------------------------- sequential degradation

    def _score_locally(
        self, engine: "EvaluationEngine", tasks: "list[list[tuple]]"
    ) -> list[float]:
        """Compute a batch in-process through the exact worker code path."""
        payload = engine.worker_payload()
        return _score_wire_tasks(
            payload["spec"],
            payload["metric"],
            payload["bin_idx"],
            payload["weighting"],
            payload["atom_counts"],
            tasks,
            payload.get("kernel"),
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
            self._engine_key = None
        # Unlink the shared segments only after the pool is gone: the
        # workers' attached views must never outlive the backing memory.
        # Robust to double-close and to rebuilds racing worker death.
        for segment in self._segments:
            try:
                segment.close()
                segment.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover - defensive
                pass
        self._segments = []


class ShardedBackend(ProcessPoolBackend):
    """Split each *candidate's histograms* across worker processes by
    atom-range and merge deterministically.

    Where :class:`ProcessPoolBackend` parallelises across candidates (one
    chunk of whole tasks per worker), this backend parallelises *inside*
    large candidates: every ``("a", rows)`` / ``("m", members)`` wire entry
    with at least ``shard_min_rows`` rows is cut into up to ``workers``
    contiguous range shards, the pool computes each shard's partial int64
    histogram against the shared-memory count cube, and the parent merges
    the partials back **in shard order** before scoring the merged
    ``("h", counts, size)`` entries through the exact
    :func:`_score_wire_tasks` arithmetic.

    Bit-identity argument (pinned by ``tests/parity/test_sharded_parity.py``):
    the unsharded histogram is ``atom_counts[rows].sum(axis=0)`` — an exact
    int64 sum, so partial sums over contiguous slices re-added in slice
    order produce the *same integers*; the pmf is those integers divided by
    the same integer size, hence the same float64 bytes; and
    ``full_objective`` then sees inputs identical to the sequential path.
    Any pool failure degrades a shard (or the whole batch) to the identical
    local computation, so results never depend on where shards ran.

    Entries below ``shard_min_rows`` are summed locally — shipping a dozen
    atom ids to another process costs more than the row-sum itself.
    """

    name = "sharded"

    def __init__(
        self,
        workers: "int | None" = None,
        shard_min_rows: int = 512,
        chunk_size: "int | None" = None,
        policy: "RetryPolicy | None" = None,
        faults: "FaultConfig | None" = None,
    ) -> None:
        super().__init__(workers, chunk_size=chunk_size, policy=policy, faults=faults)
        if shard_min_rows < 2:
            raise PartitioningError(
                f"shard_min_rows must be >= 2, got {shard_min_rows}"
            )
        self.shard_min_rows = shard_min_rows

    def _score_wire_batch(
        self, engine: "EvaluationEngine", tasks: "list[list[tuple]]"
    ) -> list[float]:
        metrics = engine.metrics
        self._batch_counter += 1
        merged = self._merge_sharded(engine, tasks)
        values = self._score_locally(engine, merged)
        metrics.inc("backend.batches")
        metrics.inc("backend.candidates", len(tasks))
        engine.record_external_evaluations(tasks)
        return values

    def _merge_sharded(
        self, engine: "EvaluationEngine", tasks: "list[list[tuple]]"
    ) -> "list[list[tuple]]":
        """Tasks with every large entry replaced by its merged histogram."""
        out = [list(task) for task in tasks]
        plan: "list[tuple[int, int, int, int, int]]" = []
        shards: "list[tuple]" = []
        for ti, task in enumerate(out):
            for ei, entry in enumerate(task):
                kind, payload = entry[0], entry[1]
                if kind not in ("a", "m"):
                    continue
                n_rows = int(payload.shape[0])
                if n_rows < self.shard_min_rows:
                    continue
                n_shards = min(self.workers, n_rows // (self.shard_min_rows // 2))
                if n_shards < 2:
                    continue
                start = len(shards)
                shards.extend(
                    (kind, piece) for piece in np.array_split(payload, n_shards)
                )
                plan.append((ti, ei, start, n_shards, n_rows))
        if not plan or self._degraded:
            return out
        partials = self._partials(engine, shards)
        engine.metrics.inc("engine.shards_dispatched", len(shards))
        for ti, ei, start, n_shards, n_rows in plan:
            counts = partials[start].copy()
            for j in range(1, n_shards):  # merge in shard order: exact int64
                counts += partials[start + j]
            size = (
                int(counts.sum()) if out[ti][ei][0] == "a" else n_rows
            )
            out[ti][ei] = ("h", counts, size)
        return out

    def _partials(
        self, engine: "EvaluationEngine", shards: "list[tuple]"
    ) -> "list[np.ndarray]":
        """Every shard's partial histogram, via the pool when possible.

        Failed or irrecoverable chunks fall back to the parent's identical
        local sum, so a broken pool changes *where* integers are added,
        never which integers.
        """
        chunk_size = max(1, len(shards) // (2 * self.workers) or 1)
        chunks = [
            shards[i : i + chunk_size] for i in range(0, len(shards), chunk_size)
        ]
        results: "dict[int, list[np.ndarray]]" = {}
        pending = list(range(len(chunks)))
        attempt = 0
        while pending and not self._degraded and attempt <= self.policy.max_retries:
            failed: "list[int]" = []
            try:
                pool = self._ensure_pool(engine)
                futures = {i: pool.submit(_sum_wire_ranges, chunks[i]) for i in pending}
                for i, future in futures.items():
                    try:
                        results[i] = future.result()
                    except BrokenProcessPool:
                        raise
                    except Exception:
                        engine.metrics.inc("engine.worker_crashes")
                        failed.append(i)
            except BrokenProcessPool:
                engine.metrics.inc("engine.pool_rebuilds")
                self._rebuilds += 1
                self.close()
                failed = [i for i in pending if i not in results]
                if self._rebuilds > self.policy.max_retries:
                    self._degraded = True
            if failed and attempt < self.policy.max_retries and not self._degraded:
                engine.metrics.inc("engine.retries", len(failed))
            pending = failed
            attempt += 1
        if pending:  # exhausted: identical local arithmetic
            engine.metrics.inc("engine.backend_fallbacks")
            payload = engine.worker_payload()
            for i in pending:
                results[i] = _partial_histograms(
                    payload["spec"], payload["bin_idx"], payload["atom_counts"], chunks[i]
                )
        return [counts for i in range(len(chunks)) for counts in results[i]]


def available_backends() -> tuple[str, ...]:
    """Names accepted by :func:`get_backend` (and the CLI ``--engine-backend``)."""
    return ("sequential", "process", "sharded")


def get_backend(
    backend: "str | ExecutionBackend | None",
    workers: "int | None" = None,
    policy: "RetryPolicy | None" = None,
    faults: "FaultConfig | None" = None,
) -> ExecutionBackend:
    """Resolve a backend name (or pass an instance through).

    ``policy`` / ``faults`` attach fault tolerance and fault injection:

    * ``process`` handles both natively (per-chunk retries, worker-side
      injection);
    * ``sequential`` is wrapped in a
      :class:`~repro.engine.faults.FaultInjectionBackend` (when faults are
      enabled) inside a :class:`~repro.engine.resilience.RetryingBackend`
      (when a policy or faults are given), so chaos mode exercises the same
      retry machinery on both backends.

    An already-constructed :class:`ExecutionBackend` instance passes through
    unchanged (it owns its own policy).
    """
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend is None or backend == "sequential":
        from repro.engine.faults import FaultInjectionBackend
        from repro.engine.resilience import RetryingBackend

        resolved: ExecutionBackend = SequentialBackend()
        if faults is not None and faults.enabled:
            resolved = FaultInjectionBackend(resolved, faults)
        if policy is not None or (faults is not None and faults.enabled):
            resolved = RetryingBackend(resolved, policy)
        return resolved
    if backend == "process":
        return ProcessPoolBackend(workers, policy=policy, faults=faults)
    if backend == "sharded":
        return ShardedBackend(workers, policy=policy, faults=faults)
    raise PartitioningError(
        f"unknown backend {backend!r}; available: {available_backends()}"
    )
