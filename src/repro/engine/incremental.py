"""Incremental maintenance of the average-pairwise objective.

Every greedy step in the paper's algorithms perturbs the current frontier
locally — one partition splits into its children, or a few partitions merge
back — yet the seed code re-evaluated the whole objective from scratch
(O(k²) pairwise distances) for every candidate.  This module maintains the
frontier's dense pairwise-distance matrix and, for a split/merge candidate,
recomputes only the rows/columns of the partitions that changed:
``Δ · k + Δ²`` new distances instead of ``(k + Δ)²`` — O(k·Δ).

Two implementations share one interface so they can be replayed against
each other (the engine's property tests drive random split sequences
through both and require agreement to 1e-12):

* :class:`IncrementalObjective` — the real thing, matrix-maintaining.
* :class:`FullRecomputeObjective` — the reference, re-evaluating the whole
  frontier through the engine's full path on every query (what the engine's
  ``mode="full"`` baseline uses).

The ``unbalanced`` algorithm is the main in-tree consumer: scoring one
partition's candidate children against its siblings reuses the cached
sibling-sibling pair sum for every candidate attribute.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.core.partition import Partition
from repro.exceptions import PartitioningError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.engine import EvaluationEngine

__all__ = ["IncrementalObjective", "FullRecomputeObjective"]


class IncrementalObjective:
    """Average pairwise distance of a frontier, updated in O(k·Δ) per change.

    The frontier is an ordered list of partitions.  ``score_*`` methods
    answer what-if queries without mutating state; ``apply_*`` methods
    commit a change, splicing the cached matrix instead of recomputing it.
    """

    def __init__(self, engine: "EvaluationEngine", partitions: Sequence[Partition]) -> None:
        self.engine = engine
        self.partitions = list(partitions)
        self._pmfs = engine.pmf_matrix(self.partitions)
        self._weights = engine.partition_weights(self.partitions)
        self._matrix = engine.materialize_pairwise(self._pmfs)

    # ------------------------------------------------------------ inspection

    @property
    def k(self) -> int:
        """Number of partitions on the current frontier."""
        return len(self.partitions)

    def unfairness(self) -> float:
        """Objective value of the current frontier (from the cached matrix)."""
        if self.engine.trace_enabled:
            with self.engine.tracer.span(
                "engine.incremental.unfairness", k=self.k
            ) as span:
                self.engine.record_incremental_evaluation(self.k, new_pairs=0)
                value = self._value(self._pair_sum(), self.k, self._weights)
                span.set(value=value)
            return value
        self.engine.record_incremental_evaluation(self.k, new_pairs=0)
        return self._value(self._pair_sum(), self.k, self._weights)

    def pairwise_matrix(self) -> np.ndarray:
        """Copy of the maintained dense pairwise-distance matrix."""
        return self._matrix.copy()

    # -------------------------------------------------------------- what-ifs

    def score_split(self, index: int, children: Sequence[Partition]) -> float:
        """Objective if ``partitions[index]`` were replaced by ``children``."""
        return self.score_replace((index,), children)

    def score_merge(self, indices: Sequence[int], merged: Partition) -> float:
        """Objective if the partitions at ``indices`` were merged into one."""
        return self.score_replace(indices, (merged,))

    def score_add(self, added: Sequence[Partition]) -> float:
        """Objective of ``frontier ∪ added`` (the union-average query)."""
        return self.score_replace((), added)

    def score_add_pmfs(
        self, added_pmfs: np.ndarray, added_weights: "np.ndarray | None" = None
    ) -> float:
        """Objective of ``frontier ∪ added`` from precomputed pmfs.

        The atom path (``EvaluationEngine.split_pmfs``) produces candidate
        children as histogram stacks without ever materialising Partition
        objects; this scores them through the exact arithmetic of
        ``score_replace((), added)`` — same cross/within blocks, same pair
        accounting — so the two entry points agree bit for bit.
        ``added_weights`` must be the added sizes under size weighting and
        None under uniform weighting, mirroring ``partition_weights``.
        """
        engine = self.engine
        if not engine.trace_enabled:
            return self._score_add_pmfs_inner(added_pmfs, added_weights)
        with engine.tracer.span(
            "engine.incremental.replace",
            k=self.k,
            removed=0,
            added=int(added_pmfs.shape[0]),
        ) as span:
            value = self._score_add_pmfs_inner(added_pmfs, added_weights)
            span.set(value=value)
        engine.metrics.observe("engine.incremental_seconds", span.duration_seconds)
        return value

    def _score_add_pmfs_inner(
        self, added_pmfs: np.ndarray, added_weights: "np.ndarray | None"
    ) -> float:
        kept_idx = np.arange(self.k, dtype=np.int64)
        n_added = int(added_pmfs.shape[0])
        cross = self.engine.materialize_cross(added_pmfs, self._pmfs[kept_idx])
        within = self.engine.materialize_pairwise(added_pmfs)
        k_new = self.k + n_added
        self.engine.record_incremental_evaluation(
            k_new,
            new_pairs=n_added * self.k + n_added * (n_added - 1) // 2,
        )
        if self._weights is None:
            total = (
                self._pair_sum_over(kept_idx)
                + float(cross.sum())
                + 0.5 * float(within.sum())
            )
            return self._value(total, k_new, None)
        kept_w = self._weights[kept_idx]
        total = (
            self._pair_sum_over(kept_idx)
            + float(added_weights @ cross @ kept_w)
            + 0.5 * float(added_weights @ within @ added_weights)
        )
        weights = np.concatenate([kept_w, added_weights])
        return self._value(total, k_new, weights)

    def score_replace(
        self, removed: Sequence[int], added: Sequence[Partition]
    ) -> float:
        """Objective after removing positions ``removed`` and adding
        ``added``, computing only the added-vs-kept and added-vs-added
        distances."""
        value, _ = self._replace_blocks(removed, added)
        return value

    # --------------------------------------------------------------- commits

    def apply_split(self, index: int, children: Sequence[Partition]) -> None:
        self.apply_replace((index,), children)

    def apply_merge(self, indices: Sequence[int], merged: Partition) -> None:
        self.apply_replace(indices, (merged,))

    def apply_replace(
        self, removed: Sequence[int], added: Sequence[Partition]
    ) -> None:
        """Commit a replacement, splicing cached rows/columns (no distance
        recomputation beyond the new blocks)."""
        _, blocks = self._replace_blocks(removed, added)
        kept_idx, added_pmfs, added_weights, cross, within = blocks
        kept_matrix = self._matrix[np.ix_(kept_idx, kept_idx)]
        n_kept, n_added = kept_idx.shape[0], len(added)
        matrix = np.zeros((n_kept + n_added, n_kept + n_added), dtype=np.float64)
        matrix[:n_kept, :n_kept] = kept_matrix
        matrix[n_kept:, :n_kept] = cross
        matrix[:n_kept, n_kept:] = cross.T
        matrix[n_kept:, n_kept:] = within
        self._matrix = matrix
        kept_partitions = [self.partitions[i] for i in kept_idx]
        self.partitions = kept_partitions + list(added)
        self._pmfs = (
            np.vstack([self._pmfs[kept_idx], added_pmfs])
            if self.partitions
            else np.zeros((0, self.engine.spec.bins), dtype=np.float64)
        )
        if self._weights is not None:
            self._weights = np.concatenate([self._weights[kept_idx], added_weights])

    def update_pmf(
        self, index: int, pmf: np.ndarray, weight: "float | None" = None
    ) -> None:
        """Patch one frontier entry's histogram in place.

        The streaming layer uses this when a mutation batch changes the
        member set of an already-chosen group: only the touched entry's row
        and column of the cached matrix are recomputed — ``k - 1`` new
        distances instead of a C(k, 2) rebuild.  ``weight`` is the entry's
        new size under size weighting (required there, rejected otherwise
        to catch callers passing sizes the objective would ignore).
        """
        if not 0 <= index < self.k:
            raise PartitioningError(
                f"update position {index} out of range for k={self.k}"
            )
        pmf = np.asarray(pmf, dtype=np.float64)
        if pmf.shape != (self.engine.spec.bins,):
            raise PartitioningError(
                f"updated pmf has shape {pmf.shape}, expected ({self.engine.spec.bins},)"
            )
        if self._weights is not None and weight is None:
            raise PartitioningError("size weighting requires the updated weight")
        self._pmfs[index] = pmf
        cross = self.engine.materialize_cross(
            pmf[np.newaxis, :], self._pmfs
        ).ravel()
        cross[index] = 0.0
        self._matrix[index, :] = cross
        self._matrix[:, index] = cross
        if self._weights is not None:
            self._weights[index] = float(weight)
        self.engine.record_incremental_evaluation(self.k, new_pairs=self.k - 1)

    # -------------------------------------------------------------- internal

    def _replace_blocks(self, removed: Sequence[int], added: Sequence[Partition]):
        """Instrumentation shim: an ``engine.incremental.replace`` span (and
        ``engine.incremental_seconds`` timing) per split/merge what-if or
        commit when tracing is enabled; free otherwise."""
        engine = self.engine
        if not engine.trace_enabled:
            return self._replace_blocks_inner(removed, added)
        with engine.tracer.span(
            "engine.incremental.replace",
            k=self.k,
            removed=len(removed),
            added=len(added),
        ) as span:
            value, blocks = self._replace_blocks_inner(removed, added)
            span.set(value=value)
        engine.metrics.observe("engine.incremental_seconds", span.duration_seconds)
        return value, blocks

    def _replace_blocks_inner(
        self, removed: Sequence[int], added: Sequence[Partition]
    ):
        removed_set = set(int(i) for i in removed)
        if any(i < 0 or i >= self.k for i in removed_set):
            raise PartitioningError(
                f"replace positions {sorted(removed_set)} out of range for k={self.k}"
            )
        kept_idx = np.array(
            [i for i in range(self.k) if i not in removed_set], dtype=np.int64
        )
        added = list(added)
        added_pmfs = self.engine.pmf_matrix(added)
        added_weights = self.engine.partition_weights(added)

        cross = self.engine.materialize_cross(added_pmfs, self._pmfs[kept_idx])
        within = self.engine.materialize_pairwise(added_pmfs)

        k_new = kept_idx.shape[0] + len(added)
        self.engine.record_incremental_evaluation(
            k_new,
            new_pairs=len(added) * kept_idx.shape[0]
            + len(added) * (len(added) - 1) // 2,
        )

        if self._weights is None:
            total = (
                self._pair_sum_over(kept_idx)
                + float(cross.sum())
                + 0.5 * float(within.sum())
            )
            value = self._value(total, k_new, None)
        else:
            kept_w = self._weights[kept_idx]
            total = (
                self._pair_sum_over(kept_idx)
                + float(added_weights @ cross @ kept_w)
                + 0.5 * float(added_weights @ within @ added_weights)
            )
            weights = np.concatenate([kept_w, added_weights])
            value = self._value(total, k_new, weights)
        return value, (kept_idx, added_pmfs, added_weights, cross, within)

    def _pair_sum(self) -> float:
        if self._weights is None:
            return 0.5 * float(self._matrix.sum())
        return 0.5 * float(self._weights @ self._matrix @ self._weights)

    def _pair_sum_over(self, idx: np.ndarray) -> float:
        sub = self._matrix[np.ix_(idx, idx)]
        if self._weights is None:
            return 0.5 * float(sub.sum())
        w = self._weights[idx]
        return 0.5 * float(w @ sub @ w)

    @staticmethod
    def _value(total: float, k: int, weights: "np.ndarray | None") -> float:
        if k < 2:
            return 0.0
        if weights is None:
            return total / (k * (k - 1) / 2)
        weight_pairs = (weights.sum() ** 2 - float(weights @ weights)) / 2.0
        return total / weight_pairs if weight_pairs > 0 else 0.0


class FullRecomputeObjective:
    """Reference implementation: every query re-evaluates from scratch.

    Interface-compatible with :class:`IncrementalObjective`; used as the
    engine's ``mode="full"`` baseline and by the property tests that pin
    the incremental arithmetic to full recomputation.
    """

    def __init__(self, engine: "EvaluationEngine", partitions: Sequence[Partition]) -> None:
        self.engine = engine
        self.partitions = list(partitions)

    @property
    def k(self) -> int:
        return len(self.partitions)

    def unfairness(self) -> float:
        return self.engine.unfairness(self.partitions)

    def pairwise_matrix(self) -> np.ndarray:
        return self.engine.materialize_pairwise(
            self.engine.pmf_matrix(self.partitions)
        )

    def score_split(self, index: int, children: Sequence[Partition]) -> float:
        return self.score_replace((index,), children)

    def score_merge(self, indices: Sequence[int], merged: Partition) -> float:
        return self.score_replace(indices, (merged,))

    def score_add(self, added: Sequence[Partition]) -> float:
        return self.score_replace((), added)

    def score_replace(
        self, removed: Sequence[int], added: Sequence[Partition]
    ) -> float:
        return self.engine.unfairness(self._after(removed, added))

    def apply_split(self, index: int, children: Sequence[Partition]) -> None:
        self.apply_replace((index,), children)

    def apply_merge(self, indices: Sequence[int], merged: Partition) -> None:
        self.apply_replace(indices, (merged,))

    def apply_replace(
        self, removed: Sequence[int], added: Sequence[Partition]
    ) -> None:
        self.partitions = self._after(removed, added)

    def _after(
        self, removed: Sequence[int], added: Sequence[Partition]
    ) -> list[Partition]:
        removed_set = set(int(i) for i in removed)
        if any(i < 0 or i >= self.k for i in removed_set):
            raise PartitioningError(
                f"replace positions {sorted(removed_set)} out of range for k={self.k}"
            )
        kept = [p for i, p in enumerate(self.partitions) if i not in removed_set]
        return kept + list(added)
