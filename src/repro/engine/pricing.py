"""Re-pricing repaired score vectors against a fixed partitioning.

The mitigation loop keeps asking one question: *given the audit's worst
partitioning, how unfair is this candidate score vector?* — once for the
original scores, once per repaired vector.  Answering it through a fresh
:class:`~repro.core.unfairness.UnfairnessEvaluator` would re-digitise and
re-histogram per partition object; this module instead prices a whole
before/after pair in two vectorized passes:

* the partitioning is flattened once into a per-worker group-code array
  (like the atom table's cell codes);
* each score vector's group histograms come from **one** ``np.bincount``
  over ``code * bins + bin_index`` — O(n + k·bins), independent of how the
  partitions nest;
* the objective is scored by the engine's shared
  :func:`~repro.engine.kernels.full_objective` kernel, which is the same
  code path every search backend uses — so repaired-ranking prices are
  bit-comparable with audit results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.histogram import HistogramSpec
from repro.core.partition import Partitioning
from repro.engine.kernels import full_objective
from repro.exceptions import PartitioningError
from repro.metrics.base import HistogramDistance, get_metric

__all__ = ["RepricingReport", "partition_codes", "group_pmfs", "price_repair"]


def partition_codes(partitioning: Partitioning) -> np.ndarray:
    """Flatten a partitioning into one int64 group code per worker.

    ``codes[w]`` is the position of worker ``w``'s partition in iteration
    order; the full-disjoint-cover invariant guarantees every worker gets
    exactly one code.
    """
    codes = np.empty(partitioning.population_size, dtype=np.int64)
    for group, partition in enumerate(partitioning):
        codes[partition.indices] = group
    return codes


def group_pmfs(
    bin_idx: np.ndarray, codes: np.ndarray, k: int, bins: int
) -> np.ndarray:
    """Normalised per-group score histograms in one ``bincount`` pass."""
    counts = np.bincount(codes * bins + bin_idx, minlength=k * bins)
    counts = counts.reshape(k, bins).astype(np.float64)
    return counts / counts.sum(axis=1, keepdims=True)


@dataclass(frozen=True)
class RepricingReport:
    """Unfairness of one partitioning under two score vectors.

    ``pmfs_before`` / ``pmfs_after`` are the ``(k, bins)`` group histogram
    stacks the two objective values were computed from (exposed for
    reporting: per-group distribution shift).
    """

    unfairness_before: float
    unfairness_after: float
    pmfs_before: np.ndarray
    pmfs_after: np.ndarray


def price_repair(
    partitioning: Partitioning,
    scores_before: np.ndarray,
    scores_after: np.ndarray,
    hist_spec: "HistogramSpec | None" = None,
    metric: "str | HistogramDistance" = "emd",
    weighting: str = "uniform",
) -> RepricingReport:
    """Price a repair: the partitioning's unfairness before and after.

    Semantically identical to two
    :meth:`~repro.core.unfairness.UnfairnessEvaluator.unfairness` calls on
    the same partitioning (same spec, metric and weighting), but computed
    in two vectorized histogram passes plus two kernel evaluations.
    """
    spec = hist_spec or HistogramSpec()
    metric = get_metric(metric)
    if weighting not in ("uniform", "size"):
        raise PartitioningError(
            f"weighting must be 'uniform' or 'size', got {weighting!r}"
        )
    n = partitioning.population_size
    before = np.asarray(scores_before, dtype=np.float64)
    after = np.asarray(scores_after, dtype=np.float64)
    for label, scores in (("scores_before", before), ("scores_after", after)):
        if scores.shape != (n,):
            raise PartitioningError(
                f"{label} have shape {scores.shape}, expected ({n},)"
            )
        if not np.isfinite(scores).all():
            raise PartitioningError(f"{label} contain non-finite values")
    codes = partition_codes(partitioning)
    k = partitioning.k
    pmfs_before = group_pmfs(spec.bin_indices(before), codes, k, spec.bins)
    pmfs_after = group_pmfs(spec.bin_indices(after), codes, k, spec.bins)
    weights = None
    if weighting == "size":
        weights = np.array([p.size for p in partitioning], dtype=np.float64)
    value_before, _ = full_objective(metric, pmfs_before, spec, weights)
    value_after, _ = full_objective(metric, pmfs_after, spec, weights)
    return RepricingReport(
        unfairness_before=float(value_before),
        unfairness_after=float(value_after),
        pmfs_before=pmfs_before,
        pmfs_after=pmfs_after,
    )
