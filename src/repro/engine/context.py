"""The :class:`SearchContext` handed to every algorithm's ``_search``.

One object bundles everything a search needs — the population being
partitioned, the :class:`~repro.engine.engine.EvaluationEngine` that serves
every objective query, and the run's randomness source — so algorithms stop
owning evaluator plumbing and new engine capabilities (backends, modes,
counters) reach all of them at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.population import Population
from repro.engine.engine import EvaluationEngine

__all__ = ["SearchContext"]


@dataclass
class SearchContext:
    """Everything one algorithm run searches with.

    Attributes
    ----------
    population:
        Worker store whose protected attributes define the search space.
    engine:
        The evaluation substrate; all unfairness queries go through it.
    rng:
        Randomness source (only the ``r-*`` baselines draw from it).
    deadline:
        Optional cooperative budget (see :mod:`repro.engine.deadline`).
        Algorithms poll :meth:`should_stop` at every iteration boundary and
        wind down with a partial result once it expires; ``None`` (the
        default) makes the poll a single attribute check.
    deadline_hit:
        Set by the first :meth:`should_stop` poll that observed expiry; the
        run's :class:`~repro.core.algorithms.base.AlgorithmResult` carries
        it out as the partial-result flag.
    """

    population: Population
    engine: EvaluationEngine
    rng: np.random.Generator
    deadline: "object | None" = None
    deadline_hit: bool = False

    def should_stop(self) -> bool:
        """Poll the deadline at an iteration boundary.

        Returns True once the budget is spent; the first expiring poll sets
        :attr:`deadline_hit` and bumps the ``search.deadline_hits`` counter
        so flagged partial results are visible in metrics.  Never raises —
        partial results are the cooperative contract; callers that need
        hard failure use ``deadline.raise_if_expired()`` directly.
        """
        if self.deadline is None:
            return False
        if self.deadline_hit or self.deadline.expired():
            if not self.deadline_hit:
                self.deadline_hit = True
                self.metrics.inc("search.deadline_hits")
            return True
        return False

    @property
    def protected_names(self) -> tuple[str, ...]:
        """Shorthand for the population's protected attribute names."""
        return tuple(self.population.schema.protected_names)

    @property
    def tracer(self):
        """The engine's tracer (the disabled no-op tracer by default)."""
        return self.engine.tracer

    @property
    def metrics(self):
        """The engine's metrics registry."""
        return self.engine.metrics

    @property
    def backend_degraded(self) -> bool:
        """True when the engine's backend fell back to sequential execution
        after its worker pool became irrecoverable (see
        :mod:`repro.engine.resilience`); searches can consult this to shrink
        batch sizes once parallelism is gone."""
        return bool(getattr(self.engine.backend, "degraded", False))
