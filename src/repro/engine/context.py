"""The :class:`SearchContext` handed to every algorithm's ``_search``.

One object bundles everything a search needs — the population being
partitioned, the :class:`~repro.engine.engine.EvaluationEngine` that serves
every objective query, and the run's randomness source — so algorithms stop
owning evaluator plumbing and new engine capabilities (backends, modes,
counters) reach all of them at once.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.population import Population
from repro.engine.engine import EvaluationEngine

__all__ = ["SearchContext"]


@dataclass
class SearchContext:
    """Everything one algorithm run searches with.

    Attributes
    ----------
    population:
        Worker store whose protected attributes define the search space.
    engine:
        The evaluation substrate; all unfairness queries go through it.
    rng:
        Randomness source (only the ``r-*`` baselines draw from it).
    """

    population: Population
    engine: EvaluationEngine
    rng: np.random.Generator

    @property
    def protected_names(self) -> tuple[str, ...]:
        """Shorthand for the population's protected attribute names."""
        return tuple(self.population.schema.protected_names)

    @property
    def tracer(self):
        """The engine's tracer (the disabled no-op tracer by default)."""
        return self.engine.tracer

    @property
    def metrics(self):
        """The engine's metrics registry."""
        return self.engine.metrics

    @property
    def backend_degraded(self) -> bool:
        """True when the engine's backend fell back to sequential execution
        after its worker pool became irrecoverable (see
        :mod:`repro.engine.resilience`); searches can consult this to shrink
        batch sizes once parallelism is gone."""
        return bool(getattr(self.engine.backend, "degraded", False))
