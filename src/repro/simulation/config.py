"""The paper's simulation configuration.

Evaluation setting (paper, §Evaluation): two sets of active workers of sizes
500 and 7300 ("the estimated number of Amazon Mechanical Turk workers who are
active at any time", Stewart et al. 2015), each worker with

* six protected attributes — Gender = {Male, Female}, Country = {America,
  India, Other}, Year of Birth = [1950, 2009], Language = {English, Indian,
  Other}, Ethnicity = {White, African-American, Indian, Other}, Years of
  Experience = [0, 30];
* two observed attributes — LanguageTest = [25, 100] and
  ApprovalRate = [25, 100];

all "populated randomly so as to avoid injecting any bias in the data".

The two integer-valued protected attributes are bucketised (default: 5
equal-width buckets) for partitioning, following the paper's remark that its
exhaustive run used "a maximum of 5 values" per attribute (DESIGN.md §2.5).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.attributes import (
    CategoricalAttribute,
    IntegerAttribute,
    ObservedAttribute,
)
from repro.core.schema import WorkerSchema

__all__ = [
    "SMALL_WORKER_COUNT",
    "LARGE_WORKER_COUNT",
    "PaperConfig",
    "paper_schema",
]

#: Worker-set sizes used in the paper's simulation.
SMALL_WORKER_COUNT = 500
LARGE_WORKER_COUNT = 7300  # active AMT workers at any time (Stewart et al. 2015)


def paper_schema(
    year_of_birth_buckets: int = 5, experience_buckets: int = 5
) -> WorkerSchema:
    """The worker schema of the paper's simulated crowdsourcing platform."""
    return WorkerSchema(
        protected=(
            CategoricalAttribute("gender", ("Male", "Female")),
            CategoricalAttribute("country", ("America", "India", "Other")),
            IntegerAttribute("year_of_birth", 1950, 2009, buckets=year_of_birth_buckets),
            CategoricalAttribute("language", ("English", "Indian", "Other")),
            CategoricalAttribute(
                "ethnicity", ("White", "African-American", "Indian", "Other")
            ),
            IntegerAttribute("years_experience", 0, 30, buckets=experience_buckets),
        ),
        observed=(
            ObservedAttribute("language_test", 25.0, 100.0),
            ObservedAttribute("approval_rate", 25.0, 100.0),
        ),
    )


@dataclass(frozen=True)
class PaperConfig:
    """Knobs of the paper's simulation, with the paper's defaults.

    Attributes
    ----------
    n_workers:
        Size of the active worker set (500 or 7300 in the paper).
    seed:
        Root seed for population generation.
    histogram_bins:
        Bins of the score histograms (the paper says "equal bins over the
        range of f" without a count; we default to 10).
    year_of_birth_buckets / experience_buckets:
        Partitioning buckets for the two integer protected attributes.
    """

    n_workers: int = SMALL_WORKER_COUNT
    seed: int = 42
    histogram_bins: int = 10
    year_of_birth_buckets: int = 5
    experience_buckets: int = 5

    def schema(self) -> WorkerSchema:
        """The worker schema under this configuration."""
        return paper_schema(self.year_of_birth_buckets, self.experience_buckets)
