"""Checkpoint/resume for experiment runs.

A table2-style experiment (five algorithms x five scoring functions on
7300 workers) runs for hours; without checkpoints, one crashed worker or a
pre-empted machine throws all of it away.  :class:`CheckpointStore`
persists every completed algorithm x scoring-function *cell* to an atomic,
schema-versioned JSON file so an interrupted run resumed with
``repro-audit experiment ... --resume <dir>`` skips completed cells and —
because each cell's RNG is seeded independently from the run seed (see
:func:`~repro.simulation.runner.run_scenario`) — reproduces results
**bit-identical** to an uninterrupted run.

File layout (``<dir>/checkpoint.json``)::

    {
      "schema": "repro.checkpoint/v1",
      "fingerprint": {"scenario": ..., "seed": ..., "metric": ...,
                       "algorithms": [...], "functions": [...]},
      "cells": {
        "f1::balanced": {
          "row": {... ExperimentRow fields, engine counters included ...},
          "cell_seed": 123456789,
          "rng_state": {"bit_generator": "PCG64", "state": {...}, ...}
        }
      }
    }

* **Atomicity** — every update writes a temp file in the same directory,
  fsyncs, then ``os.replace``s it over the checkpoint, so a kill at any
  instant leaves either the old or the new file, never a torn one.
* **Schema versioning** — a file whose ``schema`` tag is unknown is
  rejected with :class:`~repro.exceptions.CheckpointError` rather than
  misread.
* **Fingerprinting** — resuming against a checkpoint recorded for a
  different scenario/seed/metric/algorithm set raises instead of silently
  merging incompatible cells.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.exceptions import CheckpointError
from repro.io.atomic import atomic_write_text, ensure_directory

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.simulation.runner import ExperimentRow

__all__ = ["CheckpointStore", "CHECKPOINT_SCHEMA", "cell_key"]

#: Format tag; bump on incompatible layout changes.
CHECKPOINT_SCHEMA = "repro.checkpoint/v1"


def cell_key(function: str, algorithm: str) -> str:
    """Stable key for one table cell."""
    return f"{function}::{algorithm}"


class CheckpointStore:
    """Atomic per-cell experiment checkpoints in one directory.

    Usage (what :func:`~repro.simulation.runner.run_scenario` does)::

        store = CheckpointStore(directory)
        completed = store.begin(fingerprint, resume=True)
        for cell in cells:
            if store.cell_key(...) in completed:  # skip, reuse stored row
                continue
            ...run...
            store.record(key, row, cell_seed, rng_state)
    """

    def __init__(self, directory: "str | Path", filename: str = "checkpoint.json") -> None:
        self.directory = Path(directory)
        self.path = self.directory / filename
        self._payload: "dict[str, Any] | None" = None

    # --------------------------------------------------------------- reading

    def exists(self) -> bool:
        return self.path.exists()

    def load(self) -> dict:
        """Parse and validate the checkpoint file.

        Raises :class:`~repro.exceptions.CheckpointError` when the file is
        missing, unparseable, or carries an unknown schema version.
        """
        if not self.path.exists():
            raise CheckpointError(f"no checkpoint file at {self.path}")
        try:
            payload = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"cannot read checkpoint {self.path}: {exc}") from exc
        schema = payload.get("schema") if isinstance(payload, dict) else None
        if schema != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"checkpoint {self.path} has schema {schema!r}; "
                f"this build reads {CHECKPOINT_SCHEMA!r}"
            )
        payload.setdefault("cells", {})
        return payload

    # --------------------------------------------------------------- writing

    def begin(self, fingerprint: dict, resume: bool = False) -> "dict[str, dict]":
        """Open the store for one run; returns the completed-cell map.

        With ``resume=True`` an existing file is validated (schema and
        fingerprint must match) and its cells are returned for skipping;
        otherwise a fresh checkpoint is written, discarding any previous
        file in the directory.
        """
        if resume and self.exists():
            payload = self.load()
            recorded = payload.get("fingerprint")
            if recorded != fingerprint:
                raise CheckpointError(
                    f"checkpoint {self.path} was recorded for a different run "
                    f"(checkpoint {recorded!r} vs requested {fingerprint!r}); "
                    "refusing to resume"
                )
            self._payload = payload
            return dict(payload["cells"])
        self._payload = {
            "schema": CHECKPOINT_SCHEMA,
            "fingerprint": fingerprint,
            "cells": {},
        }
        self._write()
        return {}

    def record(
        self,
        key: str,
        row: "ExperimentRow",
        cell_seed: int,
        rng_state: "dict | None" = None,
    ) -> None:
        """Persist one completed cell (atomic rewrite of the whole file)."""
        if self._payload is None:
            raise CheckpointError("CheckpointStore.record called before begin()")
        self._payload["cells"][key] = {
            "row": asdict(row),
            "cell_seed": int(cell_seed),
            "rng_state": rng_state,
        }
        self._write()

    def record_payload(self, key: str, payload: dict) -> None:
        """Persist one completed cell as a free-form JSON payload.

        Mitigation cells are not :class:`ExperimentRow` shaped (they carry
        before/after unfairness and utility metrics); they checkpoint as
        ``{"payload": ...}`` cells through the same atomic-rewrite path.
        """
        if self._payload is None:
            raise CheckpointError("CheckpointStore.record_payload called before begin()")
        self._payload["cells"][key] = {"payload": payload}
        self._write()

    def _write(self) -> None:
        ensure_directory(self.directory)
        atomic_write_text(
            self.path,
            json.dumps(self._payload, indent=2, sort_keys=True) + "\n",
            crash_scope="checkpoint",
        )

    @staticmethod
    def row_from_cell(cell: dict) -> "ExperimentRow":
        """Reconstruct the :class:`ExperimentRow` stored in one cell record."""
        from repro.simulation.runner import ExperimentRow

        data = dict(cell["row"])
        data["attributes_used"] = tuple(data.get("attributes_used", ()))
        return ExperimentRow(**data)

    def __repr__(self) -> str:
        return f"CheckpointStore({str(self.path)!r})"
