"""Named experiment scenarios: one per paper table/figure.

A :class:`Scenario` bundles a population with the scoring functions ranked
over it — everything an experiment run needs.  The four builders correspond
to the paper's artefacts (see DESIGN.md §5):

* :func:`figure1_scenario` — the 10-worker toy example (E1),
* :func:`table1_scenario` — 500 workers, random functions f1..f5 (E2),
* :func:`table2_scenario` — 7300 workers, random functions f1..f5 (E3),
* :func:`table3_scenario` — 7300 workers, biased functions f6..f9 (E4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.histogram import HistogramSpec
from repro.core.population import Population
from repro.marketplace.biased import paper_biased_functions
from repro.marketplace.scoring import LinearScoringFunction, ScoringFunction, paper_functions
from repro.simulation.config import (
    LARGE_WORKER_COUNT,
    SMALL_WORKER_COUNT,
    PaperConfig,
)
from repro.simulation.generator import generate_paper_population, toy_population

__all__ = [
    "Scenario",
    "figure1_scenario",
    "table1_scenario",
    "table2_scenario",
    "table3_scenario",
]


@dataclass(frozen=True)
class Scenario:
    """A population plus the scoring functions to audit on it."""

    name: str
    population: Population
    functions: dict[str, ScoringFunction]
    hist_spec: HistogramSpec

    def __post_init__(self) -> None:
        assert self.functions, "a scenario needs at least one scoring function"


def figure1_scenario() -> Scenario:
    """The toy example of Figure 1: 10 workers, f = the qualification score."""
    return Scenario(
        name="figure1-toy",
        population=toy_population(),
        functions={"f": LinearScoringFunction("f", {"qualification": 1.0})},
        hist_spec=HistogramSpec(bins=10),
    )


def table1_scenario(config: PaperConfig | None = None) -> Scenario:
    """Table 1: 500 workers, random qualification functions f1..f5."""
    config = config or PaperConfig(n_workers=SMALL_WORKER_COUNT)
    return _random_function_scenario("table1-500-workers", config)


def table2_scenario(config: PaperConfig | None = None) -> Scenario:
    """Table 2: 7300 workers (active-AMT estimate), functions f1..f5."""
    config = config or PaperConfig(n_workers=LARGE_WORKER_COUNT)
    return _random_function_scenario("table2-7300-workers", config)


def table3_scenario(config: PaperConfig | None = None, bias_seed: int = 7) -> Scenario:
    """Table 3: 7300 workers, biased-by-design functions f6..f9."""
    config = config or PaperConfig(n_workers=LARGE_WORKER_COUNT)
    population = generate_paper_population(
        config.n_workers,
        seed=config.seed,
        year_of_birth_buckets=config.year_of_birth_buckets,
        experience_buckets=config.experience_buckets,
    )
    return Scenario(
        name="table3-biased",
        population=population,
        functions=dict(paper_biased_functions(seed=bias_seed)),
        hist_spec=HistogramSpec(bins=config.histogram_bins),
    )


def _random_function_scenario(name: str, config: PaperConfig) -> Scenario:
    population = generate_paper_population(
        config.n_workers,
        seed=config.seed,
        year_of_birth_buckets=config.year_of_birth_buckets,
        experience_buckets=config.experience_buckets,
    )
    return Scenario(
        name=name,
        population=population,
        functions=dict(paper_functions()),
        hist_spec=HistogramSpec(bins=config.histogram_bins),
    )
