"""Random population generators.

The paper populates all attribute values "randomly so as to avoid injecting
any bias in the data ourselves": every attribute is drawn independently and
uniformly over its domain.  :func:`generate_population` does exactly that
for an arbitrary schema; :func:`generate_paper_population` binds it to the
paper's schema and sizes.

:func:`toy_population` builds the 10-worker Gender x Language example of the
paper's Figure 1: qualification scores are crafted so that the optimum
partitioning is {Male-English, Male-Indian, Male-Other, Female} — splitting
the male side by language separates genuinely different score distributions,
while the female scores are homogeneous across languages, so splitting them
further only adds near-identical histograms and drags the average down.
"""

from __future__ import annotations

import numpy as np

from repro.core.attributes import (
    CategoricalAttribute,
    IntegerAttribute,
    ObservedAttribute,
)
from repro.core.population import Population
from repro.core.schema import WorkerSchema
from repro.exceptions import PopulationError
from repro.simulation.config import paper_schema

__all__ = [
    "generate_population",
    "generate_paper_population",
    "toy_population",
    "TOY_OPTIMAL_GROUPS",
]


def generate_population(
    schema: WorkerSchema, n: int, rng: "np.random.Generator | int | None" = None
) -> Population:
    """Draw ``n`` workers with every attribute independent and uniform."""
    if n < 1:
        raise PopulationError(f"population size must be >= 1, got {n}")
    generator = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    protected: dict[str, np.ndarray] = {}
    for attr in schema.protected:
        if isinstance(attr, CategoricalAttribute):
            protected[attr.name] = generator.integers(0, attr.cardinality, size=n)
        elif isinstance(attr, IntegerAttribute):
            protected[attr.name] = generator.integers(attr.low, attr.high + 1, size=n)
        else:  # pragma: no cover - schema construction forbids this
            raise PopulationError(f"unsupported protected attribute type: {attr!r}")
    observed = {
        attr.name: generator.uniform(attr.low, attr.high, size=n)
        for attr in schema.observed
    }
    return Population(schema, protected, observed)


def generate_paper_population(
    n: int,
    seed: int = 42,
    year_of_birth_buckets: int = 5,
    experience_buckets: int = 5,
) -> Population:
    """A population under the paper's schema (see :func:`paper_schema`)."""
    schema = paper_schema(year_of_birth_buckets, experience_buckets)
    return generate_population(schema, n, np.random.default_rng(seed))


#: The partition labels of the toy example's optimum (paper Figure 1).
TOY_OPTIMAL_GROUPS: tuple[str, ...] = (
    "gender=Male ∧ language=English",
    "gender=Male ∧ language=Indian",
    "gender=Male ∧ language=Other",
    "gender=Female",
)


def toy_population() -> Population:
    """The toy example of the paper's Figure 1 (12 workers).

    Protected: gender (Male/Female) and language (English/Indian/Other).
    Observed: one ``qualification`` score in [0, 1] (the toy's f is the
    identity on this attribute).  Male scores separate by language (English
    high, Indian mid, Other low); female scores follow one distribution that
    is *identical across languages*, so splitting the female side adds
    indistinguishable histograms and lowers the average pairwise EMD.

    The optimum partitioning is therefore Figure 1's unbalanced tree —
    {Male-English, Male-Indian, Male-Other, Female} — and the scores are
    arranged so that gender is also the *worst first attribute*: the
    ``unbalanced`` heuristic recovers the optimum exactly, while
    ``balanced`` structurally cannot (it must split every partition on the
    same attribute, and the optimum keeps Female whole) — which is the
    paper's motivation for the unbalanced variant.
    """
    schema = WorkerSchema(
        protected=(
            CategoricalAttribute("gender", ("Male", "Female")),
            CategoricalAttribute("language", ("English", "Indian", "Other")),
        ),
        observed=(ObservedAttribute("qualification", 0.0, 1.0),),
    )
    genders = ["Male"] * 6 + ["Female"] * 6
    languages = [
        "English", "English",  # males, high scores
        "Indian", "Indian",    # males, mid scores
        "Other", "Other",      # males, low scores
        "English", "English", "Indian", "Indian", "Other", "Other",  # females
    ]
    qualification = [
        0.80, 0.75,  # male English
        0.50, 0.45,  # male Indian
        0.25, 0.20,  # male Other
        0.02, 0.98, 0.02, 0.98, 0.02, 0.98,  # females: same mix per language
    ]
    gender_attr = schema.protected_attribute("gender")
    language_attr = schema.protected_attribute("language")
    assert isinstance(gender_attr, CategoricalAttribute)
    assert isinstance(language_attr, CategoricalAttribute)
    return Population(
        schema,
        protected={
            "gender": gender_attr.encode(genders),
            "language": language_attr.encode(languages),
        },
        observed={"qualification": np.asarray(qualification)},
    )
