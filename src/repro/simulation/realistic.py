"""A realistic correlated population — stand-in for the Qapa/TaskRabbit data.

The paper's immediate future work is "to test our algorithms on real
datasets from Qapa and TaskRabbit".  That data is proprietary, so this
module builds the closest synthetic equivalent that exercises the same code
path (substitution documented in DESIGN.md §3): a population whose
attributes are *correlated* the way real marketplace data is, instead of the
paper's independent-uniform simulation.

Planted structure (controlled by ``bias_strength`` in [0, 1]):

* **country -> language**: American workers mostly report English, Indian
  workers Indian, with mixing controlled by the strength;
* **language -> language_test**: English speakers score higher on the
  (English) language test — the classic *indirect discrimination* channel:
  a requester weighting LanguageTest discriminates by language and hence by
  country without ever touching a protected attribute;
* **years_experience -> approval_rate**: longer-tenured workers have higher
  approval rates, so ApprovalRate-heavy scoring functions disadvantage young
  workers;
* **year_of_birth -> years_experience**: experience is physically bounded
  by age.

With ``bias_strength=0`` the generator degenerates to the paper's
independent-uniform simulation; at 1 the correlations are strongest.  Unlike
the paper's random data — where measured unfairness is sampling noise
(see :mod:`repro.analysis.significance`) — this population's unfairness is
real and must survive a permutation test.
"""

from __future__ import annotations

import numpy as np

from repro.core.population import Population
from repro.exceptions import PopulationError
from repro.simulation.config import paper_schema

__all__ = ["generate_realistic_population"]

# Country codes in the paper schema: 0=America, 1=India, 2=Other.
# Language codes: 0=English, 1=Indian, 2=Other.
#: P(language | country) at full bias strength, rows=country, cols=language.
_LANGUAGE_GIVEN_COUNTRY = np.array(
    [
        [0.85, 0.03, 0.12],  # America -> mostly English
        [0.25, 0.65, 0.10],  # India   -> mostly Indian
        [0.30, 0.10, 0.60],  # Other   -> mostly Other
    ]
)

#: Mean language-test score per language at full strength (range [25, 100]).
_TEST_MEAN_BY_LANGUAGE = np.array([82.0, 55.0, 48.0])


def generate_realistic_population(
    n: int,
    seed: int = 0,
    bias_strength: float = 1.0,
    year_of_birth_buckets: int = 5,
    experience_buckets: int = 5,
) -> Population:
    """Generate a marketplace population with realistic correlations.

    Parameters
    ----------
    n:
        Number of workers.
    seed:
        RNG seed; same seed, same population.
    bias_strength:
        0 reproduces the paper's independent-uniform simulation; 1 applies
        the full correlation structure described in the module docstring.
    """
    if n < 1:
        raise PopulationError(f"population size must be >= 1, got {n}")
    if not 0.0 <= bias_strength <= 1.0:
        raise PopulationError(
            f"bias_strength must be in [0, 1], got {bias_strength}"
        )
    rng = np.random.default_rng(seed)
    schema = paper_schema(year_of_birth_buckets, experience_buckets)

    gender = rng.integers(0, 2, size=n)
    country = rng.integers(0, 3, size=n)
    ethnicity = rng.integers(0, 4, size=n)
    year_of_birth = rng.integers(1950, 2010, size=n)

    # language | country: interpolate between uniform and the biased table.
    uniform = np.full((3, 3), 1.0 / 3.0)
    table = (1.0 - bias_strength) * uniform + bias_strength * _LANGUAGE_GIVEN_COUNTRY
    cdf = np.cumsum(table, axis=1)
    draws = rng.random(n)
    language = (draws[:, None] > cdf[country]).sum(axis=1)

    # experience bounded by age: uniform in [0, min(30, age - 16)].
    age = 2019 - year_of_birth  # the paper's publication year
    max_experience = np.minimum(30, np.maximum(age - 16, 0))
    experience_uniform = rng.integers(0, 31, size=n)
    experience_bounded = np.floor(rng.random(n) * (max_experience + 1)).astype(np.int64)
    take_bounded = rng.random(n) < bias_strength
    years_experience = np.where(take_bounded, experience_bounded, experience_uniform)

    # language_test | language: normal around the per-language mean, clipped.
    test_uniform = rng.uniform(25.0, 100.0, size=n)
    test_mean = _TEST_MEAN_BY_LANGUAGE[language]
    test_biased = np.clip(rng.normal(test_mean, 10.0), 25.0, 100.0)
    language_test = (1.0 - bias_strength) * test_uniform + bias_strength * test_biased

    # approval_rate | experience: rises with tenure, noisy, clipped.
    approval_uniform = rng.uniform(25.0, 100.0, size=n)
    approval_mean = 45.0 + 45.0 * (years_experience / 30.0)
    approval_biased = np.clip(rng.normal(approval_mean, 12.0), 25.0, 100.0)
    approval_rate = (
        (1.0 - bias_strength) * approval_uniform + bias_strength * approval_biased
    )

    return Population(
        schema,
        protected={
            "gender": gender,
            "country": country,
            "year_of_birth": year_of_birth,
            "language": language,
            "ethnicity": ethnicity,
            "years_experience": years_experience,
        },
        observed={"language_test": language_test, "approval_rate": approval_rate},
    )
