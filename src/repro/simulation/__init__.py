"""Simulation of the paper's evaluation: configuration, population
generators, named scenarios (one per table/figure) and the experiment
runner."""

from repro.simulation.config import (
    LARGE_WORKER_COUNT,
    SMALL_WORKER_COUNT,
    PaperConfig,
    paper_schema,
)
from repro.simulation.generator import (
    TOY_OPTIMAL_GROUPS,
    generate_paper_population,
    generate_population,
    toy_population,
)
from repro.simulation.realistic import generate_realistic_population
from repro.simulation.runner import ExperimentResult, ExperimentRow, run_scenario
from repro.simulation.scenarios import (
    Scenario,
    figure1_scenario,
    table1_scenario,
    table2_scenario,
    table3_scenario,
)

__all__ = [
    "PaperConfig",
    "paper_schema",
    "SMALL_WORKER_COUNT",
    "LARGE_WORKER_COUNT",
    "generate_population",
    "generate_paper_population",
    "toy_population",
    "TOY_OPTIMAL_GROUPS",
    "generate_realistic_population",
    "Scenario",
    "figure1_scenario",
    "table1_scenario",
    "table2_scenario",
    "table3_scenario",
    "run_scenario",
    "ExperimentResult",
    "ExperimentRow",
]
