"""Experiment runner: execute every (algorithm, scoring function) pair of a
scenario and collect the quantities the paper's tables report.

Randomised algorithms (``r-balanced``, ``r-unbalanced``) get a deterministic
per-cell seed derived from the run seed, the algorithm name and the function
name, so whole tables are reproducible while cells stay independent.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.core.algorithms import PAPER_ALGORITHMS, AlgorithmResult, get_algorithm
from repro.metrics.base import HistogramDistance
from repro.obs.tracer import NULL_TRACER
from repro.simulation.scenarios import Scenario

__all__ = [
    "ExperimentRow",
    "ExperimentResult",
    "experiment_fingerprint",
    "run_scenario",
]


@dataclass(frozen=True)
class ExperimentRow:
    """One cell of a paper table: one algorithm on one scoring function.

    The engine counters (cache hits, incremental vs full evaluations, pair
    distances materialised vs naive dense cost, backend, workers) travel
    with the cell so benchmark harnesses can attribute search effort.
    """

    scenario: str
    algorithm: str
    function: str
    unfairness: float
    runtime_seconds: float
    n_partitions: int
    n_evaluations: int
    attributes_used: tuple[str, ...]
    cache_hits: int = 0
    n_full_evaluations: int = 0
    n_incremental_evaluations: int = 0
    pair_distances_computed: int = 0
    pair_distances_full: int = 0
    backend: str = "sequential"
    workers: int = 1
    deadline_hit: bool = False

    @classmethod
    def from_result(
        cls, scenario: str, function: str, result: AlgorithmResult
    ) -> "ExperimentRow":
        return cls(
            scenario=scenario,
            algorithm=result.algorithm,
            function=function,
            unfairness=result.unfairness,
            runtime_seconds=result.runtime_seconds,
            n_partitions=result.partitioning.k,
            n_evaluations=result.n_evaluations,
            attributes_used=result.partitioning.attributes_used(),
            cache_hits=result.cache_hits,
            n_full_evaluations=result.n_full_evaluations,
            n_incremental_evaluations=result.n_incremental_evaluations,
            pair_distances_computed=result.pair_distances_computed,
            pair_distances_full=result.pair_distances_full,
            backend=result.backend,
            workers=result.workers,
            deadline_hit=result.deadline_hit,
        )


@dataclass(frozen=True)
class ExperimentResult:
    """All rows of one scenario run, with lookup helpers."""

    scenario: str
    rows: tuple[ExperimentRow, ...]

    def cell(self, algorithm: str, function: str) -> ExperimentRow:
        """The row for one (algorithm, function) pair."""
        for row in self.rows:
            if row.algorithm == algorithm and row.function == function:
                return row
        raise KeyError(f"no row for algorithm={algorithm!r}, function={function!r}")

    def algorithms(self) -> tuple[str, ...]:
        seen: list[str] = []
        for row in self.rows:
            if row.algorithm not in seen:
                seen.append(row.algorithm)
        return tuple(seen)

    def functions(self) -> tuple[str, ...]:
        seen: list[str] = []
        for row in self.rows:
            if row.function not in seen:
                seen.append(row.function)
        return tuple(seen)


def _cell_seed(run_seed: int, algorithm: str, function: str) -> int:
    """Deterministic, well-spread seed for one table cell."""
    key = f"{run_seed}:{algorithm}:{function}".encode()
    return zlib.crc32(key)


def experiment_fingerprint(
    scenario: Scenario,
    algorithms: "tuple[str, ...] | list[str]",
    metric: "str | HistogramDistance",
    seed: int,
) -> dict:
    """Identity of one experiment run, stored in its checkpoint.

    Two runs with equal fingerprints produce bit-identical rows (per-cell
    seeds depend only on the run seed and cell names), so a checkpoint is
    safe to resume exactly when fingerprints match.
    """
    metric_name = metric if isinstance(metric, str) else metric.name
    return {
        "scenario": scenario.name,
        "seed": int(seed),
        "metric": metric_name,
        "algorithms": list(algorithms),
        "functions": list(scenario.functions),
    }


def run_scenario(
    scenario: Scenario,
    algorithms: "tuple[str, ...] | list[str]" = PAPER_ALGORITHMS,
    metric: "str | HistogramDistance" = "emd",
    seed: int = 0,
    algorithm_options: "dict[str, dict[str, object]] | None" = None,
    backend: "str | None" = None,
    workers: "int | None" = None,
    tracer=None,
    metrics=None,
    retry_policy=None,
    fault_config=None,
    checkpoint=None,
    resume: bool = False,
    deadline=None,
    kernel: "str | None" = None,
    engine_factory=None,
) -> ExperimentResult:
    """Run every algorithm on every scoring function of a scenario.

    Parameters
    ----------
    scenario:
        Population + scoring functions (see :mod:`repro.simulation.scenarios`).
    algorithms:
        Registry names to run; defaults to the paper's five.
    metric:
        Histogram distance to optimise (paper: EMD).
    seed:
        Run seed for the randomised baselines.
    algorithm_options:
        Optional per-algorithm constructor options, e.g.
        ``{"exhaustive": {"budget": 10_000}}``.
    backend, workers:
        Execution backend for the evaluation engine (``"sequential"``
        default, ``"process"`` with ``workers`` processes).
    tracer, metrics:
        Observability hooks (see :mod:`repro.obs`): every (function,
        algorithm) cell runs inside a ``scenario.cell`` span and all engines
        mirror their counters into the shared ``metrics`` registry.
    retry_policy, fault_config:
        Fault tolerance / fault injection for the execution backend (see
        :mod:`repro.engine.resilience` and :mod:`repro.engine.faults`).
    checkpoint:
        A :class:`~repro.simulation.checkpoint.CheckpointStore` (or a
        directory path) where every completed cell is persisted atomically.
    resume:
        With ``checkpoint``, skip cells already recorded there; because
        cells are seeded independently, a resumed run's rows are
        bit-identical to an uninterrupted run with the same fingerprint.
    deadline:
        Optional cooperative budget shared by every cell (see
        :mod:`repro.engine.deadline`); cells past it return flagged partial
        rows (``deadline_hit=True``) instead of running on.
    kernel:
        Kernel backend for the distance computations (``"numpy"`` /
        ``"scalar"`` / ``"numba"``; ``None`` = default).  Bit-identical
        across backends, so rows are unchanged whichever is selected.
    engine_factory:
        Optional engine factory forwarded to every cell's
        :meth:`~repro.core.algorithms.base.PartitioningAlgorithm.run` —
        the audit service passes its cross-job cache wrapper here so
        repeated audits of the same tenant reuse atom tables and pair
        scores.
    """
    options = algorithm_options or {}
    run_tracer = tracer if tracer is not None else NULL_TRACER
    store = None
    completed: dict[str, dict] = {}
    if checkpoint is not None:
        from repro.simulation.checkpoint import CheckpointStore, cell_key

        store = (
            checkpoint
            if isinstance(checkpoint, CheckpointStore)
            else CheckpointStore(checkpoint)
        )
        fingerprint = experiment_fingerprint(scenario, algorithms, metric, seed)
        completed = store.begin(fingerprint, resume=resume)
    rows: list[ExperimentRow] = []
    with run_tracer.span(
        "scenario.run", scenario=scenario.name, seed=seed, resumed=bool(completed)
    ):
        for function_name, function in scenario.functions.items():
            scores = function(scenario.population)
            for algorithm_name in algorithms:
                if store is not None:
                    key = cell_key(function_name, algorithm_name)
                    if key in completed:
                        rows.append(store.row_from_cell(completed[key]))
                        if metrics is not None:
                            metrics.inc("checkpoint.cells_skipped")
                        continue
                algorithm = get_algorithm(
                    algorithm_name, **options.get(algorithm_name, {})
                )
                seed_value = _cell_seed(seed, algorithm_name, function_name)
                with run_tracer.span(
                    "scenario.cell",
                    scenario=scenario.name,
                    algorithm=algorithm_name,
                    function=function_name,
                ) as cell_span:
                    result = algorithm.run(
                        scenario.population,
                        scores,
                        hist_spec=scenario.hist_spec,
                        metric=metric,
                        rng=np.random.default_rng(seed_value),
                        backend=backend,
                        workers=workers,
                        tracer=tracer,
                        metrics=metrics,
                        retry_policy=retry_policy,
                        fault_config=fault_config,
                        deadline=deadline,
                        kernel=kernel,
                        engine_factory=engine_factory,
                    )
                    cell_span.set(
                        unfairness=result.unfairness,
                        runtime_seconds=result.runtime_seconds,
                    )
                row = ExperimentRow.from_result(scenario.name, function_name, result)
                rows.append(row)
                if store is not None:
                    # State of a fresh generator for this cell seed — enough
                    # to restart the cell's RNG stream from scratch on audit.
                    rng_state = np.random.default_rng(seed_value).bit_generator.state
                    store.record(key, row, seed_value, rng_state)
                    if metrics is not None:
                        metrics.inc("checkpoint.cells_written")
    return ExperimentResult(scenario=scenario.name, rows=tuple(rows))
