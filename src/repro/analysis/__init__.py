"""Statistical analysis of audit results: permutation significance tests,
sampling-noise floors, and workload-level aggregation."""

from repro.analysis.importance import AttributeImportance, attribute_importance
from repro.analysis.significance import (
    PermutationTestResult,
    noise_floor,
    permutation_test,
)
from repro.analysis.workload import (
    TaskAudit,
    WorkloadAuditSummary,
    audit_workload,
)

__all__ = [
    "AttributeImportance",
    "attribute_importance",
    "PermutationTestResult",
    "permutation_test",
    "noise_floor",
    "TaskAudit",
    "WorkloadAuditSummary",
    "audit_workload",
]
