"""Workload-level fairness auditing.

A marketplace serves many requesters, each with their own scoring weights —
auditing one function at a time misses the aggregate picture.  This module
audits a whole *task workload* and aggregates: how unfair is the platform on
average across queries, which protected attributes recur in the most unfair
partitionings, and which tasks are the worst offenders.

This is the operational question behind the paper's closing line ("it is up
to the user, requester or platform developer, to decide on the right
subsequent action"): a platform developer acts on workload-level evidence,
not a single query.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.core.audit import FairnessAuditor
from repro.core.histogram import HistogramSpec
from repro.core.population import Population
from repro.exceptions import ScoringError
from repro.marketplace.tasks import Task
from repro.metrics.base import HistogramDistance

__all__ = ["TaskAudit", "WorkloadAuditSummary", "audit_workload"]


@dataclass(frozen=True)
class TaskAudit:
    """One task's audit outcome within a workload.

    ``repair`` is the mitigation summary
    (:meth:`~repro.repair.RepairResult.as_dict`) when the workload ran with
    a repair strategy, else ``None``.
    """

    task_id: str
    unfairness: float
    n_groups: int
    attributes_used: tuple[str, ...]
    repair: "dict | None" = None


@dataclass(frozen=True)
class WorkloadAuditSummary:
    """Aggregated audit of a task workload."""

    audits: tuple[TaskAudit, ...]
    attribute_frequency: dict[str, int]

    @property
    def mean_unfairness(self) -> float:
        """Average unfairness across the workload's tasks."""
        return float(np.mean([a.unfairness for a in self.audits]))

    @property
    def max_unfairness(self) -> float:
        return float(max(a.unfairness for a in self.audits))

    def worst_task(self) -> TaskAudit:
        """The task whose scoring function is most unfair."""
        return max(self.audits, key=lambda a: a.unfairness)

    def recurring_attributes(self, min_fraction: float = 0.5) -> tuple[str, ...]:
        """Attributes appearing in at least ``min_fraction`` of task audits.

        These are the systematic bias channels a platform developer should
        look at first.
        """
        if not 0.0 < min_fraction <= 1.0:
            raise ScoringError(
                f"min_fraction must be in (0, 1], got {min_fraction}"
            )
        threshold = min_fraction * len(self.audits)
        return tuple(
            sorted(
                attribute
                for attribute, count in self.attribute_frequency.items()
                if count >= threshold
            )
        )

    def render(self) -> str:
        """Multi-line workload report."""
        lines = [
            f"workload audit over {len(self.audits)} tasks",
            f"  mean unfairness: {self.mean_unfairness:.3f}",
            f"  max unfairness : {self.max_unfairness:.3f} "
            f"(task {self.worst_task().task_id!r})",
            "  attribute frequency across most-unfair partitionings:",
        ]
        for attribute, count in sorted(
            self.attribute_frequency.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            lines.append(f"    {attribute}: {count}/{len(self.audits)}")
        repaired = [a for a in self.audits if a.repair is not None]
        if repaired:
            strategy = repaired[0].repair["strategy"]
            lines.append(f"  mitigation ({strategy}):")
            for audit in repaired:
                lines.append(
                    f"    {audit.task_id}: "
                    f"{audit.repair['unfairness_before']:.3f} -> "
                    f"{audit.repair['unfairness_after']:.3f} "
                    f"(ndcg@{audit.repair['k']} {audit.repair['ndcg_at_k']:.3f})"
                )
        return "\n".join(lines)


def audit_workload(
    population: Population,
    tasks: "list[Task] | tuple[Task, ...]",
    algorithm: str = "balanced",
    hist_spec: HistogramSpec | None = None,
    metric: "str | HistogramDistance" = "emd",
    rng: "np.random.Generator | int | None" = None,
    backend: "str | None" = None,
    workers: "int | None" = None,
    tracer=None,
    metrics=None,
    retry_policy=None,
    fault_config=None,
    repair_strategy: "str | None" = None,
    repair_options: "dict | None" = None,
    kernel: "str | None" = None,
) -> WorkloadAuditSummary:
    """Audit every task's scoring function over its eligible worker pool.

    Tasks with hard requirements are audited on the filtered pool their
    ranking actually sees (see :meth:`FairnessAuditor.audit_task`).
    ``backend`` / ``workers`` select the evaluation engine's execution
    backend per task; ``tracer`` / ``metrics`` attach observability hooks
    shared across the whole workload (see :mod:`repro.obs`).

    With ``repair_strategy`` set, each task's worst partitioning is also
    repaired (:func:`~repro.repair.repair_ranking` with ``repair_options``
    as keyword arguments) and the summary lands on
    :attr:`TaskAudit.repair`.
    """
    if not tasks:
        raise ScoringError("cannot audit an empty workload")
    auditor = FairnessAuditor(population, hist_spec, metric)
    audits: list[TaskAudit] = []
    frequency: Counter[str] = Counter()
    for task in tasks:
        report = auditor.audit_task(
            task,
            algorithm=algorithm,
            rng=rng,
            backend=backend,
            workers=workers,
            tracer=tracer,
            metrics=metrics,
            retry_policy=retry_policy,
            fault_config=fault_config,
            kernel=kernel,
        )
        attributes = report.result.partitioning.attributes_used()
        frequency.update(attributes)
        repair = None
        if repair_strategy is not None:
            from repro.repair import repair_ranking

            repair = repair_ranking(
                report.population,
                report.scores,
                report.result.partitioning,
                repair_strategy,
                hist_spec=auditor.hist_spec,
                metric=metric,
                **(repair_options or {}),
            ).as_dict()
        audits.append(
            TaskAudit(
                task_id=task.task_id,
                unfairness=report.unfairness,
                n_groups=report.result.partitioning.k,
                attributes_used=attributes,
                repair=repair,
            )
        )
    return WorkloadAuditSummary(
        audits=tuple(audits), attribute_frequency=dict(frequency)
    )
