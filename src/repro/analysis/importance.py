"""Per-attribute importance: the root-level split gains.

The paper frames ``worstAttribute`` as "akin to the [decision] made in
decision trees using gain functions".  This module exposes that view
directly: for every protected attribute, the unfairness its single split
induces — a ranked answer to "which attribute does this scoring function
discriminate on most?", useful both as an audit summary and to sanity-check
what the full search later combines.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.histogram import HistogramSpec
from repro.core.partition import Partition
from repro.core.population import Population
from repro.core.splitting import split_partition
from repro.core.unfairness import UnfairnessEvaluator
from repro.metrics.base import HistogramDistance

__all__ = ["AttributeImportance", "attribute_importance"]


@dataclass(frozen=True)
class AttributeImportance:
    """Unfairness of the single split on one protected attribute."""

    attribute: str
    unfairness: float
    n_groups: int

    def __str__(self) -> str:
        return f"{self.attribute}: {self.unfairness:.4f} over {self.n_groups} groups"


def attribute_importance(
    population: Population,
    scores: np.ndarray,
    hist_spec: HistogramSpec | None = None,
    metric: "str | HistogramDistance" = "emd",
    weighting: str = "uniform",
) -> list[AttributeImportance]:
    """Rank every protected attribute by its single-split unfairness.

    Returns one entry per attribute, sorted most-unfair first.  The top
    entry is by construction the attribute ``worstAttribute`` would pick at
    the root, so this is also a transparent trace of the algorithms' first
    decision.
    """
    evaluator = UnfairnessEvaluator(population, scores, hist_spec, metric, weighting)
    root = Partition(population.all_indices())
    rankings = []
    for attribute in population.schema.protected_names:
        children = split_partition(population, root, attribute)
        rankings.append(
            AttributeImportance(
                attribute=attribute,
                unfairness=evaluator.unfairness(children),
                n_groups=len(children),
            )
        )
    rankings.sort(key=lambda entry: (-entry.unfairness, entry.attribute))
    return rankings
