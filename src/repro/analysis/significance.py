"""Statistical significance of a discovered partitioning.

Tables 1–2 of the paper show that on *purely random* data every algorithm
still reports average EMD around 0.15–0.33: with hundreds of small cells,
pairwise histogram distances never vanish — they measure sampling noise.
The paper conjectures this ("We conjecture that it is due to the random
values of all attributes") but does not quantify it.  This module does, with
a permutation test:

    H0: the scoring function is blind to the partitioning — any assignment
        of the observed scores to workers is equally likely.

Under H0 the unfairness of the *same partition sizes* is distributed as the
unfairness of the partitioning after randomly permuting the score vector.
The p-value is the fraction of permutations whose unfairness reaches the
observed one.  A planted bias (Table 3) is significant at p ≈ 1/(n+1); the
"unfairness" found on random data (Tables 1–2) is consistent with its null.

The permutation loop is O(n + k·bins) per permutation: workers carry a
partition id, so all k histograms of a permuted score vector come from one
``bincount`` over ``partition_id * bins + bin_index``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.histogram import HistogramSpec
from repro.core.partition import Partitioning
from repro.exceptions import PartitioningError
from repro.metrics.emd import average_pairwise_emd

__all__ = ["PermutationTestResult", "permutation_test", "noise_floor"]


@dataclass(frozen=True)
class PermutationTestResult:
    """Outcome of a permutation test on a partitioning's unfairness.

    Attributes
    ----------
    observed:
        The unfairness of the partitioning under the true scores.
    null_mean / null_std:
        Moments of the unfairness under score permutations — the sampling
        "noise floor" for these partition sizes.
    p_value:
        Fraction of permutations (plus one, the standard add-one estimator)
        whose unfairness is >= observed.
    n_permutations:
        Number of permutations drawn.
    """

    observed: float
    null_mean: float
    null_std: float
    p_value: float
    n_permutations: int

    @property
    def excess(self) -> float:
        """How far the observed unfairness sits above the noise floor."""
        return self.observed - self.null_mean

    @property
    def significant(self) -> bool:
        """True at the conventional 0.05 level."""
        return self.p_value < 0.05

    def __str__(self) -> str:
        return (
            f"observed={self.observed:.4f}, noise floor={self.null_mean:.4f}"
            f"±{self.null_std:.4f}, p={self.p_value:.4f} "
            f"({self.n_permutations} permutations)"
        )


def _partition_labels(partitioning: Partitioning) -> np.ndarray:
    """Partition id of every worker (inverse of the member index arrays)."""
    labels = np.full(partitioning.population_size, -1, dtype=np.int64)
    for pid, partition in enumerate(partitioning):
        labels[partition.indices] = pid
    return labels


def _unfairness_from_labels(
    labels: np.ndarray,
    bin_idx: np.ndarray,
    k: int,
    spec: HistogramSpec,
    sizes: np.ndarray,
) -> float:
    flat = np.bincount(labels * spec.bins + bin_idx, minlength=k * spec.bins)
    pmfs = flat.reshape(k, spec.bins) / sizes[:, None]
    return average_pairwise_emd(pmfs, spec.bin_width)


def permutation_test(
    scores: np.ndarray,
    partitioning: Partitioning,
    hist_spec: HistogramSpec | None = None,
    n_permutations: int = 200,
    rng: "np.random.Generator | int | None" = None,
) -> PermutationTestResult:
    """Test whether a partitioning's unfairness exceeds sampling noise.

    Parameters
    ----------
    scores:
        The true score of every worker.
    partitioning:
        The partitioning whose unfairness is being tested (typically the
        output of an audit).
    hist_spec:
        Score binning (default: 10 equal bins over [0, 1]).
    n_permutations:
        Number of random score permutations to draw for the null.
    rng:
        Randomness source for the permutations.

    Notes
    -----
    The test keeps the partition *sizes* fixed and permutes scores, so it
    asks exactly: "could groups of these sizes look this different if the
    function ignored the protected attributes?".  It is valid for any
    partitioning, including one selected by searching — but note that a
    searched partitioning maximises the objective, so its p-value answers
    significance of *this grouping*, not of the search as a whole; for a
    search-adjusted test, re-run the search inside each permutation.
    """
    spec = hist_spec or HistogramSpec()
    scores = np.asarray(scores, dtype=np.float64)
    if scores.shape != (partitioning.population_size,):
        raise PartitioningError(
            f"scores have shape {scores.shape}, expected "
            f"({partitioning.population_size},)"
        )
    if n_permutations < 1:
        raise PartitioningError(
            f"need at least one permutation, got {n_permutations}"
        )
    generator = (
        rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    )

    labels = _partition_labels(partitioning)
    bin_idx = spec.bin_indices(scores)
    k = partitioning.k
    sizes = np.array([p.size for p in partitioning], dtype=np.float64)

    observed = _unfairness_from_labels(labels, bin_idx, k, spec, sizes)
    null = np.empty(n_permutations, dtype=np.float64)
    for i in range(n_permutations):
        null[i] = _unfairness_from_labels(
            labels, generator.permutation(bin_idx), k, spec, sizes
        )

    exceed = int(np.sum(null >= observed - 1e-12))
    return PermutationTestResult(
        observed=float(observed),
        null_mean=float(null.mean()),
        null_std=float(null.std()),
        p_value=(exceed + 1) / (n_permutations + 1),
        n_permutations=n_permutations,
    )


def noise_floor(
    sizes: "np.ndarray | list[int]",
    scores: np.ndarray,
    hist_spec: HistogramSpec | None = None,
    n_draws: int = 200,
    rng: "np.random.Generator | int | None" = None,
) -> tuple[float, float]:
    """Expected unfairness of *random* groups of the given sizes.

    Draws random disjoint groups of the given sizes from the score pool and
    returns (mean, std) of their average pairwise EMD.  This is the baseline
    any audit value should be compared against before it is read as bias —
    the quantity Tables 1–2 of the paper implicitly measure.
    """
    spec = hist_spec or HistogramSpec()
    sizes_arr = np.asarray(sizes, dtype=np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    if sizes_arr.sum() > scores.shape[0]:
        raise PartitioningError(
            f"group sizes sum to {sizes_arr.sum()} but only "
            f"{scores.shape[0]} scores are available"
        )
    if np.any(sizes_arr < 1):
        raise PartitioningError("every group size must be >= 1")
    generator = (
        rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    )
    bin_idx = spec.bin_indices(scores)
    k = sizes_arr.shape[0]
    labels_template = np.full(scores.shape[0], -1, dtype=np.int64)
    offset = 0
    for pid, size in enumerate(sizes_arr):
        labels_template[offset : offset + size] = pid
        offset += size

    values = np.empty(n_draws, dtype=np.float64)
    sizes_f = sizes_arr.astype(np.float64)
    for i in range(n_draws):
        permuted = generator.permutation(bin_idx)
        kept = permuted[labels_template >= 0]
        labels = labels_template[labels_template >= 0]
        flat = np.bincount(labels * spec.bins + kept, minlength=k * spec.bins)
        pmfs = flat.reshape(k, spec.bins) / sizes_f[:, None]
        values[i] = average_pairwise_emd(pmfs, spec.bin_width)
    return float(values.mean()), float(values.std())
