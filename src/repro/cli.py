"""Command-line interface.

The subcommands::

    repro-audit generate --workers 500 --seed 42 --out workers.csv
    repro-audit audit workers.csv --function f4 --algorithm balanced
    repro-audit compare workers.csv --function f7
    repro-audit significance workers.csv --function f6 --permutations 199
    repro-audit repair workers.csv --function f6 --amount 1.0
    repro-audit mitigate workers.csv --function f6 --strategy fair_topk
    repro-audit workload workers.csv tasks.json
    repro-audit experiment table1 --out table1.json
    repro-audit serve --workdir state/
    repro-audit submit --url http://127.0.0.1:8765 --id j1 --scenario figure1
    repro-audit jobs --workdir state/

``generate`` writes a synthetic population under the paper's schema;
``audit`` runs one algorithm on one scoring function and prints the report;
``compare`` runs every algorithm on one function side by side;
``significance`` permutation-tests the audited partitioning against its
sampling-noise null; ``repair`` quantile-aligns the scores across the
audited groups and reports the unfairness before/after; ``mitigate`` runs
the full detect→repair loop with any registered strategy (``fair_topk``,
``det_rerank``, ``quantile``) and reports unfairness before/after, NDCG@k
and per-group exposure deltas (see ``docs/mitigation.md``); ``experiment``
regenerates one of the paper's tables (table1, table2, table3) or the
Figure 1 toy example; ``serve`` runs the long-running audit daemon
(crash-safe job journal, bounded queue with backpressure, per-job
deadlines, graceful drain — see ``docs/service.md``); ``submit`` posts one
job (``--kind audit`` or ``--kind mitigate``) to a running daemon via
``POST /v1/jobs``; ``jobs`` lists job states from a daemon or straight
from a journal file.

The repair-using subcommands (``mitigate``, ``workload``, ``experiment``,
``submit``) share one strategy flag surface via ``_add_repair_arguments``:
``--strategy`` / ``--k`` / ``--min-proportion`` / ``--alpha`` /
``--amount`` / ``--variant`` — mirroring how ``_add_engine_arguments``
unifies the engine flags.

The four engine-using subcommands (``audit``, ``compare``, ``workload``,
``experiment``) share one flag surface:

* ``--engine-backend {sequential,process}`` / ``--engine-workers N`` select
  the evaluation engine's execution backend (``--workers`` keeps meaning
  *workers in the marketplace*, i.e. population size, on ``generate`` and
  ``experiment``);
* ``--trace-out FILE`` writes the run's span tree and metrics snapshot as
  JSON (see ``docs/observability.md``);
* ``--log-level LEVEL`` configures structured logging;
* ``--engine-retries`` / ``--engine-timeout`` / ``--engine-retry-backoff``
  / ``--engine-no-fallback`` configure the backend's fault tolerance and
  ``--inject-faults SPEC`` enables deterministic chaos testing (see
  ``docs/robustness.md``).

``experiment`` additionally supports ``--checkpoint-dir DIR`` (persist
every completed cell atomically) and ``--resume DIR`` (skip cells already
checkpointed there; results are bit-identical to an uninterrupted run).

The pre-observability spellings (``--backend`` everywhere, ``--workers``
for the pool size on ``audit``/``compare``) still parse as hidden aliases
but emit a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import Sequence

from repro.core.algorithms import PAPER_ALGORITHMS, available_algorithms
from repro.core.audit import FairnessAuditor
from repro.core.histogram import HistogramSpec
from repro.engine import KERNEL_BACKENDS, available_backends
from repro.io.serialization import (
    load_population,
    save_experiment_result,
    save_population,
)
from repro.marketplace.biased import paper_biased_functions
from repro.marketplace.scoring import paper_functions
from repro.metrics.base import available_metrics
from repro.obs import MetricsRegistry, Tracer, setup_logging, write_trace
from repro.obs.tracer import NULL_TRACER
from repro.reporting.paper_reference import TABLE1_EMD, TABLE2_EMD, TABLE3_EMD
from repro.reporting.tables import format_comparison_table, format_table
from repro.simulation.config import PaperConfig
from repro.simulation.generator import generate_paper_population
from repro.simulation.runner import run_scenario
from repro.simulation.scenarios import (
    figure1_scenario,
    table1_scenario,
    table2_scenario,
    table3_scenario,
)

__all__ = ["main", "build_parser"]


def _positive_int(value: str) -> int:
    parsed = int(value)
    if parsed < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {parsed}")
    return parsed


def _nonnegative_int(value: str) -> int:
    parsed = int(value)
    if parsed < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {parsed}")
    return parsed


def _positive_float(value: str) -> float:
    parsed = float(value)
    if parsed <= 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {parsed}")
    return parsed


def _fault_spec(value: str) -> "FaultConfig":
    from repro.engine.faults import FaultConfig

    try:
        return FaultConfig.parse(value)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


class _DeprecatedAlias(argparse.Action):
    """Hidden alias for a renamed option: stores into the new destination
    and emits a :class:`DeprecationWarning` (shown once per process under
    the default warning filter)."""

    def __init__(self, option_strings, dest, preferred: str = "", **kwargs):
        kwargs.setdefault("help", argparse.SUPPRESS)
        super().__init__(option_strings, dest, **kwargs)
        self.preferred = preferred

    def __call__(self, parser, namespace, values, option_string=None):
        warnings.warn(
            f"{option_string} is deprecated; use {self.preferred} instead",
            DeprecationWarning,
            stacklevel=2,
        )
        setattr(namespace, self.dest, values)


def _add_engine_arguments(
    parser: argparse.ArgumentParser,
    alias_backend: bool = False,
    alias_workers: bool = False,
) -> None:
    """The shared engine/observability flag surface of the four engine-using
    subcommands: ``--engine-backend`` / ``--engine-workers`` / ``--trace-out``
    / ``--log-level``, plus hidden deprecated aliases for the old spellings
    (``--backend``, and ``--workers`` where it meant the pool size)."""
    group = parser.add_argument_group("evaluation engine")
    group.add_argument(
        "--engine-backend",
        dest="engine_backend",
        default="sequential",
        choices=sorted(available_backends()),
        help="evaluation backend: sequential (default) or a process pool",
    )
    group.add_argument(
        "--engine-workers",
        dest="engine_workers",
        type=_positive_int,
        default=None,
        help="worker processes for --engine-backend process (default: all cores)",
    )
    group.add_argument(
        "--engine-kernel",
        dest="engine_kernel",
        default=None,
        choices=list(KERNEL_BACKENDS),
        help="distance-kernel backend: numpy (default, fused vectorised), "
        "scalar (per-pair reference), or numba (JIT-compiled; requires the "
        "optional numba dependency and a passing bit-identity self-check). "
        "All backends produce bit-identical results",
    )
    group.add_argument(
        "--engine-retries",
        dest="engine_retries",
        type=_nonnegative_int,
        default=None,
        metavar="N",
        help="retry a failed evaluation batch up to N times (default: 3 once "
        "any resilience flag is set)",
    )
    group.add_argument(
        "--engine-timeout",
        dest="engine_timeout",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="per-batch deadline; timed-out chunks are re-dispatched",
    )
    group.add_argument(
        "--engine-retry-backoff",
        dest="engine_retry_backoff",
        type=float,
        default=None,
        metavar="SECONDS",
        help="base delay between retries (doubles each attempt, with jitter)",
    )
    group.add_argument(
        "--engine-no-fallback",
        dest="engine_no_fallback",
        action="store_true",
        help="raise BackendExhaustedError instead of degrading to the "
        "sequential backend when retries run out",
    )
    group.add_argument(
        "--inject-faults",
        dest="inject_faults",
        type=_fault_spec,
        default=None,
        metavar="SPEC",
        help="deterministic chaos mode, e.g. "
        "'crash=0.3,hang=0.1,corrupt=0.05,seed=1' (see docs/robustness.md)",
    )
    group.add_argument(
        "--trace-out",
        dest="trace_out",
        default=None,
        metavar="FILE",
        help="write the run's span tree + metrics snapshot as JSON to FILE",
    )
    group.add_argument(
        "--log-level",
        dest="log_level",
        default=None,
        choices=["debug", "info", "warning", "error"],
        help="enable structured logging at this level",
    )
    if alias_backend:
        parser.add_argument(
            "--backend",
            dest="engine_backend",
            action=_DeprecatedAlias,
            preferred="--engine-backend",
            choices=sorted(available_backends()),
        )
    if alias_workers:
        parser.add_argument(
            "--workers",
            dest="engine_workers",
            action=_DeprecatedAlias,
            preferred="--engine-workers",
            type=_positive_int,
        )


def _unit_interval(value: str) -> float:
    parsed = float(value)
    if not 0.0 <= parsed <= 1.0:
        raise argparse.ArgumentTypeError(f"must be in [0, 1], got {parsed}")
    return parsed


def _add_repair_arguments(
    parser: argparse.ArgumentParser, default_strategy: "str | None" = None
) -> None:
    """The shared repair-strategy flag surface (``mitigate``, ``workload``,
    ``experiment``, ``submit``): ``--strategy`` / ``--k`` /
    ``--min-proportion`` / ``--alpha`` / ``--amount`` / ``--variant``,
    mirroring :func:`_add_engine_arguments`.  With ``default_strategy=None``
    the strategy is opt-in: no mitigation runs unless ``--strategy`` is
    given."""
    from repro.repair import available_strategies

    group = parser.add_argument_group("repair strategy")
    group.add_argument(
        "--strategy",
        default=default_strategy,
        choices=sorted(available_strategies()),
        help="repair strategy"
        + (
            f" (default: {default_strategy})"
            if default_strategy
            else " (omit to skip mitigation)"
        ),
    )
    group.add_argument(
        "--k",
        dest="top_k",
        type=_positive_int,
        default=None,
        metavar="N",
        help="re-rank/evaluation depth (default: the full population)",
    )
    group.add_argument(
        "--min-proportion",
        dest="min_proportion",
        type=_unit_interval,
        default=0.8,
        metavar="P",
        help="constraint tightness in (0, 1]: each group's target share is "
        "P times its population share (default 0.8)",
    )
    group.add_argument(
        "--alpha",
        dest="alpha",
        type=_unit_interval,
        default=0.1,
        metavar="A",
        help="significance level of fair_topk's binomial quota test "
        "(default 0.1; larger = stricter quotas)",
    )
    group.add_argument(
        "--amount",
        dest="amount",
        type=_unit_interval,
        default=1.0,
        metavar="X",
        help="quantile-repair interpolation strength in [0, 1] (default 1.0)",
    )
    group.add_argument(
        "--variant",
        default="greedy",
        choices=["greedy", "cons"],
        help="det_rerank variant: greedy (DetGreedy) or cons (DetCons)",
    )


def _repair_options(args: argparse.Namespace) -> dict:
    """Keyword arguments for :func:`repro.repair.repair_ranking` from the
    shared flag surface (strategy itself excluded)."""
    options = {
        "k": args.top_k,
        "min_proportion": args.min_proportion,
        "alpha": args.alpha,
        "amount": args.amount,
    }
    if args.strategy == "det_rerank":
        options["strategy_options"] = {"variant": args.variant}
    return options


def _resilience(args: argparse.Namespace) -> "tuple[object, object]":
    """(retry_policy, fault_config) for one command.

    Both stay ``None`` unless a resilience flag was given, keeping the
    plain backends on their zero-overhead path.  Hang injection without an
    explicit ``--engine-timeout`` gets a 5-second default so injected
    stragglers are re-dispatched instead of stalling the run.
    """
    from repro.engine.resilience import RetryPolicy

    faults = getattr(args, "inject_faults", None)
    timeout = getattr(args, "engine_timeout", None)
    if timeout is None and faults is not None and faults.hang_rate > 0:
        timeout = 5.0
    wants_policy = any(
        getattr(args, name, None) is not None
        for name in ("engine_retries", "engine_retry_backoff")
    ) or timeout is not None or getattr(args, "engine_no_fallback", False)
    if not wants_policy and faults is None:
        return None, None
    policy = RetryPolicy(
        max_retries=(
            args.engine_retries
            if getattr(args, "engine_retries", None) is not None
            else 3
        ),
        timeout_seconds=timeout,
        backoff_seconds=(
            args.engine_retry_backoff
            if getattr(args, "engine_retry_backoff", None) is not None
            else 0.05
        ),
        fallback_sequential=not getattr(args, "engine_no_fallback", False),
    )
    return policy, faults


def _observability(args: argparse.Namespace) -> "tuple[object, MetricsRegistry | None]":
    """(tracer, metrics) for one command: real instances only when the run
    is being traced, so untraced runs keep the no-op fast path."""
    if getattr(args, "log_level", None):
        setup_logging(args.log_level)
    if getattr(args, "trace_out", None):
        return Tracer(), MetricsRegistry()
    return NULL_TRACER, None


def _finish_trace(args: argparse.Namespace, tracer, metrics) -> None:
    """Write the span tree + metrics snapshot collected by a traced run."""
    if getattr(args, "trace_out", None):
        payload = write_trace(args.trace_out, tracer, metrics)
        print(f"wrote trace ({len(payload['spans'])} root spans) to {args.trace_out}")


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-audit",
        description="Audit ranking fairness in online job marketplaces (EDBT 2019 reproduction).",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="generate a synthetic worker population (paper schema)"
    )
    generate.add_argument("--workers", type=int, default=500, help="population size")
    generate.add_argument("--seed", type=int, default=42, help="generation seed")
    generate.add_argument("--out", required=True, help="output CSV path")

    audit = subparsers.add_parser(
        "audit", help="find the most unfair partitioning for one scoring function"
    )
    audit.add_argument("population", help="population CSV written by 'generate'")
    audit.add_argument(
        "--function",
        default="f1",
        help="scoring function: f1..f5 (random weights) or f6..f9 (biased)",
    )
    audit.add_argument(
        "--algorithm",
        default="balanced",
        choices=sorted(available_algorithms()),
        help="search algorithm",
    )
    audit.add_argument(
        "--metric",
        default="emd",
        choices=sorted(available_metrics()),
        help="histogram distance to maximise",
    )
    audit.add_argument("--bins", type=int, default=10, help="histogram bins")
    audit.add_argument("--seed", type=int, default=0, help="seed for randomised algorithms")
    audit.add_argument(
        "--histograms",
        action="store_true",
        help="append per-group ASCII score histograms to the report",
    )
    _add_engine_arguments(audit, alias_backend=True, alias_workers=True)

    compare = subparsers.add_parser(
        "compare", help="run every algorithm on one scoring function"
    )
    compare.add_argument("population", help="population CSV written by 'generate'")
    compare.add_argument("--function", default="f1", help="scoring function f1..f9")
    compare.add_argument("--seed", type=int, default=0, help="seed for randomised algorithms")
    _add_engine_arguments(compare, alias_backend=True, alias_workers=True)

    significance = subparsers.add_parser(
        "significance",
        help="permutation-test an audited partitioning against sampling noise",
    )
    significance.add_argument("population", help="population CSV written by 'generate'")
    significance.add_argument("--function", default="f1", help="scoring function f1..f9")
    significance.add_argument(
        "--algorithm",
        default="balanced",
        choices=sorted(available_algorithms()),
        help="search algorithm whose result is tested",
    )
    significance.add_argument(
        "--permutations", type=int, default=199, help="permutations for the null"
    )
    significance.add_argument("--seed", type=int, default=0, help="permutation seed")

    repair = subparsers.add_parser(
        "repair", help="quantile-align scores across the audited groups"
    )
    repair.add_argument("population", help="population CSV written by 'generate'")
    repair.add_argument("--function", default="f6", help="scoring function f1..f9")
    repair.add_argument(
        "--algorithm",
        default="balanced",
        choices=sorted(available_algorithms()),
        help="search algorithm used for the audit",
    )
    repair.add_argument(
        "--amount", type=float, default=1.0, help="repair strength in [0, 1]"
    )
    repair.add_argument(
        "--out", default=None, help="optional CSV path for the repaired scores"
    )

    mitigate = subparsers.add_parser(
        "mitigate",
        help="detect the most unfair partitioning, then repair the ranking",
    )
    mitigate.add_argument("population", help="population CSV written by 'generate'")
    mitigate.add_argument("--function", default="f6", help="scoring function f1..f9")
    mitigate.add_argument(
        "--algorithm",
        default="balanced",
        choices=sorted(available_algorithms()),
        help="search algorithm used for the audit",
    )
    mitigate.add_argument(
        "--metric",
        default="emd",
        choices=sorted(available_metrics()),
        help="histogram distance the repair is priced with",
    )
    mitigate.add_argument("--seed", type=int, default=0, help="audit seed")
    mitigate.add_argument(
        "--out", default=None, help="optional CSV path for the repaired ranking"
    )
    _add_repair_arguments(mitigate, default_strategy="fair_topk")

    workload = subparsers.add_parser(
        "workload", help="audit a JSON workload of tasks over a population"
    )
    workload.add_argument("population", help="population CSV written by 'generate'")
    workload.add_argument(
        "tasks",
        help=(
            "JSON file: list of task specs with keys id, title, weights "
            "(observed attribute -> weight), and optional positions / "
            "requirements (observed attribute -> minimum value)"
        ),
    )
    workload.add_argument(
        "--algorithm",
        default="balanced",
        choices=sorted(available_algorithms()),
        help="search algorithm used per task",
    )
    workload.add_argument("--seed", type=int, default=0, help="seed for randomised algorithms")
    _add_engine_arguments(workload)
    _add_repair_arguments(workload)

    experiment = subparsers.add_parser(
        "experiment", help="regenerate a paper table or the Figure 1 toy example"
    )
    experiment.add_argument(
        "name", choices=["table1", "table2", "table3", "figure1"], help="paper artefact"
    )
    experiment.add_argument("--workers", type=int, default=None, help="override worker count")
    experiment.add_argument("--seed", type=int, default=42, help="population seed")
    experiment.add_argument("--out", default=None, help="optional JSON output path")
    experiment.add_argument(
        "--checkpoint-dir",
        dest="checkpoint_dir",
        default=None,
        metavar="DIR",
        help="persist each completed (function, algorithm) cell to "
        "DIR/checkpoint.json (atomic, schema-versioned)",
    )
    experiment.add_argument(
        "--resume",
        dest="resume",
        default=None,
        metavar="DIR",
        help="resume from a checkpoint directory, skipping completed cells "
        "(implies --checkpoint-dir DIR); bit-identical to an uninterrupted run",
    )
    _add_engine_arguments(experiment, alias_backend=True)
    _add_repair_arguments(experiment)

    serve = subparsers.add_parser(
        "serve",
        help="run the long-running audit daemon (see docs/service.md)",
    )
    serve.add_argument(
        "--workdir",
        required=True,
        metavar="DIR",
        help="daemon state directory (journal.jsonl + per-job checkpoints); "
        "restarting on the same directory resumes every unfinished job",
    )
    serve.add_argument(
        "--queue-limit",
        dest="queue_limit",
        type=_positive_int,
        default=8,
        help="max queued jobs before submissions are rejected (queue_full)",
    )
    serve.add_argument(
        "--queue-workers",
        dest="queue_workers",
        type=_positive_int,
        default=2,
        help="worker threads draining the job queue",
    )
    serve.add_argument("--host", default="127.0.0.1", help="HTTP bind host")
    serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="HTTP bind port (0 picks a free port; printed at startup)",
    )
    serve.add_argument(
        "--snapshot-out",
        dest="snapshot_out",
        default=None,
        metavar="DIR",
        help="directory for monitored-population snapshots "
        "(default: WORKDIR/snapshots; 'none' disables snapshotting)",
    )
    serve.add_argument(
        "--snapshot-in",
        dest="snapshot_in",
        default=None,
        metavar="DIR",
        help="directory snapshots are restored from at startup "
        "(default: the --snapshot-out directory)",
    )
    serve.add_argument(
        "--journal-max-bytes",
        dest="journal_max_bytes",
        type=_positive_int,
        default=None,
        metavar="N",
        help="compact the journal in place once it exceeds N bytes "
        "(default: never compact)",
    )
    serve.add_argument(
        "--cache-max-bytes",
        dest="cache_max_bytes",
        type=int,
        default=256 * 1024 * 1024,
        metavar="N",
        help="byte budget of the content-addressed cross-job cache "
        "(reuses populations, atom tables and pair scores across jobs; "
        "0 disables it; default 256 MiB)",
    )
    serve.add_argument(
        "--tenant-weight",
        dest="tenant_weights",
        action="append",
        default=None,
        metavar="TENANT=WEIGHT",
        help="dispatch weight for one tenant in the weighted fair "
        "scheduler (repeatable; unlisted tenants weigh 1.0)",
    )
    serve.add_argument(
        "--rate-limit",
        dest="rate_limit",
        type=_positive_float,
        default=None,
        metavar="JOBS_PER_SECOND",
        help="per-tenant sustained submission rate; excess submissions "
        "are rejected with the typed rate_limited reason (HTTP 429)",
    )
    serve.add_argument(
        "--rate-limit-burst",
        dest="rate_limit_burst",
        type=_positive_int,
        default=None,
        metavar="N",
        help="token-bucket burst size (default: ceil of --rate-limit)",
    )
    serve.add_argument(
        "--batch-max",
        dest="batch_max",
        type=_positive_int,
        default=1,
        metavar="N",
        help="coalesce up to N queued jobs with identical specs (up to "
        "id/priority/tenant) into one engine dispatch; 1 disables batching",
    )
    serve.add_argument(
        "--shard-workers",
        dest="shard_workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="fan each job's engine work out across N worker processes "
        "by atom-range (bit-identical to sequential; default: in-process)",
    )
    serve.add_argument(
        "--chaos",
        default=None,
        metavar="SPEC",
        help="seeded service-wide fault injection, e.g. "
        "'disk-fsync=0.1,net-reset=0.05,worker-stall=0.02,seed=7' "
        "(see docs/robustness.md for the full fault taxonomy)",
    )
    serve.add_argument(
        "--request-timeout",
        dest="request_timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="total HTTP header+body read deadline per request; slow-loris "
        "peers get 408 and the socket back (0 disables; default 30)",
    )
    serve.add_argument(
        "--watchdog-seconds",
        dest="watchdog_seconds",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="re-queue jobs stuck RUNNING longer than this (stalled-worker "
        "watchdog; default: disabled)",
    )
    _add_engine_arguments(serve)

    submit = subparsers.add_parser(
        "submit", help="submit one audit or mitigate job to a running daemon"
    )
    submit.add_argument(
        "--url",
        default="http://127.0.0.1:8765",
        help="daemon base URL (see the 'serve' startup banner)",
    )
    submit.add_argument("--id", required=True, help="unique job id (path-safe token)")
    submit.add_argument(
        "--kind",
        default="audit",
        choices=["audit", "mitigate"],
        help="job kind: audit (detect only) or mitigate (detect + repair)",
    )
    submit.add_argument(
        "--scenario",
        required=True,
        choices=["figure1", "table1", "table2", "table3"],
        help="paper artefact to audit",
    )
    submit.add_argument(
        "--algorithm",
        default="balanced",
        choices=sorted(available_algorithms()),
        help="search algorithm",
    )
    submit.add_argument(
        "--function",
        dest="functions",
        action="append",
        default=None,
        metavar="NAME",
        help="scoring function to include (repeatable; default: all)",
    )
    submit.add_argument("--seed", type=int, default=0, help="job seed")
    submit.add_argument(
        "--priority", type=int, default=0, help="smaller runs first among queued jobs"
    )
    submit.add_argument(
        "--tenant",
        default=None,
        help="fair-share scheduling bucket (default: 'default')",
    )
    submit.add_argument(
        "--deadline",
        dest="deadline",
        type=_positive_float,
        default=None,
        metavar="SECONDS",
        help="per-job compute budget; an over-budget job is CANCELLED with "
        "a flagged partial result",
    )
    submit.add_argument(
        "--max-attempts",
        dest="max_attempts",
        type=_positive_int,
        default=3,
        help="tries before a repeatedly failing job is QUARANTINED",
    )
    submit.add_argument(
        "--n-workers",
        dest="n_workers",
        type=_positive_int,
        default=None,
        help="population-size override for the scenario",
    )
    submit.add_argument(
        "--metric",
        default="emd",
        choices=sorted(available_metrics()),
        help="histogram distance to maximise",
    )
    submit.add_argument(
        "--engine-kernel",
        dest="engine_kernel",
        default=None,
        choices=list(KERNEL_BACKENDS),
        help="kernel backend for the job's distance computations "
        "(bit-identical across backends; default: the daemon's)",
    )
    _add_repair_arguments(submit, default_strategy="fair_topk")

    jobs = subparsers.add_parser(
        "jobs", help="list jobs from a daemon or a journal file"
    )
    jobs_source = jobs.add_mutually_exclusive_group(required=True)
    jobs_source.add_argument(
        "--url", default=None, help="query a running daemon's /v1/jobs endpoint"
    )
    jobs_source.add_argument(
        "--workdir",
        default=None,
        metavar="DIR",
        help="read DIR/journal.jsonl directly (works while the daemon is down)",
    )
    jobs.add_argument(
        "--kind",
        default=None,
        choices=["audit", "mitigate"],
        help="only list jobs of this kind",
    )
    jobs.add_argument(
        "--state",
        default=None,
        choices=["PENDING", "RUNNING", "DONE", "FAILED", "CANCELLED", "QUARANTINED"],
        help="only list jobs in this state",
    )
    jobs.add_argument(
        "--tenant",
        default=None,
        help="only list jobs of this tenant",
    )
    jobs.add_argument(
        "--limit",
        type=_positive_int,
        default=None,
        metavar="N",
        help="keep only the N most recently submitted matches "
        "(server-side when querying a daemon)",
    )

    verify_snapshot = subparsers.add_parser(
        "verify-snapshot",
        help="check a monitored-population snapshot restores exactly",
    )
    verify_snapshot.add_argument(
        "snapshot", metavar="PATH", help="snapshot file to verify"
    )

    compact_snapshot = subparsers.add_parser(
        "compact-snapshot",
        help="trim a snapshot's unfairness series (state is untouched)",
    )
    compact_snapshot.add_argument(
        "snapshot", metavar="PATH", help="snapshot file to compact"
    )
    compact_snapshot.add_argument(
        "--keep",
        type=int,
        default=100,
        metavar="N",
        help="series points to keep (newest first; default 100)",
    )
    return parser


def _command_generate(args: argparse.Namespace) -> int:
    population = generate_paper_population(args.workers, seed=args.seed)
    save_population(population, args.out)
    print(f"wrote {population.size} workers to {args.out} (+ schema sidecar)")
    return 0


def _command_audit(args: argparse.Namespace) -> int:
    tracer, metrics = _observability(args)
    retry_policy, fault_config = _resilience(args)
    with tracer.span(
        "cli.audit", function=args.function, algorithm=args.algorithm
    ) as root:
        with tracer.span("cli.load_population", path=args.population):
            population = load_population(args.population)
        function = _resolve_function(args.function)
        if function is None:
            return 2
        auditor = FairnessAuditor(
            population, hist_spec=HistogramSpec(bins=args.bins), metric=args.metric
        )
        report = auditor.audit(
            function,
            algorithm=args.algorithm,
            rng=args.seed,
            backend=args.engine_backend,
            workers=args.engine_workers,
            kernel=args.engine_kernel,
            tracer=tracer,
            metrics=metrics,
            retry_policy=retry_policy,
            fault_config=fault_config,
        )
        with tracer.span("cli.render"):
            rendered = report.render(histograms=args.histograms)
        root.set(unfairness=report.unfairness, n_groups=len(report.groups))
    print(rendered)
    _finish_trace(args, tracer, metrics)
    return 0


def _resolve_function(name: str):
    functions = {**paper_functions(), **paper_biased_functions()}
    if name not in functions:
        print(
            f"unknown function {name!r}; choose from {sorted(functions)}",
            file=sys.stderr,
        )
        return None
    return functions[name]


def _command_compare(args: argparse.Namespace) -> int:
    tracer, metrics = _observability(args)
    retry_policy, fault_config = _resilience(args)
    population = load_population(args.population)
    function = _resolve_function(args.function)
    if function is None:
        return 2
    scores = function(population)
    from repro.core.algorithms import get_algorithm

    print(f"algorithm comparison on {args.function} ({population.size} workers)")
    header = f"{'algorithm':>16}  {'unfairness':>10}  {'groups':>7}  {'time (s)':>9}  attributes"
    print(header)
    print("-" * len(header))
    with tracer.span("cli.compare", function=args.function):
        for name in list(PAPER_ALGORITHMS) + ["single-attribute", "beam"]:
            result = get_algorithm(name).run(
                population,
                scores,
                rng=args.seed,
                backend=args.engine_backend,
                workers=args.engine_workers,
                kernel=args.engine_kernel,
                tracer=tracer,
                metrics=metrics,
                retry_policy=retry_policy,
                fault_config=fault_config,
            )
            attributes = ",".join(result.partitioning.attributes_used()) or "(none)"
            print(
                f"{name:>16}  {result.unfairness:>10.3f}  {result.partitioning.k:>7d}"
                f"  {result.runtime_seconds:>9.3f}  {attributes}"
            )
    _finish_trace(args, tracer, metrics)
    return 0


def _command_significance(args: argparse.Namespace) -> int:
    from repro.analysis.significance import permutation_test
    from repro.core.algorithms import get_algorithm

    population = load_population(args.population)
    function = _resolve_function(args.function)
    if function is None:
        return 2
    scores = function(population)
    result = get_algorithm(args.algorithm).run(population, scores, rng=args.seed)
    test = permutation_test(
        scores,
        result.partitioning,
        n_permutations=args.permutations,
        rng=args.seed,
    )
    print(
        f"{args.algorithm} on {args.function}: found {result.partitioning.k} groups "
        f"on {result.partitioning.attributes_used()}"
    )
    print(f"permutation test: {test}")
    verdict = "SIGNIFICANT" if test.significant else "consistent with sampling noise"
    print(f"verdict at 0.05: {verdict}")
    return 0


def _command_repair(args: argparse.Namespace) -> int:
    import csv as csv_module

    from repro.core.algorithms import get_algorithm
    from repro.core.unfairness import UnfairnessEvaluator
    from repro.repair.quantile import repair_scores

    population = load_population(args.population)
    function = _resolve_function(args.function)
    if function is None:
        return 2
    scores = function(population)
    result = get_algorithm(args.algorithm).run(population, scores)
    repaired = repair_scores(scores, result.partitioning, amount=args.amount)
    after = UnfairnessEvaluator(population, repaired).unfairness(result.partitioning)
    print(
        f"audited groups: {result.partitioning.k} on "
        f"{result.partitioning.attributes_used()}"
    )
    print(f"unfairness before repair: {result.unfairness:.4f}")
    print(f"unfairness after repair (amount={args.amount}): {after:.4f}")
    if args.out:
        with open(args.out, "w", newline="") as handle:
            writer = csv_module.writer(handle)
            writer.writerow(["worker", "original_score", "repaired_score"])
            for index, (original, new) in enumerate(zip(scores, repaired)):
                writer.writerow([index, repr(float(original)), repr(float(new))])
        print(f"wrote repaired scores to {args.out}")
    return 0


def _command_mitigate(args: argparse.Namespace) -> int:
    import csv as csv_module

    from repro.core.algorithms import get_algorithm
    from repro.repair import repair_ranking

    population = load_population(args.population)
    function = _resolve_function(args.function)
    if function is None:
        return 2
    scores = function(population)
    audit = get_algorithm(args.algorithm).run(
        population, scores, metric=args.metric, rng=args.seed
    )
    result = repair_ranking(
        population,
        scores,
        audit.partitioning,
        args.strategy,
        metric=args.metric,
        **_repair_options(args),
    )
    print(
        f"audited groups: {audit.partitioning.k} on "
        f"{audit.partitioning.attributes_used()}"
    )
    print(f"strategy: {args.strategy} (params {result.params})")
    print(f"unfairness before: {result.unfairness_before:.4f}")
    print(f"unfairness after : {result.unfairness_after:.4f}")
    print(f"ndcg@{result.k}: {result.ndcg_at_k:.4f}")
    print(f"retained score mass@{result.k}: {result.retained_score_mass:.4f}")
    print("per-group exposure deltas:")
    for label, delta in sorted(
        result.exposure_delta.items(), key=lambda kv: kv[1], reverse=True
    ):
        print(f"  {label}: {delta:+.4f}")
    if args.out:
        with open(args.out, "w", newline="") as handle:
            writer = csv_module.writer(handle)
            writer.writerow(["rank", "worker", "original_score", "repaired_score"])
            for rank, worker in enumerate(result.order_after):
                writer.writerow(
                    [
                        rank,
                        int(worker),
                        repr(float(scores[worker])),
                        repr(float(result.repaired_scores[worker])),
                    ]
                )
        print(f"wrote repaired ranking to {args.out}")
    return 0


def _command_workload(args: argparse.Namespace) -> int:
    import json

    from repro.analysis.workload import audit_workload
    from repro.marketplace.tasks import task_from_weights

    population = load_population(args.population)
    try:
        specs = json.loads(open(args.tasks).read())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot read workload file {args.tasks!r}: {exc}", file=sys.stderr)
        return 2
    if not isinstance(specs, list) or not specs:
        print("workload file must contain a non-empty JSON list", file=sys.stderr)
        return 2
    try:
        tasks = [
            task_from_weights(
                spec["id"],
                spec.get("title", spec["id"]),
                {k: float(v) for k, v in spec["weights"].items()},
                positions=int(spec.get("positions", 1)),
                requirements={
                    k: float(v) for k, v in spec.get("requirements", {}).items()
                },
            )
            for spec in specs
        ]
    except (KeyError, TypeError, ValueError) as exc:
        print(f"malformed task spec: {exc!r}", file=sys.stderr)
        return 2
    tracer, metrics = _observability(args)
    retry_policy, fault_config = _resilience(args)
    with tracer.span("cli.workload", n_tasks=len(tasks)):
        summary = audit_workload(
            population,
            tasks,
            algorithm=args.algorithm,
            rng=args.seed,
            backend=args.engine_backend,
            workers=args.engine_workers,
            kernel=args.engine_kernel,
            tracer=tracer,
            metrics=metrics,
            retry_policy=retry_policy,
            fault_config=fault_config,
            repair_strategy=args.strategy,
            repair_options=_repair_options(args) if args.strategy else None,
        )
    print(summary.render())
    _finish_trace(args, tracer, metrics)
    recurring = summary.recurring_attributes(min_fraction=0.5)
    if recurring:
        print(f"\nsystematic channels (>=50% of tasks): {', '.join(recurring)}")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    tracer, metrics = _observability(args)
    retry_policy, fault_config = _resilience(args)
    checkpoint_dir = args.resume or args.checkpoint_dir
    resume = args.resume is not None
    if args.name == "figure1":
        scenario = figure1_scenario()
        result = run_scenario(
            scenario,
            algorithms=("exhaustive", "balanced", "unbalanced"),
            seed=args.seed,
            backend=args.engine_backend,
            workers=args.engine_workers,
            kernel=args.engine_kernel,
            tracer=tracer,
            metrics=metrics,
            retry_policy=retry_policy,
            fault_config=fault_config,
            checkpoint=checkpoint_dir,
            resume=resume,
        )
        print(format_table(result, "unfairness", title="Figure 1 toy — average EMD"))
        reference = None
    else:
        builders = {
            "table1": (table1_scenario, TABLE1_EMD, 500),
            "table2": (table2_scenario, TABLE2_EMD, 7300),
            "table3": (table3_scenario, TABLE3_EMD, 7300),
        }
        builder, reference, default_workers = builders[args.name]
        config = PaperConfig(n_workers=args.workers or default_workers, seed=args.seed)
        scenario = builder(config)
        result = run_scenario(
            scenario,
            algorithms=PAPER_ALGORITHMS,
            seed=args.seed,
            backend=args.engine_backend,
            workers=args.engine_workers,
            kernel=args.engine_kernel,
            tracer=tracer,
            metrics=metrics,
            retry_policy=retry_policy,
            fault_config=fault_config,
            checkpoint=checkpoint_dir,
            resume=resume,
        )
        print(
            format_comparison_table(
                result,
                reference,
                "unfairness",
                title=f"{args.name} — average EMD, measured (paper)",
            )
        )
        print()
        print(format_table(result, "runtime_seconds", title="runtime (seconds, ours)"))
    if args.strategy:
        _print_mitigation_table(scenario, args)
    if args.out:
        save_experiment_result(result, args.out)
        print(f"\nwrote rows to {args.out}")
    _finish_trace(args, tracer, metrics)
    return 0


def _print_mitigation_table(scenario, args: argparse.Namespace) -> None:
    """Detect→repair every scenario function with the shared repair flags
    (the ``experiment --strategy ...`` rider on the audit tables)."""
    import numpy as np

    from repro.core.algorithms import get_algorithm
    from repro.repair import repair_ranking
    from repro.simulation.runner import _cell_seed

    options = _repair_options(args)
    print()
    print(f"mitigation ({args.strategy}) — balanced audit per function")
    header = (
        f"{'function':>10}  {'before':>8}  {'after':>8}  {'ndcg@k':>7}  {'mass':>6}"
    )
    print(header)
    print("-" * len(header))
    for name, function in scenario.functions.items():
        scores = function(scenario.population)
        audit = get_algorithm("balanced").run(
            scenario.population,
            scores,
            hist_spec=scenario.hist_spec,
            rng=np.random.default_rng(_cell_seed(args.seed, "balanced", name)),
        )
        repaired = repair_ranking(
            scenario.population,
            scores,
            audit.partitioning,
            args.strategy,
            hist_spec=scenario.hist_spec,
            **options,
        )
        print(
            f"{name:>10}  {repaired.unfairness_before:>8.4f}  "
            f"{repaired.unfairness_after:>8.4f}  {repaired.ndcg_at_k:>7.4f}  "
            f"{repaired.retained_score_mass:>6.3f}"
        )


def _command_serve(args: argparse.Namespace) -> int:
    import signal

    from repro.service import AuditService, ServiceConfig

    if getattr(args, "log_level", None):
        setup_logging(args.log_level)
    retry_policy, _ = _resilience(args)
    tenant_weights = None
    if args.tenant_weights:
        tenant_weights = {}
        for spec in args.tenant_weights:
            name, sep, weight = spec.partition("=")
            if not sep or not name:
                print(
                    f"--tenant-weight expects TENANT=WEIGHT, got {spec!r}",
                    file=sys.stderr,
                )
                return 2
            try:
                tenant_weights[name] = float(weight)
            except ValueError:
                print(
                    f"--tenant-weight weight must be a number, got {weight!r}",
                    file=sys.stderr,
                )
                return 2
    if args.snapshot_out is None:
        snapshot_dir = ""  # ServiceConfig default: WORKDIR/snapshots
    elif args.snapshot_out.lower() == "none":
        snapshot_dir = None
    else:
        snapshot_dir = args.snapshot_out
    chaos = None
    if args.chaos:
        from repro.service.chaos import ChaosConfig

        try:
            chaos = ChaosConfig.parse(args.chaos)
        except ValueError as exc:
            print(f"--chaos: {exc}", file=sys.stderr)
            return 2
    service = AuditService(
        ServiceConfig(
            args.workdir,
            queue_limit=args.queue_limit,
            workers=args.queue_workers,
            host=args.host,
            port=args.port,
            snapshot_dir=snapshot_dir,
            snapshot_in=args.snapshot_in,
            journal_max_bytes=args.journal_max_bytes,
            cache_max_bytes=args.cache_max_bytes,
            engine_kernel=args.engine_kernel,
            tenant_weights=tenant_weights,
            rate_limit=args.rate_limit,
            rate_limit_burst=args.rate_limit_burst,
            batch_max=args.batch_max,
            shard_workers=args.shard_workers,
            chaos=chaos,
            request_timeout=(
                args.request_timeout if args.request_timeout > 0 else None
            ),
            watchdog_seconds=args.watchdog_seconds,
        ),
        retry_policy=retry_policy,
    )
    # The handlers only set an event; the drain happens on this thread, so
    # in-flight jobs always finish before the process exits.
    signal.signal(signal.SIGTERM, lambda *_: service.request_shutdown())
    signal.signal(signal.SIGINT, lambda *_: service.request_shutdown())
    service.start()
    host, port = service.address
    print(
        f"audit service listening on http://{host}:{port} "
        f"(journal: {service.journal.path})",
        flush=True,
    )
    if chaos is not None and chaos.enabled:
        print(f"chaos enabled: {chaos.spec} (seed={chaos.seed})", flush=True)
    while not service.wait_for_shutdown(timeout=0.2):
        pass
    print("shutdown requested; draining in-flight jobs", flush=True)
    service.stop()
    print("drained cleanly", flush=True)
    return 0


def _command_submit(args: argparse.Namespace) -> int:
    import json
    import urllib.error
    import urllib.request

    from repro.service.jobs import JOB_SCHEMA

    payload = {
        "schema": JOB_SCHEMA,
        "id": args.id,
        "kind": args.kind,
        "scenario": args.scenario,
        "algorithm": args.algorithm,
        "seed": args.seed,
        "priority": args.priority,
        "max_attempts": args.max_attempts,
        "metric": args.metric,
    }
    if args.kind == "mitigate":
        payload["strategy"] = args.strategy
        payload["min_proportion"] = args.min_proportion
        payload["alpha"] = args.alpha
        payload["amount"] = args.amount
        if args.top_k is not None:
            payload["top_k"] = args.top_k
    if args.tenant is not None:
        payload["tenant"] = args.tenant
    if args.functions:
        payload["functions"] = args.functions
    if args.deadline is not None:
        payload["deadline_seconds"] = args.deadline
    if args.n_workers is not None:
        payload["n_workers"] = args.n_workers
    if args.engine_kernel is not None:
        payload["kernel"] = args.engine_kernel
    request = urllib.request.Request(
        args.url.rstrip("/") + "/v1/jobs",
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            body = json.load(response)
    except urllib.error.HTTPError as exc:
        try:
            envelope = json.load(exc).get("error", {})
        except json.JSONDecodeError:
            envelope = {"code": exc.code, "message": exc.reason}
        print(
            f"rejected ({envelope.get('code', exc.code)}): "
            f"{envelope.get('message')}",
            file=sys.stderr,
        )
        return 1
    except urllib.error.URLError as exc:
        print(f"cannot reach daemon at {args.url}: {exc.reason}", file=sys.stderr)
        return 2
    job = body["job"]
    print(f"accepted {job['id']} (kind {job['kind']}, state {job['state']})")
    return 0


def _command_jobs(args: argparse.Namespace) -> int:
    import json
    import urllib.error
    import urllib.request
    from pathlib import Path

    if args.url:
        from urllib.parse import urlencode

        # Server-side filtering keeps the listing cheap on long-running
        # daemons with thousands of journaled jobs.
        params = {
            key: value
            for key, value in (
                ("state", args.state),
                ("kind", args.kind),
                ("tenant", args.tenant),
                ("limit", args.limit),
            )
            if value is not None
        }
        url = args.url.rstrip("/") + "/v1/jobs"
        if params:
            url += "?" + urlencode(params)
        try:
            with urllib.request.urlopen(url, timeout=30) as response:
                jobs = json.load(response)["jobs"]
        except urllib.error.HTTPError as exc:
            try:
                envelope = json.load(exc).get("error", {})
            except json.JSONDecodeError:
                envelope = {"message": exc.reason}
            print(f"listing rejected: {envelope.get('message')}", file=sys.stderr)
            return 2
        except urllib.error.URLError as exc:
            print(f"cannot reach daemon at {args.url}: {exc.reason}", file=sys.stderr)
            return 2
    else:
        from repro.exceptions import JournalError
        from repro.service import JobJournal

        journal = JobJournal(Path(args.workdir) / "journal.jsonl")
        try:
            jobs = [record.as_dict() for record in journal.replay().values()]
        except JournalError as exc:
            print(f"cannot read journal: {exc}", file=sys.stderr)
            return 2
    if args.kind:
        jobs = [job for job in jobs if job.get("kind", "audit") == args.kind]
    if args.state:
        jobs = [job for job in jobs if job["state"] == args.state]
    if args.tenant:
        jobs = [job for job in jobs if job.get("tenant", "default") == args.tenant]
    if args.limit is not None and len(jobs) > args.limit:
        jobs = jobs[-args.limit:]
    if not jobs:
        print("no jobs")
        return 0
    header = f"{'id':<20} {'kind':<9} {'state':<12} {'attempt':>7}  reason"
    print(header)
    print("-" * len(header))
    for job in jobs:
        print(
            f"{job['id']:<20} {job.get('kind', 'audit'):<9} {job['state']:<12} "
            f"{job['attempt']:>7}  {job['reason'] or ''}"
        )
    return 0


def _command_verify_snapshot(args: argparse.Namespace) -> int:
    from repro.exceptions import SnapshotError
    from repro.service import verify_snapshot

    try:
        info = verify_snapshot(args.snapshot)
    except SnapshotError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    print(f"OK {info['path']}")
    print(
        f"  monitor {info['id']}: {info['population_size']} workers at "
        f"version {info['version']}, {info['series_points']} series points"
    )
    print(f"  digest      {info['digest']}")
    print(f"  fingerprint {info['fingerprint']}")
    return 0


def _command_compact_snapshot(args: argparse.Namespace) -> int:
    from repro.exceptions import SnapshotError
    from repro.service import compact_snapshot

    try:
        before, after = compact_snapshot(args.snapshot, keep_series=args.keep)
    except SnapshotError as exc:
        print(f"FAILED: {exc}", file=sys.stderr)
        return 1
    print(
        f"compacted {args.snapshot}: {before} -> {after} bytes "
        f"({before - after} reclaimed, series capped at {args.keep})"
    )
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for the ``repro-audit`` console script."""
    args = build_parser().parse_args(argv)
    commands = {
        "generate": _command_generate,
        "audit": _command_audit,
        "compare": _command_compare,
        "significance": _command_significance,
        "repair": _command_repair,
        "mitigate": _command_mitigate,
        "workload": _command_workload,
        "experiment": _command_experiment,
        "serve": _command_serve,
        "submit": _command_submit,
        "jobs": _command_jobs,
        "verify-snapshot": _command_verify_snapshot,
        "compact-snapshot": _command_compact_snapshot,
    }
    return commands[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
