"""Counters, gauges and timing histograms for the evaluation pipeline.

A :class:`MetricsRegistry` is a process-local, thread-safe bag of named
metrics:

* **counters** — monotonically increasing totals (``inc``);
* **gauges** — last-written values (``set_gauge``);
* **timings** — aggregated duration distributions (``observe`` /
  ``time``): count, total, min, max and a fixed log-scale bucket histogram.

Registries snapshot to plain dicts (``as_dict``) and **merge**
(:meth:`MetricsRegistry.merge`): counters and timing histograms add, gauges
are overwritten by the merged-in side.  Merging is how per-run registries
roll up into a benchmark suite total and how snapshots taken in worker
processes fold back into the parent's registry.

The :class:`~repro.engine.engine.EvaluationEngine` mirrors its
:class:`~repro.engine.engine.EngineStats` effort counters (evaluations,
cache hits, pair distances materialised, …) into its registry under the
``engine.*`` namespace — see ``EvaluationEngine.sync_metrics``.
"""

from __future__ import annotations

import threading
import time

__all__ = ["MetricsRegistry", "TimingStats"]

#: Upper bounds (seconds) of the timing histogram buckets; the last bucket
#: is implicit (+inf).  Fixed so snapshots from different processes merge.
BUCKET_BOUNDS: tuple[float, ...] = (1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0)


class TimingStats:
    """Aggregated duration distribution for one timing metric."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0
        #: Per-bucket observation counts; index i counts observations with
        #: duration <= BUCKET_BOUNDS[i], the final slot counts the rest.
        self.buckets = [0] * (len(BUCKET_BOUNDS) + 1)

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.total += seconds
        if seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        for i, bound in enumerate(BUCKET_BOUNDS):
            if seconds <= bound:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "TimingStats | dict") -> None:
        if isinstance(other, dict):
            snapshot = other
            self.count += int(snapshot["count"])
            self.total += float(snapshot["total_seconds"])
            self.min = min(self.min, float(snapshot["min_seconds"]))
            self.max = max(self.max, float(snapshot["max_seconds"]))
            for i, n in enumerate(snapshot.get("buckets", ())):
                self.buckets[i] += int(n)
            return
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n

    def as_dict(self) -> dict:
        return {
            "count": self.count,
            "total_seconds": self.total,
            "min_seconds": self.min if self.count else 0.0,
            "max_seconds": self.max,
            "mean_seconds": self.mean,
            "bucket_bounds_seconds": list(BUCKET_BOUNDS),
            "buckets": list(self.buckets),
        }

    def __repr__(self) -> str:
        return f"TimingStats(count={self.count}, total={self.total:.6f}s)"


class _Timer:
    """Context manager recording one observation into a timing metric."""

    __slots__ = ("_registry", "_name", "_start", "seconds")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._start = 0.0
        self.seconds = 0.0

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.seconds = time.perf_counter() - self._start
        self._registry.observe(self._name, self.seconds)
        return False


class MetricsRegistry:
    """Thread-safe registry of counters, gauges and timing histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._timings: dict[str, TimingStats] = {}

    # -------------------------------------------------------------- recording

    def inc(self, name: str, amount: float = 1) -> None:
        """Add ``amount`` to counter ``name`` (created at 0)."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration observation into timing ``name``."""
        with self._lock:
            stats = self._timings.get(name)
            if stats is None:
                stats = self._timings[name] = TimingStats()
            stats.observe(seconds)

    def time(self, name: str) -> _Timer:
        """Context manager timing its body into timing ``name``."""
        return _Timer(self, name)

    # -------------------------------------------------------------- querying

    def counter(self, name: str) -> float:
        return self._counters.get(name, 0)

    def gauge(self, name: str) -> "float | None":
        return self._gauges.get(name)

    def timing(self, name: str) -> "TimingStats | None":
        return self._timings.get(name)

    def as_dict(self) -> dict:
        """Plain-dict snapshot: ``{counters, gauges, timings}``."""
        with self._lock:
            return {
                "counters": dict(self._counters),
                "gauges": dict(self._gauges),
                "timings": {
                    name: stats.as_dict() for name, stats in self._timings.items()
                },
            }

    # --------------------------------------------------------------- merging

    def merge(self, other: "MetricsRegistry | dict") -> "MetricsRegistry":
        """Fold another registry (or an ``as_dict`` snapshot) into this one.

        Counters and timing histograms accumulate; gauges take the merged-in
        value.  This is the operation used to combine snapshots shipped back
        from process-pool workers and to roll per-run registries up into a
        benchmark-suite total.  Returns ``self``.
        """
        snapshot = other.as_dict() if isinstance(other, MetricsRegistry) else other
        for name, value in snapshot.get("counters", {}).items():
            self.inc(name, value)
        for name, value in snapshot.get("gauges", {}).items():
            self.set_gauge(name, value)
        with self._lock:
            for name, timing in snapshot.get("timings", {}).items():
                stats = self._timings.get(name)
                if stats is None:
                    stats = self._timings[name] = TimingStats()
                stats.merge(timing)
        return self

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry(counters={len(self._counters)}, "
            f"gauges={len(self._gauges)}, timings={len(self._timings)})"
        )
