"""Structured logging for the ``repro`` package.

All library modules log through children of the one ``repro`` logger
(``logging.getLogger("repro.engine")`` etc.), which stays silent until
:func:`setup_logging` attaches a handler — the standard library-friendly
arrangement.  The CLI exposes it as ``--log-level`` on every engine-using
subcommand.

The format is ``key=value`` structured text::

    ts=2026-08-05T12:00:00 level=INFO logger=repro.engine msg="engine ready" backend=process
"""

from __future__ import annotations

import logging

__all__ = ["setup_logging", "LOG_FORMAT"]

LOG_FORMAT = "ts=%(asctime)s level=%(levelname)s logger=%(name)s msg=%(message)s"
_DATE_FORMAT = "%Y-%m-%dT%H:%M:%S"

#: Marker attached to handlers installed by :func:`setup_logging` so repeat
#: calls reconfigure instead of stacking duplicate handlers.
_HANDLER_TAG = "_repro_obs_handler"


def setup_logging(level: "str | int" = "INFO", stream=None) -> logging.Logger:
    """Configure the ``repro`` logger and return it.

    ``level`` is a logging level name (case-insensitive) or numeric value;
    ``stream`` defaults to stderr.  Idempotent: calling again replaces the
    previously installed handler rather than adding another.
    """
    if isinstance(level, str):
        resolved = logging.getLevelName(level.upper())
        if not isinstance(resolved, int):
            raise ValueError(f"unknown log level {level!r}")
        level = resolved
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_TAG, False):
            logger.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter(LOG_FORMAT, datefmt=_DATE_FORMAT))
    setattr(handler, _HANDLER_TAG, True)
    logger.addHandler(handler)
    logger.setLevel(level)
    return logger
