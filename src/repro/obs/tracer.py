"""Nested, timed tracing spans for the evaluation pipeline.

A :class:`Tracer` produces a tree of :class:`Span` objects through a
context-manager API::

    tracer = Tracer()
    with tracer.span("audit", algorithm="balanced"):
        with tracer.span("engine.unfairness", k=4) as span:
            ...
            span.set(cache_hit=False)
    tracer.to_dict()    # JSON-serialisable span forest

Design constraints, in order:

* **Zero cost when disabled.**  The default tracer everywhere is
  :data:`NULL_TRACER`, whose ``span()`` returns one shared no-op context
  manager — a plain function call, no allocation.  Hot paths additionally
  guard on ``tracer.enabled`` so even that call is skipped per-evaluation.
* **Thread/process-safe span ids.**  Ids are ``"<pid>-<counter>"`` with the
  counter behind a lock, so spans recorded in forked worker processes (or
  concurrent threads) can be merged into one trace without collisions.
  Nesting is tracked per *thread* (a ``threading.local`` stack), so
  concurrent threads build independent subtrees instead of interleaving.
* **JSON export.**  ``Span.as_dict`` / ``Tracer.to_dict`` /
  :func:`write_trace` produce plain dicts; durations are float seconds.

No third-party dependencies; only the standard library.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Iterator

__all__ = ["Span", "Tracer", "NullTracer", "NULL_TRACER", "write_trace"]


class Span:
    """One timed operation in a trace tree."""

    __slots__ = ("name", "span_id", "parent_id", "start", "end", "attributes", "children")

    def __init__(
        self,
        name: str,
        span_id: str,
        parent_id: "str | None",
        start: float,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.start = start
        self.end: "float | None" = None
        self.attributes: dict = {}
        self.children: list[Span] = []

    @property
    def duration_seconds(self) -> float:
        """Wall-clock span length (0.0 while the span is still open)."""
        return 0.0 if self.end is None else self.end - self.start

    @property
    def children_seconds(self) -> float:
        """Summed duration of the direct children."""
        return sum(child.duration_seconds for child in self.children)

    @property
    def self_seconds(self) -> float:
        """Time spent in this span outside any child span."""
        return max(0.0, self.duration_seconds - self.children_seconds)

    def set(self, **attributes: object) -> "Span":
        """Attach attributes to the span; returns the span for chaining."""
        self.attributes.update(attributes)
        return self

    def iter_spans(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def leaves(self) -> Iterator["Span"]:
        """Every descendant span with no children (or self, if a leaf)."""
        if not self.children:
            yield self
            return
        for child in self.children:
            yield from child.leaves()

    def as_dict(self) -> dict:
        """JSON-serialisable tree rooted at this span."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "duration_seconds": self.duration_seconds,
            "attributes": dict(self.attributes),
            "children": [child.as_dict() for child in self.children],
        }

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, id={self.span_id}, "
            f"duration={self.duration_seconds:.6f}s, children={len(self.children)})"
        )


class _SpanContext:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "_name", "_attributes", "span")

    def __init__(self, tracer: "Tracer", name: str, attributes: dict) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self.span: "Span | None" = None

    def __enter__(self) -> Span:
        self.span = self._tracer._open(self._name, self._attributes)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        assert self.span is not None
        if exc_type is not None:
            self.span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._close(self.span)
        return False


class Tracer:
    """Records a forest of nested spans (one tree per top-level operation)."""

    enabled = True

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._lock = threading.Lock()
        self._counter = 0
        self._local = threading.local()
        self.roots: list[Span] = []

    # ------------------------------------------------------------- recording

    def span(self, name: str, **attributes: object) -> _SpanContext:
        """Open a span on ``with``-entry, close (and time) it on exit."""
        return _SpanContext(self, name, attributes)

    def current_span(self) -> "Span | None":
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -------------------------------------------------------------- querying

    def iter_spans(self) -> Iterator[Span]:
        """Every recorded span, depth-first across all roots."""
        for root in list(self.roots):
            yield from root.iter_spans()

    def breakdown(self) -> dict[str, dict[str, float]]:
        """Aggregate per-span-name totals: ``{name: {count, total_seconds}}``."""
        out: dict[str, dict[str, float]] = {}
        for span in self.iter_spans():
            entry = out.setdefault(span.name, {"count": 0, "total_seconds": 0.0})
            entry["count"] += 1
            entry["total_seconds"] += span.duration_seconds
        return out

    def to_dict(self) -> dict:
        """JSON-serialisable view of the whole span forest."""
        return {"spans": [root.as_dict() for root in self.roots]}

    # -------------------------------------------------------------- internal

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _next_id(self) -> str:
        with self._lock:
            self._counter += 1
            n = self._counter
        return f"{os.getpid():x}-{n:x}"

    def _open(self, name: str, attributes: dict) -> Span:
        stack = self._stack()
        parent = stack[-1] if stack else None
        span = Span(
            name,
            self._next_id(),
            parent.span_id if parent else None,
            self._clock(),
        )
        if attributes:
            span.attributes.update(attributes)
        if parent is not None:
            parent.children.append(span)
        else:
            with self._lock:
                self.roots.append(span)
        stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.end = self._clock()
        stack = self._stack()
        # Pop back to (and including) the span; tolerates exits out of order
        # when an inner ``with`` was abandoned by an exception.
        while stack:
            if stack.pop() is span:
                break

    def __repr__(self) -> str:
        return f"Tracer(roots={len(self.roots)})"


class _NullSpan:
    """Shared do-nothing span; ``with`` target of the disabled tracer."""

    __slots__ = ()

    name = ""
    span_id = ""
    parent_id = None
    start = 0.0
    end = 0.0
    duration_seconds = 0.0
    attributes: dict = {}
    children: tuple = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attributes: object) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Disabled tracer: ``span()`` is a plain call returning one shared no-op.

    This is the default everywhere — instrumented hot paths cost one
    ``tracer.enabled`` attribute check (and nothing is allocated) until a
    real :class:`Tracer` is passed in.
    """

    enabled = False
    roots: tuple = ()

    def span(self, name: str = "", **attributes: object) -> _NullSpan:
        return _NULL_SPAN

    def current_span(self) -> None:
        return None

    def iter_spans(self):
        return iter(())

    def breakdown(self) -> dict:
        return {}

    def to_dict(self) -> dict:
        return {"spans": []}

    def __repr__(self) -> str:
        return "NullTracer()"


#: Module-wide shared disabled tracer (stateless, safe to share).
NULL_TRACER = NullTracer()

#: Format tag written into trace files; bump on incompatible layout changes.
TRACE_SCHEMA = "repro.trace/v1"


def write_trace(
    path: str,
    tracer: "Tracer | NullTracer",
    metrics: "object | None" = None,
) -> dict:
    """Write the span forest (plus an optional metrics snapshot) as JSON.

    ``metrics`` is anything with an ``as_dict()`` (a
    :class:`~repro.obs.metrics.MetricsRegistry`) or a plain dict.  Returns
    the payload that was written.
    """
    snapshot = None
    if metrics is not None:
        as_dict = getattr(metrics, "as_dict", None)
        snapshot = as_dict() if callable(as_dict) else dict(metrics)  # type: ignore[arg-type]
    payload = {
        "schema": TRACE_SCHEMA,
        "spans": tracer.to_dict()["spans"],
        "breakdown": tracer.breakdown(),
        "metrics": snapshot,
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=str)
        handle.write("\n")
    return payload
