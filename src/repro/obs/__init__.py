"""Observability: tracing spans, metrics and structured logging.

Dependency-free instrumentation substrate for the evaluation pipeline:

* :class:`Tracer` / :data:`NULL_TRACER` — nested, timed spans with a
  context-manager API and JSON export (:mod:`repro.obs.tracer`);
* :class:`MetricsRegistry` — counters, gauges and timing histograms with
  snapshot/merge semantics (:mod:`repro.obs.metrics`);
* :func:`setup_logging` — ``key=value`` structured logging behind the
  ``repro`` logger hierarchy (:mod:`repro.obs.logging_setup`).

The engine, backends, algorithms, simulation runner and CLI all accept a
tracer/registry pair; with the defaults (disabled tracer, private registry)
the instrumented hot paths cost a single attribute check.  See
``docs/observability.md`` for the span and metric naming scheme.
"""

from repro.obs.logging_setup import LOG_FORMAT, setup_logging
from repro.obs.metrics import MetricsRegistry, TimingStats
from repro.obs.tracer import (
    NULL_TRACER,
    TRACE_SCHEMA,
    NullTracer,
    Span,
    Tracer,
    write_trace,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "write_trace",
    "TRACE_SCHEMA",
    "MetricsRegistry",
    "TimingStats",
    "setup_logging",
    "LOG_FORMAT",
]
