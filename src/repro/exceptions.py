"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause,
while still being able to distinguish configuration mistakes from search
budget exhaustion.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """An attribute or schema definition is invalid or inconsistent."""


class PopulationError(ReproError):
    """A population is malformed (wrong columns, bad dtypes, out-of-domain values)."""


class ScoringError(ReproError):
    """A scoring function is mis-configured or produced out-of-range scores."""


class PartitioningError(ReproError):
    """A partitioning violates the full-disjoint constraints or is degenerate."""


class MetricError(ReproError):
    """A histogram distance was asked to compare incompatible histograms."""


class BudgetExceededError(ReproError):
    """An exhaustive search exceeded its configured evaluation budget.

    The paper reports that brute-force enumeration "failed to terminate after
    running for two days"; this error is our bounded-compute equivalent.
    """

    def __init__(self, budget: int, message: str | None = None) -> None:
        self.budget = budget
        super().__init__(
            message
            or f"exhaustive search exceeded its budget of {budget} partitioning evaluations"
        )
