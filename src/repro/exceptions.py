"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause,
while still being able to distinguish configuration mistakes from search
budget exhaustion.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """An attribute or schema definition is invalid or inconsistent."""


class PopulationError(ReproError):
    """A population is malformed (wrong columns, bad dtypes, out-of-domain values)."""


class MutationError(PopulationError):
    """A streaming mutation could not be applied to a mutable population.

    Raised for unknown worker ids, duplicate ids on ``add``, non-finite or
    out-of-range scores, and malformed mutation records — before any state
    is touched, so a rejected mutation never leaves the population (or the
    derived atom counts) partially updated.
    """


class ScoringError(ReproError):
    """A scoring function is mis-configured or produced out-of-range scores."""


class PartitioningError(ReproError):
    """A partitioning violates the full-disjoint constraints or is degenerate."""


class MetricError(ReproError):
    """A histogram distance was asked to compare incompatible histograms."""


class RepairError(ReproError):
    """A repair strategy was mis-configured or produced an invalid ranking."""


class BackendError(ReproError):
    """An execution backend failed to evaluate a batch of candidates."""


class KernelError(BackendError):
    """A kernel backend is unknown, unavailable, or failed its self-check.

    Raised when ``--engine-kernel`` names a backend that is not registered,
    when the optional ``numba`` backend is requested but the dependency is
    missing, or when a compiled backend's activation self-check found a
    result that is not bit-identical to the reference ``numpy`` kernels (a
    compiled path that cannot reproduce the reference exactly refuses to
    run rather than silently perturbing audit results).
    """


class WorkerCrashError(BackendError):
    """A worker process (or injected fault) died while evaluating a chunk.

    Raised inside worker processes, it pickles across the process boundary
    and surfaces on the parent's future; the retry machinery treats it as
    transient.
    """


class BackendTimeoutError(BackendError):
    """A batch (or chunk) exceeded the configured per-dispatch timeout."""


class CorruptResultError(BackendError):
    """A backend returned a malformed batch (wrong length, non-finite values).

    Detected by result validation in the retry layer; treated as transient
    because a re-execution through the same kernels yields the true values.
    """


class BackendExhaustedError(BackendError):
    """The retry budget ran out without a successful evaluation.

    Carries ``attempts`` (total tries, including the first) and
    ``last_error`` (the failure that ended the run) so callers and tests can
    distinguish timeout storms from crash loops.
    """

    def __init__(
        self,
        attempts: int,
        last_error: "BaseException | None" = None,
        message: "str | None" = None,
    ) -> None:
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            message
            or f"backend failed after {attempts} attempt(s); last error: {last_error!r}"
        )


class CheckpointError(ReproError):
    """A checkpoint file is missing, corrupt, or from an incompatible run."""


class DeadlineExceededError(ReproError):
    """A search or job ran past its cooperative deadline.

    Carries the :class:`~repro.engine.deadline.Deadline` that expired.
    Search loops normally *poll* (``SearchContext.should_stop``) and return
    a flagged partial result instead of raising; this error is for callers
    that need hard failure semantics (``Deadline.raise_if_expired``) — e.g.
    the audit service refusing to start a job whose budget is already gone.
    """

    def __init__(self, deadline: "object | None" = None, message: "str | None" = None) -> None:
        self.deadline = deadline
        super().__init__(message or f"deadline exceeded: {deadline!r}")


class ServiceError(ReproError):
    """The audit service could not accept, run, or recover a job."""


class JobRejectedError(ServiceError):
    """A job submission was refused, with a typed machine-readable reason.

    ``reason`` is one of the :data:`~repro.service.server.REJECTION_REASONS`
    (``queue_full``, ``duplicate_id``, ``invalid_spec``, ``shutting_down``,
    ``rate_limited``, ``degraded``) so clients can distinguish backpressure
    from caller bugs from a service that has lost its disk.
    """

    def __init__(self, reason: str, message: "str | None" = None) -> None:
        self.reason = reason
        super().__init__(message or f"job rejected: {reason}")


class JobStateError(ServiceError):
    """An illegal job state transition was attempted (see repro.service.jobs)."""


class JournalError(ServiceError):
    """The job journal is unreadable, corrupt mid-file, or schema-incompatible.

    A *torn tail* (the final record cut short by a crash) is recovered, not
    raised; this error means a record before the tail failed its CRC — i.e.
    the file was damaged in a way recovery must not silently paper over.
    """


class JournalWriteError(JournalError):
    """A journal append or fsync failed — durability was NOT achieved.

    Raised instead of a bare :class:`OSError` so the acknowledgement path
    can tell "the disk refused this record" (reject the submit, flip the
    service READ_ONLY, keep serving reads) apart from "the file is
    corrupt" (:class:`JournalError` on open/replay).  Nothing guarded by
    this error may be acknowledged to a client: the group-commit path
    unwinds accepted-but-uncommitted records and rejects them with the
    typed ``degraded`` reason.

    ``written`` distinguishes the two failure shapes: ``False`` means the
    record never reached the file (safe to re-append after recovery);
    ``True`` means the bytes are in the file/OS cache but durability was
    not achieved (re-appending would duplicate the record — a later
    successful fsync is the only correct repair).
    """

    def __init__(self, message: "str | None" = None, *, written: bool = False) -> None:
        self.written = written
        super().__init__(message or "journal write failed")


class SnapshotError(ServiceError):
    """A population snapshot is missing, corrupt, or from an incompatible run.

    Mirrors :class:`CheckpointError` for the streaming layer: schema tags
    are gated, the state digest is recomputed on load, and a fingerprint
    recorded for a different monitor spec refuses to restore rather than
    silently merging incompatible state.
    """


class BudgetExceededError(ReproError):
    """An exhaustive search exceeded its configured evaluation budget.

    The paper reports that brute-force enumeration "failed to terminate after
    running for two days"; this error is our bounded-compute equivalent.
    """

    def __init__(self, budget: int, message: str | None = None) -> None:
        self.budget = budget
        super().__init__(
            message
            or f"exhaustive search exceeded its budget of {budget} partitioning evaluations"
        )
