"""Exception hierarchy for the :mod:`repro` library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of this package with a single ``except`` clause,
while still being able to distinguish configuration mistakes from search
budget exhaustion.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SchemaError(ReproError):
    """An attribute or schema definition is invalid or inconsistent."""


class PopulationError(ReproError):
    """A population is malformed (wrong columns, bad dtypes, out-of-domain values)."""


class ScoringError(ReproError):
    """A scoring function is mis-configured or produced out-of-range scores."""


class PartitioningError(ReproError):
    """A partitioning violates the full-disjoint constraints or is degenerate."""


class MetricError(ReproError):
    """A histogram distance was asked to compare incompatible histograms."""


class BackendError(ReproError):
    """An execution backend failed to evaluate a batch of candidates."""


class WorkerCrashError(BackendError):
    """A worker process (or injected fault) died while evaluating a chunk.

    Raised inside worker processes, it pickles across the process boundary
    and surfaces on the parent's future; the retry machinery treats it as
    transient.
    """


class BackendTimeoutError(BackendError):
    """A batch (or chunk) exceeded the configured per-dispatch timeout."""


class CorruptResultError(BackendError):
    """A backend returned a malformed batch (wrong length, non-finite values).

    Detected by result validation in the retry layer; treated as transient
    because a re-execution through the same kernels yields the true values.
    """


class BackendExhaustedError(BackendError):
    """The retry budget ran out without a successful evaluation.

    Carries ``attempts`` (total tries, including the first) and
    ``last_error`` (the failure that ended the run) so callers and tests can
    distinguish timeout storms from crash loops.
    """

    def __init__(
        self,
        attempts: int,
        last_error: "BaseException | None" = None,
        message: "str | None" = None,
    ) -> None:
        self.attempts = attempts
        self.last_error = last_error
        super().__init__(
            message
            or f"backend failed after {attempts} attempt(s); last error: {last_error!r}"
        )


class CheckpointError(ReproError):
    """A checkpoint file is missing, corrupt, or from an incompatible run."""


class BudgetExceededError(ReproError):
    """An exhaustive search exceeded its configured evaluation budget.

    The paper reports that brute-force enumeration "failed to terminate after
    running for two days"; this error is our bounded-compute equivalent.
    """

    def __init__(self, budget: int, message: str | None = None) -> None:
        self.budget = budget
        super().__init__(
            message
            or f"exhaustive search exceeded its budget of {budget} partitioning evaluations"
        )
