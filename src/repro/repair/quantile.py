"""Score repair: removing the bias the audit found.

The paper's future work: "We are also studying ways of 'repairing' bias in
the context of ranking in online job marketplaces."  This module implements
the natural EMD-oriented repair — **quantile alignment** (in the spirit of
Feldman et al.'s disparate-impact removal): within every partition of the
audited partitioning, each worker's score is replaced by the pooled
population quantile at the worker's within-group rank.  After a full repair,
every group's score distribution approximates the same pooled distribution,
so the pairwise EMD between groups — the paper's unfairness measure — drops
to ~0 while each group's *internal* ranking is preserved exactly.

A partial repair interpolates between the original and the fully repaired
scores with ``amount`` in [0, 1], trading utility (fidelity to the original
scores) against fairness, which lets callers plot a repair frontier.
"""

from __future__ import annotations

import numpy as np

from repro.core.partition import Partitioning
from repro.exceptions import PartitioningError
from repro.repair.base import RepairStrategy, ranked_order, register_strategy

__all__ = ["QuantileRepair", "repair_scores", "repaired_unfairness_curve"]


def repair_scores(
    scores: np.ndarray,
    partitioning: Partitioning,
    amount: float = 1.0,
) -> np.ndarray:
    """Quantile-align scores across the groups of a partitioning.

    Parameters
    ----------
    scores:
        Original scores, one per worker of the audited population.
    partitioning:
        The groups to equalise (typically the audit's most unfair
        partitioning).
    amount:
        1.0 = full repair (group distributions coincide), 0.0 = no change;
        values in between interpolate linearly per worker.

    Returns
    -------
    A new score array; the input is not modified.  Within every group the
    original ranking of workers is preserved for any ``amount``.
    """
    scores = np.asarray(scores, dtype=np.float64)
    if scores.ndim != 1 or scores.shape[0] != partitioning.population_size:
        raise PartitioningError(
            f"scores have shape {scores.shape}, expected "
            f"({partitioning.population_size},)"
        )
    if not 0.0 <= amount <= 1.0:
        raise PartitioningError(f"repair amount must be in [0, 1], got {amount}")
    if not np.isfinite(scores).all():
        # A NaN would silently poison np.sort/np.quantile and leak into
        # every repaired group; fail loudly at the boundary instead.
        raise PartitioningError("scores contain non-finite values; cannot repair")
    if amount == 0.0:
        return scores.copy()
    if partitioning.k < 2:
        # A single group (or the trivial ALL partitioning) has nothing to
        # align against: the pooled distribution IS the group distribution,
        # yet remapping through the mid-rank quantile map would still move
        # scores (e.g. [0, 1] -> [0.25, 0.75]).  Identity is the only
        # repair with zero unfairness change and zero utility loss.
        return scores.copy()

    pooled = np.sort(scores)
    if pooled[0] == pooled[-1]:
        # All scores tie at one value: every group already matches the
        # pooled distribution exactly, and the degenerate one-point
        # quantile map would only introduce float noise.
        return scores.copy()
    repaired = scores.copy()
    for partition in partitioning:
        group = scores[partition.indices]
        n = group.shape[0]
        # Mid-rank within the group (average over ties keeps ties tied),
        # mapped to the pooled distribution's quantile function.
        order = np.argsort(group, kind="stable")
        ranks = np.empty(n, dtype=np.float64)
        ranks[order] = np.arange(n, dtype=np.float64)
        # Average ranks over exact ties so equal scores repair equally
        # (vectorised: mean rank per distinct value, scattered back).
        __, inverse = np.unique(group, return_inverse=True)
        rank_sums = np.bincount(inverse, weights=ranks)
        tie_counts = np.bincount(inverse)
        ranks = (rank_sums / tie_counts)[inverse]
        quantiles = (ranks + 0.5) / n
        target = np.quantile(pooled, quantiles, method="linear")
        if amount == 1.0:
            # Exact assignment, not 0.0*group + 1.0*target: keeps full
            # repair free of -0.0/rounding artefacts.
            repaired[partition.indices] = target
        else:
            repaired[partition.indices] = (1.0 - amount) * group + amount * target
    return repaired


@register_strategy
class QuantileRepair(RepairStrategy):
    """:func:`repair_scores` behind the :class:`RepairStrategy` protocol.

    Unlike the re-rankers, this strategy changes score *values* rather than
    their assignment; its output ranking is simply the repaired scores'
    ranking, and ``k`` / ``min_proportion`` / ``alpha`` are ignored
    (``amount`` is the strategy's only knob).
    """

    name = "quantile"

    def repair(
        self,
        scores: np.ndarray,
        partitioning: Partitioning,
        *,
        k: int,
        min_proportion: float,
        alpha: float,
        amount: float,
    ) -> "tuple[np.ndarray, np.ndarray]":
        repaired = repair_scores(scores, partitioning, amount)
        return ranked_order(repaired), repaired


def repaired_unfairness_curve(
    scores: np.ndarray,
    partitioning: Partitioning,
    evaluate: "callable",
    amounts: "np.ndarray | list[float] | None" = None,
) -> list[tuple[float, float]]:
    """Unfairness as a function of repair amount.

    ``evaluate`` maps a repaired score vector to an unfairness value (e.g. a
    closure over :class:`~repro.core.unfairness.UnfairnessEvaluator` that
    re-audits).  Returns (amount, unfairness) pairs, one per amount.
    """
    if amounts is None:
        amounts = np.linspace(0.0, 1.0, 6)
    curve = []
    for amount in amounts:
        repaired = repair_scores(scores, partitioning, float(amount))
        curve.append((float(amount), float(evaluate(repaired))))
    return curve
