"""Pluggable mitigation strategies: the detect→repair half of the loop.

An audit finds the *most unfair partitioning* of a ranked worker pool; a
:class:`RepairStrategy` takes that partitioning as its group definition and
produces a fairer ranking (or score vector) of the same population.
Strategies register by name — exactly like metrics and algorithms — so the
CLI, the service's ``mitigate`` job type and the bench harness all resolve
them through one registry::

    result = repair_ranking(population, scores, report.result.partitioning,
                            strategy="fair_topk", k=100)

Every strategy returns through the same :func:`repair_ranking` orchestrator,
which prices the repair on the audited partitioning (unfairness
before/after via the engine's vectorized kernels), measures utility loss
(NDCG@k against the original ranking, retained score mass) and per-group
exposure deltas, and stamps the wall-clock — the
:class:`RepairResult` rows the paper-style mitigation tables report.

Re-ranking strategies (``fair_topk``, ``det_rerank``) express their output
as a permutation plus the *re-assigned score vector*: the worker at new
rank ``r`` receives the ``r``-th highest original score.  The score
multiset is preserved — only its assignment to workers changes — which
keeps the histogram objective well-defined and lets the same pricing path
serve re-rankers and re-scorers (``quantile``) alike.
"""

from __future__ import annotations

import abc
import time
import zlib
from dataclasses import dataclass, field

import numpy as np

from repro.core.histogram import HistogramSpec
from repro.core.partition import Partitioning
from repro.core.population import Population
from repro.engine.pricing import partition_codes, price_repair
from repro.exceptions import RepairError
from repro.marketplace.exposure import position_exposure
from repro.metrics.base import HistogramDistance

__all__ = [
    "RepairResult",
    "RepairStrategy",
    "available_strategies",
    "get_strategy",
    "register_strategy",
    "repair_ranking",
    "ranked_order",
]


def ranked_order(scores: np.ndarray) -> np.ndarray:
    """Deterministic ranking of a score vector: descending, ties broken on
    worker index (ascending) — the same order :func:`rank_workers` uses."""
    n = scores.shape[0]
    return np.lexsort((np.arange(n, dtype=np.int64), -scores)).astype(np.int64)


@dataclass(frozen=True)
class RepairResult:
    """Outcome of one mitigation run.

    Attributes
    ----------
    strategy:
        Registry name of the strategy that produced this result.
    params:
        The resolved strategy parameters (``k``, ``min_proportion``,
        ``alpha``, ``amount``) — recorded so results are self-describing.
    k:
        Evaluation depth: NDCG and retained mass are measured over the top
        ``k`` ranks (re-rankers also constrain exactly these ranks).
    unfairness_before / unfairness_after:
        The audited partitioning's average pairwise distance under the
        original and repaired score assignments (same spec/metric/weighting
        as the audit).
    ndcg_at_k:
        DCG of the repaired top-k (original scores as gains) over the DCG
        of the original top-k; 1.0 = no utility lost.
    retained_score_mass:
        Sum of original scores over the repaired top-k divided by the
        original top-k's sum.
    exposure_before / exposure_after / exposure_delta:
        Mean position-bias exposure (1/log2(rank+2)) per audited group,
        keyed by the partition's human-readable label.
    runtime_seconds:
        Wall-clock of the strategy plus pricing.
    order_before / order_after:
        Full permutations (worker index per rank) of the original and the
        repaired ranking.
    repaired_scores:
        The repaired per-worker score vector (re-assigned original scores
        for re-rankers; transformed scores for re-scorers).
    """

    strategy: str
    params: dict
    k: int
    unfairness_before: float
    unfairness_after: float
    ndcg_at_k: float
    retained_score_mass: float
    exposure_before: "dict[str, float]"
    exposure_after: "dict[str, float]"
    exposure_delta: "dict[str, float]"
    runtime_seconds: float
    order_before: np.ndarray = field(repr=False)
    order_after: np.ndarray = field(repr=False)
    repaired_scores: np.ndarray = field(repr=False)

    @property
    def improvement(self) -> float:
        """Absolute unfairness drop (positive = the repair helped)."""
        return self.unfairness_before - self.unfairness_after

    def ranking_digest(self) -> int:
        """CRC32 of the repaired permutation's raw bytes — a compact
        bit-stability fingerprint for golden tables and bench payloads."""
        return zlib.crc32(np.ascontiguousarray(self.order_after).tobytes())

    def as_dict(self, include_arrays: bool = False) -> dict:
        """JSON-safe summary (service results, bench rows, golden tables)."""
        payload = {
            "strategy": self.strategy,
            "params": dict(self.params),
            "k": int(self.k),
            "unfairness_before": float(self.unfairness_before),
            "unfairness_after": float(self.unfairness_after),
            "ndcg_at_k": float(self.ndcg_at_k),
            "retained_score_mass": float(self.retained_score_mass),
            "exposure_before": {k: float(v) for k, v in self.exposure_before.items()},
            "exposure_after": {k: float(v) for k, v in self.exposure_after.items()},
            "exposure_delta": {k: float(v) for k, v in self.exposure_delta.items()},
            "runtime_seconds": float(self.runtime_seconds),
            "ranking_digest": self.ranking_digest(),
        }
        if include_arrays:
            payload["order_after"] = [int(w) for w in self.order_after]
            payload["repaired_scores"] = [float(s) for s in self.repaired_scores]
        return payload


class RepairStrategy(abc.ABC):
    """One mitigation: map (scores, audited partitioning) to a fair ranking.

    Subclasses implement :meth:`repair` and set :attr:`name`; they are
    registered with :func:`register_strategy` and resolved by
    :func:`get_strategy` — the same pattern the metric and algorithm
    registries use.
    """

    #: Registry key; subclasses must set this.
    name: str = ""

    @abc.abstractmethod
    def repair(
        self,
        scores: np.ndarray,
        partitioning: Partitioning,
        *,
        k: int,
        min_proportion: float,
        alpha: float,
        amount: float,
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Return ``(order_after, repaired_scores)``.

        ``order_after`` is a full permutation of worker indices (rank →
        worker); ``repaired_scores`` is the per-worker score vector the
        repaired ranking is consistent with.  Parameters a strategy does
        not use (e.g. ``alpha`` for ``det_rerank``) are ignored.
        """

    @staticmethod
    def group_codes(partitioning: Partitioning) -> np.ndarray:
        """Per-worker group code of the audited partitioning."""
        return partition_codes(partitioning)

    @staticmethod
    def reassign_scores(
        scores: np.ndarray, order_after: np.ndarray
    ) -> np.ndarray:
        """Give the worker at new rank ``r`` the ``r``-th highest original
        score: preserves the score multiset while realising the new order."""
        repaired = np.empty_like(scores)
        repaired[order_after] = scores[ranked_order(scores)]
        return repaired

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


_REGISTRY: "dict[str, type[RepairStrategy]]" = {}


def register_strategy(cls: "type[RepairStrategy]") -> "type[RepairStrategy]":
    """Register a strategy class under its ``name`` (usable as a decorator)."""
    if not cls.name:
        raise RepairError(f"repair strategy {cls!r} has no name")
    _REGISTRY[cls.name] = cls
    return cls


def get_strategy(name: "str | RepairStrategy", **options) -> RepairStrategy:
    """Resolve a strategy by name (or pass an instance through).

    ``options`` are forwarded to the strategy constructor (e.g.
    ``get_strategy("det_rerank", variant="cons")``).
    """
    if isinstance(name, RepairStrategy):
        return name
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise RepairError(
            f"unknown repair strategy {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
    return cls(**options)


def available_strategies() -> "tuple[str, ...]":
    """Names of all registered repair strategies."""
    return tuple(sorted(_REGISTRY))


def _dcg(gains: np.ndarray) -> float:
    """DCG with the standard 1/log2(rank+2) discount (0-based ranks)."""
    if gains.size == 0:
        return 0.0
    return float(np.sum(gains / np.log2(np.arange(gains.size) + 2.0)))


def _group_labels(population: Population, partitioning: Partitioning) -> "list[str]":
    """Human-readable, unique label per partition (iteration order)."""
    labels: list[str] = []
    seen: dict[str, int] = {}
    for partition in partitioning:
        label = partition.label(population.schema)
        if label in seen:
            seen[label] += 1
            label = f"{label} #{seen[label]}"
        else:
            seen[label] = 1
        labels.append(label)
    return labels


def _group_exposures(
    partitioning: Partitioning, labels: "list[str]", order: np.ndarray
) -> "dict[str, float]":
    """Mean DCG-discount exposure per audited group under one full ranking."""
    exposures = np.empty(order.shape[0], dtype=np.float64)
    exposures[order] = position_exposure(order.shape[0])
    return {
        label: float(exposures[partition.indices].mean())
        for label, partition in zip(labels, partitioning)
    }


def repair_ranking(
    population: Population,
    scores: np.ndarray,
    partitioning: Partitioning,
    strategy: "str | RepairStrategy" = "fair_topk",
    *,
    k: "int | None" = None,
    min_proportion: float = 0.8,
    alpha: float = 0.1,
    amount: float = 1.0,
    hist_spec: "HistogramSpec | None" = None,
    metric: "str | HistogramDistance" = "emd",
    weighting: str = "uniform",
    strategy_options: "dict | None" = None,
) -> RepairResult:
    """Run one mitigation strategy and price the result.

    Parameters
    ----------
    population, scores:
        The audited population and the scoring function's values.
    partitioning:
        Group definition — typically the worst partitioning an audit found.
    strategy:
        Registry name (``fair_topk`` / ``det_rerank`` / ``quantile``) or a
        :class:`RepairStrategy` instance.
    k:
        Re-rank/evaluation depth; ``None`` = the full population (the
        strongest repair: every prefix of the ranking is constrained).
    min_proportion:
        Constraint tightness in (0, 1]: each group's target share is
        ``min_proportion`` times its population share (1.0 = proportional
        representation demanded at every prefix).
    alpha:
        Significance level of FA*IR's binomial quota test.
    amount:
        Interpolation strength of the ``quantile`` re-scorer.
    hist_spec, metric, weighting:
        Pricing configuration — pass the audit's values so before/after
        are measured exactly as the audit measured unfairness.
    strategy_options:
        Extra constructor options, e.g. ``{"variant": "cons"}``.
    """
    start = time.perf_counter()
    scores = np.asarray(scores, dtype=np.float64)
    n = population.size
    if scores.shape != (n,):
        raise RepairError(f"scores have shape {scores.shape}, expected ({n},)")
    if partitioning.population_size != n:
        raise RepairError(
            f"partitioning covers {partitioning.population_size} workers, "
            f"population has {n}"
        )
    if not np.isfinite(scores).all():
        raise RepairError("scores contain non-finite values; cannot repair")
    eval_k = n if k is None else int(k)
    if not 1 <= eval_k <= n:
        raise RepairError(f"k must be in [1, {n}], got {eval_k}")
    if not 0.0 < min_proportion <= 1.0:
        raise RepairError(f"min_proportion must be in (0, 1], got {min_proportion}")
    if not 0.0 < alpha < 1.0:
        raise RepairError(f"alpha must be in (0, 1), got {alpha}")
    if not 0.0 <= amount <= 1.0:
        raise RepairError(f"amount must be in [0, 1], got {amount}")
    strategy_obj = get_strategy(strategy, **(strategy_options or {}))

    order_before = ranked_order(scores)
    order_after, repaired = strategy_obj.repair(
        scores,
        partitioning,
        k=eval_k,
        min_proportion=min_proportion,
        alpha=alpha,
        amount=amount,
    )
    order_after = np.asarray(order_after, dtype=np.int64)
    repaired = np.asarray(repaired, dtype=np.float64)
    if order_after.shape != (n,) or repaired.shape != (n,):
        raise RepairError(
            f"strategy {strategy_obj.name!r} returned shapes "
            f"{order_after.shape}/{repaired.shape}, expected ({n},)"
        )
    if not np.array_equal(np.sort(order_after), np.arange(n, dtype=np.int64)):
        raise RepairError(
            f"strategy {strategy_obj.name!r} did not return a permutation"
        )

    report = price_repair(
        partitioning, scores, repaired, hist_spec, metric, weighting
    )
    ideal_dcg = _dcg(scores[order_before[:eval_k]])
    ndcg = (
        _dcg(scores[order_after[:eval_k]]) / ideal_dcg if ideal_dcg > 0 else 1.0
    )
    ideal_mass = float(scores[order_before[:eval_k]].sum())
    mass = (
        float(scores[order_after[:eval_k]].sum()) / ideal_mass
        if ideal_mass > 0
        else 1.0
    )
    labels = _group_labels(population, partitioning)
    exposure_before = _group_exposures(partitioning, labels, order_before)
    exposure_after = _group_exposures(partitioning, labels, order_after)
    exposure_delta = {
        label: exposure_after[label] - exposure_before[label] for label in labels
    }
    return RepairResult(
        strategy=strategy_obj.name,
        params={
            "k": eval_k,
            "min_proportion": float(min_proportion),
            "alpha": float(alpha),
            "amount": float(amount),
            **({"variant": strategy_obj.variant} if hasattr(strategy_obj, "variant") else {}),
        },
        k=eval_k,
        unfairness_before=report.unfairness_before,
        unfairness_after=report.unfairness_after,
        ndcg_at_k=float(ndcg),
        retained_score_mass=float(mass),
        exposure_before=exposure_before,
        exposure_after=exposure_after,
        exposure_delta=exposure_delta,
        runtime_seconds=time.perf_counter() - start,
        order_before=order_before,
        order_after=order_after,
        repaired_scores=repaired,
    )
