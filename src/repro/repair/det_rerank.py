"""Deterministic fairness-aware re-ranking (Geyik et al., KDD 2019).

LinkedIn's production mitigation: walk the ranking top-down and, at each
rank ``t``, keep every group's count within ``[floor(p_g·t), ceil(p_g·t)]``
of its target share ``p_g``.  Two variants ship here:

* ``greedy`` (DetGreedy): if any group is **below its floor**, emit the
  best candidate among those groups; otherwise emit the best candidate
  among groups still **below their ceiling** (falling back to all
  remaining groups once every ceiling is saturated — possible because
  ``min_proportion`` shrinks targets below a full distribution).
* ``cons`` (DetCons): identical while a floor is violated; otherwise
  prefer the group whose *next* floor violation is due soonest
  (smallest ``ceil((counts_g + 1) / p_g)``), which trades a little
  utility for fewer future hard overrides.

As with :mod:`~repro.repair.fair_topk`, targets are multinomial:
``p_g = min_proportion × (|g| / n)`` for every audited group, so the knob
moves all constraints uniformly from "off" (→0) to exact proportional
representation (1.0).  Ties always break score-descending then
worker-index-ascending, so both variants are deterministic.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.partition import Partitioning
from repro.exceptions import RepairError
from repro.repair.base import RepairStrategy, ranked_order, register_strategy

__all__ = ["DetRerank"]

_VARIANTS = ("greedy", "cons")


@register_strategy
class DetRerank(RepairStrategy):
    """Geyik et al.'s deterministic constrained re-ranking."""

    name = "det_rerank"

    def __init__(self, variant: str = "greedy") -> None:
        if variant not in _VARIANTS:
            raise RepairError(
                f"unknown det_rerank variant {variant!r}; available: {list(_VARIANTS)}"
            )
        self.variant = variant

    def __repr__(self) -> str:
        return f"DetRerank(variant={self.variant!r})"

    def repair(
        self,
        scores: np.ndarray,
        partitioning: Partitioning,
        *,
        k: int,
        min_proportion: float,
        alpha: float,
        amount: float,
    ) -> "tuple[np.ndarray, np.ndarray]":
        n = scores.shape[0]
        codes = self.group_codes(partitioning)
        groups = partitioning.k
        sizes = np.bincount(codes, minlength=groups).astype(np.int64)
        proportions = min_proportion * sizes / n

        order_all = ranked_order(scores)
        queues = [order_all[codes[order_all] == g] for g in range(groups)]
        ptr = np.zeros(groups, dtype=np.int64)
        counts = np.zeros(groups, dtype=np.int64)
        order_after = np.empty(n, dtype=np.int64)
        for t in range(1, k + 1):
            active = np.flatnonzero(ptr < sizes)
            if active.size == 0:  # pragma: no cover - k <= n guarantees slack
                raise RepairError("det_rerank ran out of candidates")
            floors = np.floor(proportions * t).astype(np.int64)
            below_min = active[counts[active] < floors[active]]
            if below_min.size > 0:
                pool = below_min
                pick = self._best_scoring(pool, queues, ptr, scores)
            elif self.variant == "greedy":
                ceils = np.ceil(proportions * t).astype(np.int64)
                below_max = active[counts[active] < ceils[active]]
                pool = below_max if below_max.size > 0 else active
                pick = self._best_scoring(pool, queues, ptr, scores)
            else:  # cons: group whose next floor constraint is due soonest
                pick = self._earliest_due(active, proportions, counts, queues, ptr, scores)
            worker = int(queues[pick][ptr[pick]])
            ptr[pick] += 1
            counts[pick] += 1
            order_after[t - 1] = worker
        if k < n:
            emitted = np.zeros(n, dtype=bool)
            emitted[order_after[:k]] = True
            order_after[k:] = order_all[~emitted[order_all]]
        repaired = self.reassign_scores(scores, order_after)
        return order_after, repaired

    @staticmethod
    def _best_scoring(pool, queues, ptr, scores) -> int:
        """Group in ``pool`` whose head candidate scores highest (ties:
        lower worker index)."""
        best_group = -1
        best_worker = -1
        for g in pool:
            worker = int(queues[g][ptr[g]])
            if best_group < 0 or (
                scores[worker] > scores[best_worker]
                or (scores[worker] == scores[best_worker] and worker < best_worker)
            ):
                best_group, best_worker = int(g), worker
        return best_group

    @staticmethod
    def _earliest_due(active, proportions, counts, queues, ptr, scores) -> int:
        """DetCons pick: smallest next-due slot ``ceil((count+1)/p)``;
        ties break by head score descending, then worker index."""
        best_group = -1
        best_due = math.inf
        best_worker = -1
        for g in active:
            p = proportions[g]
            due = math.ceil((counts[g] + 1) / p) if p > 0 else math.inf
            worker = int(queues[g][ptr[g]])
            better = False
            if best_group < 0 or due < best_due:
                better = True
            elif due == best_due:
                if scores[worker] > scores[best_worker] or (
                    scores[worker] == scores[best_worker] and worker < best_worker
                ):
                    better = True
            if better:
                best_group, best_due, best_worker = int(g), due, worker
        return best_group
