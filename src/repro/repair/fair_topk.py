"""FA*IR top-k fair re-ranking (Zehlike et al., CIKM 2017), multinomial.

FA*IR tests, at every prefix of a ranking, whether each protected group is
represented at least as well as a fair lottery would predict: a prefix of
length ``t`` fails the test for group ``g`` if the count of ``g``-members in
it falls below the largest ``m`` that a Binomial(t, p_g) draw would reach
with probability ≥ ``alpha``.  The smallest passing count per (group, t) is
the **minimum-quota table**; the repair greedily emits the highest-scoring
candidate at each rank, overridden whenever a group's quota is about to be
violated.

Two deviations from the binary original, both deliberate:

* **Multinomial targets.**  The audit's worst partitioning has ``k`` groups,
  none canonically "protected", so every group gets a target share
  ``p_g = min_proportion × (|g| / n)`` — proportional representation scaled
  by the tightness knob.  With ``min_proportion = 1`` this demands each
  prefix mirror the population; smaller values relax all quotas uniformly.
  The binary FA*IR setting is the special case of one protected group.
* **Staggered quotas.**  Independent per-group ``binom.ppf`` tables can
  increment two groups' quotas at the same rank, which no ranking that
  fills one slot per rank can satisfy.  :func:`quota_table` therefore
  staggers the raw tables: at each rank at most **one** group's adjusted
  quota may grow (the group whose raw quota lags its adjusted quota most),
  so total quota never grows faster than one per rank.  By induction the
  greedy fill then satisfies the adjusted table at every prefix, and the
  adjusted table never exceeds the raw table by construction, only delays
  it minimally.
"""

from __future__ import annotations

import numpy as np

from repro.core.partition import Partitioning
from repro.exceptions import RepairError
from repro.repair.base import RepairStrategy, ranked_order, register_strategy

__all__ = ["FairTopK", "quota_table"]


def quota_table(
    k: int,
    proportions: np.ndarray,
    alpha: float,
    group_sizes: "np.ndarray | None" = None,
) -> np.ndarray:
    """Feasible minimum-quota table, shape ``(groups, k)``.

    ``table[g, t-1]`` is the minimum number of group-``g`` members any fair
    prefix of length ``t`` must contain.  Raw quotas come from the binomial
    test (``binom.ppf(alpha, t, p_g)``, clamped to the group's size); the
    staggering pass then ensures column sums grow by at most one per rank,
    which makes the table satisfiable by a greedy that fills one slot per
    rank.
    """
    from scipy.stats import binom

    proportions = np.asarray(proportions, dtype=np.float64)
    if k < 1:
        raise RepairError(f"quota table needs k >= 1, got {k}")
    if proportions.ndim != 1 or proportions.size == 0:
        raise RepairError("proportions must be a non-empty 1-d array")
    if (proportions < 0.0).any() or (proportions > 1.0).any():
        raise RepairError("group proportions must lie in [0, 1]")
    groups = proportions.shape[0]
    t = np.arange(1, k + 1, dtype=np.float64)
    raw = binom.ppf(alpha, t[None, :], proportions[:, None])
    raw = np.nan_to_num(raw, nan=0.0).astype(np.int64)
    np.maximum(raw, 0, out=raw)
    if group_sizes is not None:
        sizes = np.asarray(group_sizes, dtype=np.int64)
        np.minimum(raw, sizes[:, None], out=raw)
    # Stagger: allow at most one total quota increment per rank, granted to
    # the group whose raw quota is furthest ahead of its adjusted count.
    adjusted = np.zeros_like(raw)
    counts = np.zeros(groups, dtype=np.int64)
    for i in range(k):
        lag = raw[:, i] - counts
        g = int(np.argmax(lag))
        if lag[g] > 0:
            counts[g] += 1
        adjusted[:, i] = counts
    return adjusted


@register_strategy
class FairTopK(RepairStrategy):
    """Greedy FA*IR fill against the staggered minimum-quota table.

    At each of the top ``k`` ranks: if some group's quota for this prefix
    is not yet met, emit that group's best remaining candidate; otherwise
    emit the overall best remaining candidate.  Ties break on score
    descending, then worker index ascending — the library-wide ranking
    convention — so output is deterministic.  Ranks past ``k`` keep the
    original relative order of the remaining workers.
    """

    name = "fair_topk"

    def repair(
        self,
        scores: np.ndarray,
        partitioning: Partitioning,
        *,
        k: int,
        min_proportion: float,
        alpha: float,
        amount: float,
    ) -> "tuple[np.ndarray, np.ndarray]":
        n = scores.shape[0]
        codes = self.group_codes(partitioning)
        groups = partitioning.k
        sizes = np.bincount(codes, minlength=groups).astype(np.int64)
        proportions = min_proportion * sizes / n
        table = quota_table(k, proportions, alpha, group_sizes=sizes)

        order_all = ranked_order(scores)
        # Per-group candidate queues in global rank order: queues[g][ptr[g]]
        # is group g's best remaining worker.
        queues = [order_all[codes[order_all] == g] for g in range(groups)]
        ptr = np.zeros(groups, dtype=np.int64)
        counts = np.zeros(groups, dtype=np.int64)
        order_after = np.empty(n, dtype=np.int64)
        for t in range(k):
            deficit = np.flatnonzero(counts < table[:, t])
            if deficit.size == 0:
                deficit = np.flatnonzero(ptr < sizes)
            best_group = -1
            best_worker = -1
            for g in deficit:
                if ptr[g] >= sizes[g]:
                    continue
                worker = int(queues[g][ptr[g]])
                if best_group < 0 or (
                    scores[worker] > scores[best_worker]
                    or (scores[worker] == scores[best_worker] and worker < best_worker)
                ):
                    best_group, best_worker = int(g), worker
            if best_group < 0:  # pragma: no cover - deficit groups exhausted
                raise RepairError(
                    "fair_topk quota table is infeasible for this population"
                )
            ptr[best_group] += 1
            counts[best_group] += 1
            order_after[t] = best_worker
        if k < n:
            emitted = np.zeros(n, dtype=bool)
            emitted[order_after[:k]] = True
            order_after[k:] = order_all[~emitted[order_all]]
        repaired = self.reassign_scores(scores, order_after)
        return order_after, repaired
