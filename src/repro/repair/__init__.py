"""Bias repair (the paper's future-work direction): quantile-alignment of
scores across the groups of an audited partitioning."""

from repro.repair.quantile import repair_scores, repaired_unfairness_curve

__all__ = ["repair_scores", "repaired_unfairness_curve"]
