"""Bias mitigation: pluggable repair strategies for audited rankings.

The subpackage closes the detect→repair loop the paper leaves open.
Strategies register by name (like metrics and algorithms):

* ``fair_topk`` — FA*IR binomial minimum-quota re-ranking (multinomial
  extension via per-group quotas);
* ``det_rerank`` — Geyik et al.'s deterministic greedy/constrained
  re-ranking (``variant="greedy"`` / ``"cons"``);
* ``quantile`` — quantile-alignment score repair.

:func:`repair_ranking` is the front door: it runs a strategy against the
audit's worst partitioning and prices the result (unfairness before/after,
NDCG@k, retained score mass, per-group exposure deltas).
"""

from repro.repair.base import (
    RepairResult,
    RepairStrategy,
    available_strategies,
    get_strategy,
    ranked_order,
    register_strategy,
    repair_ranking,
)
from repro.repair.det_rerank import DetRerank
from repro.repair.fair_topk import FairTopK, quota_table
from repro.repair.quantile import (
    QuantileRepair,
    repair_scores,
    repaired_unfairness_curve,
)

__all__ = [
    "DetRerank",
    "FairTopK",
    "QuantileRepair",
    "RepairResult",
    "RepairStrategy",
    "available_strategies",
    "get_strategy",
    "quota_table",
    "ranked_order",
    "register_strategy",
    "repair_ranking",
    "repair_scores",
    "repaired_unfairness_curve",
]
