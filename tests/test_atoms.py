"""Atom-table fast path: construction, resolution, bit-identity, shared memory.

The load-bearing guarantees (see docs/performance.md):

* ``AtomTable`` row-sums equal ``HistogramSpec.histogram_from_bin_indices``
  over the matching member indices — exact int64 arithmetic, so the atom
  path and the member path produce the *same IEEE floats*, not merely close
  ones;
* every algorithm returns bit-identical results with atoms on or off, on
  the sequential and the process backend, with or without injected faults;
* the engine's value cache evicts least-recently-used entries at cap and
  counts evictions;
* the scalar ``cross_matrix`` fallback deduplicates repeated histogram rows
  before paying for ``metric.distance`` calls;
* crashed pool workers never leak ``multiprocessing.shared_memory``
  segments (asserted via resource-tracker warnings and /dev/shm contents).
"""

from __future__ import annotations

import glob
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.engine.engine as engine_module
from repro.core.algorithms import get_algorithm
from repro.core.attributes import (
    CategoricalAttribute,
    IntegerAttribute,
    ObservedAttribute,
)
from repro.core.histogram import HistogramSpec
from repro.core.partition import Partition
from repro.core.population import Population
from repro.core.schema import WorkerSchema
from repro.core.splitting import split_partition
from repro.engine.atoms import AtomTable
from repro.engine.engine import EvaluationEngine
from repro.engine.faults import FaultConfig
from repro.engine.kernels import cross_matrix
from repro.engine.resilience import RetryPolicy
from repro.metrics.base import HistogramDistance
from repro.obs.metrics import MetricsRegistry

SPEC = HistogramSpec(bins=8)
FAST = RetryPolicy(max_retries=6, backoff_seconds=0.0)


def _random_population(rng: np.random.Generator, n: int) -> Population:
    schema = WorkerSchema(
        protected=(
            CategoricalAttribute("a", ("x", "y")),
            CategoricalAttribute("b", ("u", "v", "w")),
            IntegerAttribute("c", 0, 9, buckets=2),
        ),
        observed=(ObservedAttribute("skill", 0.0, 1.0),),
    )
    return Population(
        schema,
        protected={
            "a": rng.integers(0, 2, size=n),
            "b": rng.integers(0, 3, size=n),
            "c": rng.integers(0, 10, size=n),
        },
        observed={"skill": rng.random(n)},
    )


def _random_split_chain(
    rng: np.random.Generator, population: Population
) -> list[Partition]:
    """Partitions reached by a random sequence of splits from the root."""
    reached = [Partition(population.all_indices())]
    frontier = list(reached)
    for _ in range(int(rng.integers(1, 4))):
        parent = frontier[int(rng.integers(len(frontier)))]
        remaining = [
            a
            for a in population.schema.protected_names
            if a not in parent.constrained_attributes()
        ]
        if not remaining:
            break
        children = split_partition(
            population, parent, remaining[int(rng.integers(len(remaining)))]
        )
        frontier.remove(parent)
        frontier.extend(children)
        reached.extend(children)
    return reached


# ------------------------------------------------------- table construction


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_atom_histograms_equal_member_bincounts(seed: int) -> None:
    """Property: for every partition reachable by splitting, the atom
    row-sum equals the member-path histogram exactly (int64 == int64)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(5, 120))
    population = _random_population(rng, n)
    scores = rng.random(n)
    bin_idx = SPEC.bin_indices(scores)
    table = AtomTable.build(population, bin_idx, SPEC.bins)

    assert int(table.sizes.sum()) == n
    assert np.array_equal(table.histogram(np.arange(table.n_atoms)), np.bincount(bin_idx, minlength=SPEC.bins))

    for partition in _random_split_chain(rng, population):
        rows = table.resolve(partition)
        assert rows is not None, "split-reachable partitions must resolve"
        assert table.verify(partition, rows)
        expected = SPEC.histogram_from_bin_indices(bin_idx[partition.indices])
        assert np.array_equal(table.histogram(rows), expected)
        assert int(table.sizes[rows].sum()) == partition.size


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_split_rows_matches_split_partition(seed: int) -> None:
    """Grouped aggregation over atom rows yields the same children, in the
    same (ascending-code) order, as the member-array split."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(10, 120))
    population = _random_population(rng, n)
    bin_idx = SPEC.bin_indices(rng.random(n))
    table = AtomTable.build(population, bin_idx, SPEC.bins)

    for parent in _random_split_chain(rng, population):
        rows = table.resolve(parent)
        assert rows is not None
        for attribute in population.schema.protected_names:
            if attribute in parent.constrained_attributes():
                continue
            children = split_partition(population, parent, attribute)
            groups = table.split_rows(rows, attribute)
            assert len(groups) == len(children)
            for group, child in zip(groups, children):
                assert np.array_equal(
                    table.histogram(group),
                    SPEC.histogram_from_bin_indices(bin_idx[child.indices]),
                )
                assert int(table.sizes[group].sum()) == child.size


def test_resolution_rejects_untrusted_partitions(small_population) -> None:
    bin_idx = SPEC.bin_indices(np.linspace(0, 1, small_population.size, endpoint=False))
    table = AtomTable.build(small_population, bin_idx, SPEC.bins)
    # Unknown attribute in the conjunction -> KeyError / None.
    with pytest.raises(KeyError):
        table.rows_for_constraints((("nope", 0),))
    assert table.resolve(Partition(np.array([0, 1]), (("nope", 0),))) is None
    # Constraints that do not describe the member set fail the size
    # cross-check: claim the whole gender=0 cell but hold one member.
    lying = Partition(np.array([0]), (("gender", 0),))
    assert table.resolve(lying) is None
    # An honest constrained partition resolves and verifies.
    honest = split_partition(
        small_population, Partition(small_population.all_indices()), "gender"
    )[0]
    rows = table.resolve(honest)
    assert rows is not None and table.verify(honest, rows)


def test_table_handles_no_protected_attributes() -> None:
    """Defensive guard: with zero protected attributes everything collapses
    into one atom.  (``WorkerSchema`` itself refuses empty protected sets,
    so the branch is exercised through a minimal stand-in.)"""

    class _Bare:
        size = 2

        class schema:
            protected_names = ()

    table = AtomTable.build(_Bare(), np.array([1, 6]), SPEC.bins)
    assert table.n_atoms == 1
    assert np.array_equal(
        table.histogram(np.array([0])),
        SPEC.histogram_from_bin_indices(np.array([1, 6])),
    )


# -------------------------------------------------------- engine atom paths


def _run(algorithm: str, population, scores, **kwargs):
    return get_algorithm(algorithm).run(population, scores, metric="emd", rng=5, **kwargs)


# The atom-vs-member bit-identity matrix moved to
# tests/parity/test_execution_parity.py (shared parity harness).


def test_atom_path_disabled_in_full_mode(small_population) -> None:
    engine = EvaluationEngine(
        small_population, np.linspace(0, 1, 12, endpoint=False), mode="full"
    )
    assert not engine.use_atoms
    assert engine.atom_rows(Partition(small_population.all_indices())) is None


def test_atom_hit_and_fallback_counters(small_population) -> None:
    metrics = MetricsRegistry()
    engine = EvaluationEngine(
        small_population, np.linspace(0, 1, 12, endpoint=False), metrics=metrics
    )
    root = Partition(small_population.all_indices())
    engine.pmf(root)
    engine.pmf(root)  # cached resolution: counted once
    engine.pmf(Partition(np.array([0, 3])))  # constraints don't cover members
    counters = metrics.as_dict()["counters"]
    assert counters["engine.atom_hits"] == 1
    assert counters["engine.atom_fallbacks"] == 1
    assert metrics.as_dict()["gauges"]["engine.atoms"] >= 1


def test_score_attribute_splits_declines_gracefully(small_population) -> None:
    engine = EvaluationEngine(small_population, np.linspace(0, 1, 12, endpoint=False))
    root = Partition(small_population.all_indices())
    constrained = split_partition(small_population, root, "gender")
    # Attribute already constrained on a partition -> member path decides.
    assert engine.score_attribute_splits(constrained, ["gender"]) is None
    assert engine.split_pmfs(constrained[0], ["gender"]) is None
    # Unknown attribute -> None (legacy path raises the canonical error).
    assert engine.score_attribute_splits([root], ["nope"]) is None
    # Atoms off -> None.
    off = EvaluationEngine(
        small_population, np.linspace(0, 1, 12, endpoint=False), use_atoms=False
    )
    assert off.score_attribute_splits([root], ["gender"]) is None
    assert off.split_pmfs(root, ["gender"]) is None


# ------------------------------------------------------------ LRU value cache


def test_value_cache_evicts_lru_and_counts(small_population, monkeypatch) -> None:
    monkeypatch.setattr(engine_module, "_CACHE_CAP", 2)
    metrics = MetricsRegistry()
    engine = EvaluationEngine(
        small_population, np.linspace(0, 1, 12, endpoint=False), metrics=metrics
    )
    root = Partition(small_population.all_indices())
    splits = {
        attr: split_partition(small_population, root, attr)
        for attr in ("gender", "country", "age")
    }
    engine.unfairness(splits["gender"])
    engine.unfairness(splits["country"])  # cache is now at cap
    assert engine.stats.cache_hits == 0
    engine.unfairness(splits["gender"])  # hit refreshes recency
    assert engine.stats.cache_hits == 1
    engine.unfairness(splits["age"])  # evicts "country" (least recent)
    counters = metrics.as_dict()["counters"]
    assert counters["engine.cache_evictions"] == 1
    assert len(engine._value_cache) == 2
    engine.unfairness(splits["gender"])  # still cached
    assert engine.stats.cache_hits == 2
    full_before = engine.stats.n_full_evaluations
    engine.unfairness(splits["country"])  # evicted: recomputed from scratch
    assert engine.stats.n_full_evaluations == full_before + 1


# --------------------------------------------- scalar cross_matrix dedup


class _CountingMetric(HistogramDistance):
    """A metric with no vectorized kernel that counts distance calls."""

    name = "counting-tv"

    def __init__(self) -> None:
        self.calls = 0

    def distance(self, p: np.ndarray, q: np.ndarray, spec: HistogramSpec) -> float:
        self.calls += 1
        return 0.5 * float(np.abs(p - q).sum())


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31 - 1))
def test_cross_matrix_dedup_matches_naive_loop(seed: int) -> None:
    """The scalar fallback pays one ``distance`` call per *distinct* row
    pair and broadcasts, matching the naive full double loop exactly."""
    rng = np.random.default_rng(seed)
    base_left = rng.dirichlet(np.ones(SPEC.bins), size=int(rng.integers(1, 4)))
    base_right = rng.dirichlet(np.ones(SPEC.bins), size=int(rng.integers(1, 4)))
    left = base_left[rng.integers(0, base_left.shape[0], size=int(rng.integers(1, 9)))]
    right = base_right[rng.integers(0, base_right.shape[0], size=int(rng.integers(1, 9)))]

    metric = _CountingMetric()
    fast = cross_matrix(metric, left, right, SPEC)
    n_unique = (
        np.unique(left, axis=0).shape[0] * np.unique(right, axis=0).shape[0]
    )
    assert metric.calls == n_unique

    naive = np.array(
        [[metric.distance(p, q, SPEC) for q in right] for p in left]
    )
    assert np.array_equal(fast, naive)


# ---------------------------------------- process backend + shared memory


def _shm_segments() -> set:
    return set(glob.glob("/dev/shm/psm_*"))


@pytest.mark.parametrize("use_atoms", [True, False])
def test_process_backend_bit_identical_and_cleans_up(
    paper_population_small, use_atoms: bool
) -> None:
    scores = np.random.default_rng(11).random(paper_population_small.size)
    before = _shm_segments()
    sequential = _run("balanced", paper_population_small, scores, use_atoms=use_atoms)
    metrics = MetricsRegistry()
    pooled = _run(
        "balanced",
        paper_population_small,
        scores,
        use_atoms=use_atoms,
        backend="process",
        workers=2,
        metrics=metrics,
    )
    assert pooled.unfairness == sequential.unfairness
    assert pooled.partitioning.canonical_key() == sequential.partitioning.canonical_key()
    gauges = metrics.as_dict()["gauges"]
    if use_atoms:
        assert gauges.get("engine.shared_memory_bytes", 0) > 0
    # engine.close() (run() always closes) must have unlinked every segment.
    assert _shm_segments() - before == set()


def test_chaos_drills_bit_identical_no_leaks(paper_population_small) -> None:
    """Soft crash (chunk retry), hard crash (pool rebuild) and corruption
    (validate + retry) all recover the clean answer without leaking
    shared-memory segments."""
    scores = np.random.default_rng(11).random(paper_population_small.size)
    baseline = _run("balanced", paper_population_small, scores)
    before = _shm_segments()
    drills = [
        FaultConfig(crash_rate=0.3, seed=11),
        FaultConfig(crash_rate=0.3, seed=11, crash_hard=True),
        FaultConfig(corrupt_rate=0.4, seed=5),
    ]
    for fault_config in drills:
        result = _run(
            "balanced",
            paper_population_small,
            scores,
            backend="process",
            workers=2,
            retry_policy=FAST,
            fault_config=fault_config,
        )
        assert result.unfairness == baseline.unfairness, fault_config
    # Sequential chaos stack exercises FaultInjectionBackend over the
    # atom-path histogram batches as well.
    sequential_chaos = _run(
        "balanced",
        paper_population_small,
        scores,
        retry_policy=FAST,
        fault_config=FaultConfig(crash_rate=0.3, corrupt_rate=0.2, seed=9),
    )
    assert sequential_chaos.unfairness == baseline.unfairness
    assert _shm_segments() - before == set()


_LEAK_DRILL = """
import numpy as np
from repro.core.algorithms import get_algorithm
from repro.engine.faults import FaultConfig
from repro.engine.resilience import RetryPolicy
from repro.simulation.generator import generate_paper_population

population = generate_paper_population(200, seed=3)
scores = np.random.default_rng(0).random(population.size)
result = get_algorithm("balanced").run(
    population,
    scores,
    metric="emd",
    rng=5,
    backend="process",
    workers=2,
    retry_policy=RetryPolicy(max_retries=6, backoff_seconds=0.0),
    fault_config=FaultConfig(crash_rate=0.3, seed=11, crash_hard=True),
)
print("UNFAIRNESS", repr(result.unfairness))
"""


def test_resource_tracker_reports_no_shm_leak_after_hard_crashes() -> None:
    """Full interpreter lifecycle drill: hard-crashed workers, pool rebuild,
    then exit.  The resource tracker prints a ``leaked shared_memory``
    warning at shutdown for any segment created but never unlinked — its
    silence is the leak-freedom assertion."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[1] / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _LEAK_DRILL],
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert proc.returncode == 0, proc.stderr
    assert "leaked shared_memory" not in proc.stderr, proc.stderr
    # And the chaos run still produced the clean bit-identical value.
    population_scores = np.random.default_rng(0).random(200)
    from repro.simulation.generator import generate_paper_population

    clean = get_algorithm("balanced").run(
        generate_paper_population(200, seed=3), population_scores, metric="emd", rng=5
    )
    assert f"UNFAIRNESS {clean.unfairness!r}" in proc.stdout
