"""Unit tests for the transportation-LP EMD and the thresholded variant."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.histogram import HistogramSpec
from repro.exceptions import MetricError
from repro.metrics.base import get_metric
from repro.metrics.emd import emd
from repro.metrics.transport import (
    ThresholdedEMDDistance,
    ground_distance_matrix,
    transport_emd,
)

SPEC = HistogramSpec(bins=8)

pmf_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=8, max_size=8
).map(lambda xs: np.array(xs) + 1e-9).map(lambda a: a / a.sum())


class TestGroundDistanceMatrix:
    def test_entries_are_center_distances(self) -> None:
        distances = ground_distance_matrix(SPEC)
        assert distances[0, 0] == 0.0
        assert distances[0, 1] == pytest.approx(SPEC.bin_width)
        assert distances[0, 7] == pytest.approx(7 * SPEC.bin_width)

    def test_symmetric(self) -> None:
        distances = ground_distance_matrix(SPEC)
        np.testing.assert_allclose(distances, distances.T)

    def test_threshold_clamps(self) -> None:
        distances = ground_distance_matrix(SPEC, threshold=0.2)
        assert distances.max() == pytest.approx(0.2)
        assert distances[0, 1] == pytest.approx(SPEC.bin_width)

    def test_invalid_threshold_rejected(self) -> None:
        with pytest.raises(MetricError, match="positive"):
            ground_distance_matrix(SPEC, threshold=0.0)


class TestTransportEMD:
    @given(p=pmf_strategy, q=pmf_strategy)
    @settings(max_examples=25, deadline=None)
    def test_matches_closed_form_for_linear_ground_distance(
        self, p: np.ndarray, q: np.ndarray
    ) -> None:
        distances = ground_distance_matrix(SPEC)
        lp_value = transport_emd(p, q, distances)
        closed_form = emd(p, q, SPEC.bin_width)
        assert lp_value == pytest.approx(closed_form, abs=1e-6)

    def test_zero_for_identical(self) -> None:
        p = np.ones(8) / 8
        assert transport_emd(p, p, ground_distance_matrix(SPEC)) == pytest.approx(0.0)

    def test_unequal_mass_rejected(self) -> None:
        with pytest.raises(MetricError, match="equal total mass"):
            transport_emd(
                np.ones(8) / 8, np.ones(8) / 4, ground_distance_matrix(SPEC)
            )

    def test_shape_mismatch_rejected(self) -> None:
        with pytest.raises(MetricError, match="inconsistent shapes"):
            transport_emd(np.ones(8) / 8, np.ones(4) / 4, np.zeros((8, 8)))

    def test_negative_ground_distance_rejected(self) -> None:
        distances = ground_distance_matrix(SPEC).copy()
        distances[0, 1] = -1.0
        with pytest.raises(MetricError, match="non-negative"):
            transport_emd(np.ones(8) / 8, np.ones(8) / 8, distances)

    def test_custom_ground_distance_changes_result(self) -> None:
        p = np.zeros(8)
        p[0] = 1.0
        q = np.zeros(8)
        q[7] = 1.0
        linear = transport_emd(p, q, ground_distance_matrix(SPEC))
        clamped = transport_emd(p, q, ground_distance_matrix(SPEC, threshold=0.1))
        assert clamped == pytest.approx(0.1)
        assert linear > clamped


class TestThresholdedEMD:
    def test_registered(self) -> None:
        assert isinstance(get_metric("emd-t"), ThresholdedEMDDistance)

    def test_equals_plain_emd_for_large_threshold(self) -> None:
        metric = ThresholdedEMDDistance(threshold=10.0)
        rng = np.random.default_rng(0)
        p = rng.dirichlet(np.ones(8))
        q = rng.dirichlet(np.ones(8))
        assert metric(p, q, SPEC) == pytest.approx(emd(p, q, SPEC.bin_width), abs=1e-6)

    @given(p=pmf_strategy, q=pmf_strategy)
    @settings(max_examples=15, deadline=None)
    def test_never_exceeds_plain_emd(self, p: np.ndarray, q: np.ndarray) -> None:
        metric = ThresholdedEMDDistance(threshold=0.2)
        assert metric(p, q, SPEC) <= emd(p, q, SPEC.bin_width) + 1e-6

    @given(p=pmf_strategy, q=pmf_strategy)
    @settings(max_examples=15, deadline=None)
    def test_bounded_by_threshold(self, p: np.ndarray, q: np.ndarray) -> None:
        metric = ThresholdedEMDDistance(threshold=0.15)
        assert metric(p, q, SPEC) <= 0.15 + 1e-7

    @given(p=pmf_strategy, q=pmf_strategy)
    @settings(max_examples=15, deadline=None)
    def test_symmetry(self, p: np.ndarray, q: np.ndarray) -> None:
        metric = ThresholdedEMDDistance(threshold=0.25)
        assert metric(p, q, SPEC) == pytest.approx(metric(q, p, SPEC), abs=1e-7)

    def test_invalid_threshold_rejected(self) -> None:
        with pytest.raises(MetricError, match="positive"):
            ThresholdedEMDDistance(threshold=-1.0)

    def test_usable_as_algorithm_objective(self, paper_population_small) -> None:
        from repro.core.algorithms import get_algorithm
        from repro.marketplace.biased import paper_biased_functions

        scores = paper_biased_functions()["f6"](paper_population_small)
        result = get_algorithm("single-attribute").run(
            paper_population_small, scores, metric=ThresholdedEMDDistance(0.3)
        )
        # f6 moves mass ~0.8 apart; clamped at 0.3 the gender split scores
        # the threshold itself.
        assert result.partitioning.attributes_used() == ("gender",)
        assert result.unfairness == pytest.approx(0.3, abs=0.02)