"""The committed BENCH_*.json trajectory stays valid under the v1 schema."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent.parent
_RUNNER = _ROOT / "benchmarks" / "run_bench.py"

spec = importlib.util.spec_from_file_location("run_bench", _RUNNER)
run_bench = importlib.util.module_from_spec(spec)
spec.loader.exec_module(run_bench)


def _bench_files() -> list[Path]:
    return sorted((_ROOT / "benchmarks" / "results").glob("BENCH_*.json"))


def test_committed_bench_files_exist() -> None:
    assert _bench_files(), "the repo should carry at least one BENCH_*.json"


@pytest.mark.parametrize("path", _bench_files(), ids=lambda p: p.name)
def test_committed_bench_files_validate(path: Path) -> None:
    run_bench.validate_bench_payload(json.loads(path.read_text()))


def _scaling_section() -> dict:
    timing = {"repeats": [0.01, 0.02], "median": 0.015, "min": 0.01}
    return {
        "function": "f4",
        "repeats": 2,
        "cases": [
            {
                "population": 2000,
                "n_atoms": 1200,
                "atom_table_build_seconds": 0.001,
                "paths": {path: dict(timing) for path in run_bench.SCALING_PATHS},
            }
        ],
    }


def test_validator_accepts_scaling_section() -> None:
    good = json.loads(_bench_files()[0].read_text())
    run_bench.validate_bench_payload({**good, "scaling": _scaling_section()})


def test_validator_rejects_malformed_scaling() -> None:
    good = json.loads(_bench_files()[0].read_text())
    with pytest.raises(ValueError, match="scaling.cases"):
        run_bench.validate_bench_payload(
            {**good, "scaling": {**_scaling_section(), "cases": []}}
        )
    missing_path = _scaling_section()
    del missing_path["cases"][0]["paths"]["atom"]
    with pytest.raises(ValueError, match="paths.atom"):
        run_bench.validate_bench_payload({**good, "scaling": missing_path})
    negative = _scaling_section()
    negative["cases"][0]["paths"]["member"]["median"] = -1.0
    with pytest.raises(ValueError, match="median"):
        run_bench.validate_bench_payload({**good, "scaling": negative})


def test_scaling_speedup_reads_largest_population() -> None:
    scaling = _scaling_section()
    scaling["cases"].append(
        {
            "population": 20000,
            "n_atoms": 1800,
            "atom_table_build_seconds": 0.002,
            "paths": {
                "atom": {"repeats": [0.01], "median": 0.01, "min": 0.01},
                "member": {"repeats": [0.05], "median": 0.05, "min": 0.05},
                "full": {"repeats": [0.06], "median": 0.06, "min": 0.06},
            },
        }
    )
    population, speedup = run_bench.scaling_speedup(scaling)
    assert population == 20000
    assert speedup == pytest.approx(5.0)


def _service_section() -> dict:
    return {
        "queue_depth": 8,
        "workers": 2,
        "jobs": 8,
        "wall_seconds": 0.4,
        "jobs_per_second": 20.0,
        "latency_seconds": {"median": 0.05, "min": 0.01, "max": 0.2},
    }


def test_validator_accepts_service_section() -> None:
    good = json.loads(_bench_files()[0].read_text())
    run_bench.validate_bench_payload({**good, "service": _service_section()})


def test_validator_rejects_malformed_service_section() -> None:
    good = json.loads(_bench_files()[0].read_text())
    with pytest.raises(ValueError, match="service.jobs_per_second"):
        run_bench.validate_bench_payload(
            {**good, "service": {**_service_section(), "jobs_per_second": "fast"}}
        )
    negative = _service_section()
    negative["latency_seconds"]["median"] = -0.1
    with pytest.raises(ValueError, match="latency_seconds.median"):
        run_bench.validate_bench_payload({**good, "service": negative})
    with pytest.raises(ValueError, match="service timings"):
        run_bench.validate_bench_payload(
            {**good, "service": {**_service_section(), "wall_seconds": 0.0}}
        )


def _service_load_point(**overrides) -> dict:
    point = {
        "offered_jobs_per_second": 500.0,
        "duration_seconds": 8.0,
        "submitted": 4000,
        "accepted": 3900,
        "rejected": 100,
        "completed": 3900,
        "jobs_per_second": 1800.0,
        "latency_seconds": {"p50": 0.02, "p99": 0.09, "max": 0.3},
    }
    point.update(overrides)
    return point


def _service_load_section(*points: dict) -> dict:
    return {
        "daemon": {
            "queue_workers": 2,
            "batch_max": 32,
            "bulk_size": 16,
            "connections": 8,
        },
        "mixes": [
            {"mix": "uniform", "points": list(points) or [_service_load_point()]},
            {"mix": "skewed", "points": [_service_load_point()]},
        ],
    }


def test_validator_accepts_service_load_section() -> None:
    good = json.loads(_bench_files()[0].read_text())
    run_bench.validate_bench_payload(
        {**good, "service_load": _service_load_section()}
    )


def test_validator_rejects_malformed_service_load() -> None:
    good = json.loads(_bench_files()[0].read_text())
    with pytest.raises(ValueError, match="mixes must be a non-empty list"):
        run_bench.validate_bench_payload(
            {**good, "service_load": {**_service_load_section(), "mixes": []}}
        )
    unknown_mix = _service_load_section()
    unknown_mix["mixes"][0]["mix"] = "thundering-herd"
    with pytest.raises(ValueError, match="mixes\\[0\\].mix"):
        run_bench.validate_bench_payload({**good, "service_load": unknown_mix})
    with pytest.raises(ValueError, match="daemon.batch_max"):
        no_batch = _service_load_section()
        no_batch["daemon"]["batch_max"] = 0
        run_bench.validate_bench_payload({**good, "service_load": no_batch})
    with pytest.raises(ValueError, match="jobs_per_second"):
        run_bench.validate_bench_payload(
            {
                **good,
                "service_load": _service_load_section(
                    _service_load_point(jobs_per_second="fast")
                ),
            }
        )
    with pytest.raises(ValueError, match="completed <= accepted <= submitted"):
        run_bench.validate_bench_payload(
            {
                **good,
                "service_load": _service_load_section(
                    _service_load_point(completed=5000)
                ),
            }
        )
    with pytest.raises(ValueError, match="p50 <= p99 <= max"):
        run_bench.validate_bench_payload(
            {
                **good,
                "service_load": _service_load_section(
                    _service_load_point(
                        latency_seconds={"p50": 0.2, "p99": 0.09, "max": 0.3}
                    )
                ),
            }
        )


def test_validator_checks_host_metadata() -> None:
    good = json.loads(_bench_files()[0].read_text())
    # cpu_count is optional (older payloads predate it) but typed when present.
    run_bench.validate_bench_payload(
        {**good, "host": {**good["host"], "cpu_count": 8}}
    )
    with pytest.raises(ValueError, match="host.cpu_count"):
        run_bench.validate_bench_payload(
            {**good, "host": {**good["host"], "cpu_count": "eight"}}
        )
    with pytest.raises(ValueError, match="host.python"):
        run_bench.validate_bench_payload(
            {**good, "host": {**good["host"], "python": ""}}
        )


def _mitigation_case(**overrides) -> dict:
    case = {
        "scenario": "table1-quick",
        "function": "f4",
        "algorithm": "balanced",
        "strategy": "fair_topk",
        "params": {"k": 120, "min_proportion": 1.0, "alpha": 0.5, "amount": 1.0},
        "n_partitions": 93,
        "k": 120,
        "audit_unfairness": 0.354,
        "unfairness_before": 0.354,
        "unfairness_after": 0.344,
        "ndcg_at_k": 0.998,
        "retained_score_mass": 1.0,
        "runtime_seconds": 0.4,
        "ranking_digest": 12345,
    }
    case.update(overrides)
    return case


def _mitigation_section(*cases: dict) -> dict:
    return {
        "function": "f4",
        "algorithm": "balanced",
        "cases": list(cases) or [_mitigation_case()],
    }


def test_validator_accepts_mitigation_section() -> None:
    good = json.loads(_bench_files()[0].read_text())
    run_bench.validate_bench_payload({**good, "mitigation": _mitigation_section()})


def test_committed_benches_with_mitigation_pass_the_gate() -> None:
    # The acceptance bar: every committed mitigation case improved, and the
    # re-ranking strategies held the NDCG floor.
    checked = 0
    for path in _bench_files():
        payload = json.loads(path.read_text())
        if "mitigation" not in payload:
            continue
        assert run_bench.mitigation_failures(payload["mitigation"]) == []
        checked += 1
    assert checked, "at least one committed bench should carry mitigation"


def test_validator_rejects_malformed_mitigation() -> None:
    good = json.loads(_bench_files()[0].read_text())
    with pytest.raises(ValueError, match="mitigation.cases"):
        run_bench.validate_bench_payload(
            {**good, "mitigation": {**_mitigation_section(), "cases": []}}
        )
    with pytest.raises(ValueError, match="ranking_digest"):
        run_bench.validate_bench_payload(
            {
                **good,
                "mitigation": _mitigation_section(
                    _mitigation_case(ranking_digest="abc")
                ),
            }
        )
    with pytest.raises(ValueError, match="ndcg_at_k"):
        run_bench.validate_bench_payload(
            {**good, "mitigation": _mitigation_section(_mitigation_case(ndcg_at_k=1.5))}
        )
    with pytest.raises(ValueError, match="unfairness_before"):
        run_bench.validate_bench_payload(
            {
                **good,
                "mitigation": _mitigation_section(
                    _mitigation_case(unfairness_before=-0.1)
                ),
            }
        )


def test_mitigation_failures_flags_regressions() -> None:
    worse = _mitigation_case(unfairness_after=0.5)
    lossy = _mitigation_case(strategy="det_rerank", ndcg_at_k=0.5)
    rescored = _mitigation_case(strategy="quantile", ndcg_at_k=0.5)
    failures = run_bench.mitigation_failures(
        _mitigation_section(worse, lossy, rescored)
    )
    assert len(failures) == 2  # quantile's NDCG is informational, not gated
    assert any("did not decrease" in f for f in failures)
    assert any("below" in f for f in failures)


def test_validator_rejects_malformed_payloads() -> None:
    good = json.loads(_bench_files()[0].read_text())
    with pytest.raises(ValueError, match="schema"):
        run_bench.validate_bench_payload({**good, "schema": "repro.bench/v0"})
    with pytest.raises(ValueError, match="cases"):
        run_bench.validate_bench_payload({**good, "cases": []})
    broken_case = {**good["cases"][0], "backend": "gpu"}
    with pytest.raises(ValueError, match="backend"):
        run_bench.validate_bench_payload(
            {**good, "cases": [broken_case] + good["cases"][1:]}
        )
    with pytest.raises(ValueError, match="overhead"):
        run_bench.validate_bench_payload(
            {**good, "overhead": {**good["overhead"], "relative": "fast"}}
        )


def _chaos_section(**overrides) -> dict:
    section = {
        "spec": "disk-fsync=0.05,seed=42",
        "seed": 42,
        "offered_jobs_per_second": 200.0,
        "duration_seconds": 3.0,
        "submitted": 600,
        "attempts": 780,
        "accepted": 600,
        "rejected_degraded": 180,
        "rejected_other": 0,
        "connection_errors": 0,
        "completed": 600,
        "jobs_per_second": 60.0,
        "availability": 0.42,
        "health_polls": 300,
        "degraded_episodes": 30,
        "recovery_seconds": {"p50": 0.055, "p99": 0.2, "max": 0.21},
        "final_state": "HEALTHY",
        "counters": {
            "chaos.faults_injected": 38,
            "service.journal_write_failures": 36,
            "service.degraded_entered": 36,
            "service.degraded_recoveries": 36,
            "service.watchdog_requeues": 0,
        },
    }
    section.update(overrides)
    return section


def test_validator_accepts_chaos_section() -> None:
    good = json.loads(_bench_files()[0].read_text())
    run_bench.validate_bench_payload({**good, "chaos": _chaos_section()})


def test_validator_rejects_malformed_chaos() -> None:
    good = json.loads(_bench_files()[0].read_text())
    with pytest.raises(ValueError, match="final_state"):
        run_bench.validate_bench_payload(
            {**good, "chaos": _chaos_section(final_state="READ_ONLY")}
        )
    with pytest.raises(ValueError, match="availability"):
        run_bench.validate_bench_payload(
            {**good, "chaos": _chaos_section(availability=1.5)}
        )
    with pytest.raises(ValueError, match="completed <= accepted <= attempts"):
        run_bench.validate_bench_payload(
            {**good, "chaos": _chaos_section(completed=900)}
        )
    with pytest.raises(ValueError, match="p50 <= p99 <= max"):
        run_bench.validate_bench_payload(
            {
                **good,
                "chaos": _chaos_section(
                    recovery_seconds={"p50": 0.3, "p99": 0.2, "max": 0.21}
                ),
            }
        )
    with pytest.raises(ValueError, match="recovery max is zero"):
        run_bench.validate_bench_payload(
            {
                **good,
                "chaos": _chaos_section(
                    recovery_seconds={"p50": 0.0, "p99": 0.0, "max": 0.0}
                ),
            }
        )
    missing_counter = _chaos_section()
    del missing_counter["counters"]["service.degraded_recoveries"]
    with pytest.raises(ValueError, match="degraded_recoveries"):
        run_bench.validate_bench_payload({**good, "chaos": missing_counter})


def test_committed_bench_carries_a_chaos_section() -> None:
    # The acceptance bar for the chaos layer: at least one committed bench
    # demonstrates the daemon degrading under injected disk faults and
    # probing its way back to HEALTHY.
    sections = [
        payload["chaos"]
        for payload in (json.loads(p.read_text()) for p in _bench_files())
        if "chaos" in payload
    ]
    assert sections, "at least one committed bench should carry a chaos section"
    assert any(
        s["counters"]["service.degraded_recoveries"] >= 1 for s in sections
    ), "a committed chaos section should show a degrade/recover cycle"
