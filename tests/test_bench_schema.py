"""The committed BENCH_*.json trajectory stays valid under the v1 schema."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_ROOT = Path(__file__).resolve().parent.parent
_RUNNER = _ROOT / "benchmarks" / "run_bench.py"

spec = importlib.util.spec_from_file_location("run_bench", _RUNNER)
run_bench = importlib.util.module_from_spec(spec)
spec.loader.exec_module(run_bench)


def _bench_files() -> list[Path]:
    return sorted((_ROOT / "benchmarks" / "results").glob("BENCH_*.json"))


def test_committed_bench_files_exist() -> None:
    assert _bench_files(), "the repo should carry at least one BENCH_*.json"


@pytest.mark.parametrize("path", _bench_files(), ids=lambda p: p.name)
def test_committed_bench_files_validate(path: Path) -> None:
    run_bench.validate_bench_payload(json.loads(path.read_text()))


def test_validator_rejects_malformed_payloads() -> None:
    good = json.loads(_bench_files()[0].read_text())
    with pytest.raises(ValueError, match="schema"):
        run_bench.validate_bench_payload({**good, "schema": "repro.bench/v0"})
    with pytest.raises(ValueError, match="cases"):
        run_bench.validate_bench_payload({**good, "cases": []})
    broken_case = {**good["cases"][0], "backend": "gpu"}
    with pytest.raises(ValueError, match="backend"):
        run_bench.validate_bench_payload(
            {**good, "cases": [broken_case] + good["cases"][1:]}
        )
    with pytest.raises(ValueError, match="overhead"):
        run_bench.validate_bench_payload(
            {**good, "overhead": {**good["overhead"], "relative": "fast"}}
        )
