"""The shared atomic-write helpers (``repro.io.atomic``).

The contract under test: after :func:`atomic_write_bytes` returns, the
target holds exactly the new bytes; if the write dies at any earlier point,
the target still holds exactly the old bytes.  There is never a moment a
reader can observe a partial file, and no temp debris survives a failure.
"""

from __future__ import annotations

import os

import pytest

from repro.io.atomic import (
    atomic_write_bytes,
    atomic_write_text,
    ensure_directory,
    fsync_directory,
)


class TestEnsureDirectory:
    def test_creates_nested_directories(self, tmp_path):
        target = tmp_path / "a" / "b" / "c"
        ensure_directory(target)
        assert target.is_dir()

    def test_idempotent(self, tmp_path):
        target = tmp_path / "x"
        ensure_directory(target)
        ensure_directory(target)  # exist_ok: no race window, no error
        assert target.is_dir()


class TestAtomicWrite:
    def test_creates_file_with_exact_bytes(self, tmp_path):
        path = tmp_path / "data.bin"
        atomic_write_bytes(path, b"\x00\x01payload")
        assert path.read_bytes() == b"\x00\x01payload"

    def test_overwrites_existing_file(self, tmp_path):
        path = tmp_path / "data.txt"
        atomic_write_text(path, "old contents, longer than the new ones\n")
        atomic_write_text(path, "new\n")
        assert path.read_text() == "new\n"

    def test_no_temp_files_left_behind(self, tmp_path):
        path = tmp_path / "data.txt"
        atomic_write_text(path, "one\n")
        atomic_write_text(path, "two\n")
        assert os.listdir(tmp_path) == ["data.txt"]

    def test_failed_replace_preserves_old_contents(self, tmp_path, monkeypatch):
        path = tmp_path / "data.txt"
        atomic_write_text(path, "intact\n")

        def boom(src, dst):
            raise OSError("simulated crash at the replace boundary")

        monkeypatch.setattr(os, "replace", boom)
        with pytest.raises(OSError, match="simulated crash"):
            atomic_write_text(path, "torn\n")
        assert path.read_text() == "intact\n"

    def test_failed_fsync_preserves_old_contents(self, tmp_path, monkeypatch):
        path = tmp_path / "data.txt"
        atomic_write_text(path, "intact\n")

        def boom(fd):
            raise OSError("simulated fsync failure")

        monkeypatch.setattr(os, "fsync", boom)
        with pytest.raises(OSError, match="simulated fsync"):
            atomic_write_text(path, "torn\n")
        assert path.read_text() == "intact\n"

    def test_fsync_directory_is_best_effort(self, tmp_path):
        # Never raises for an ordinary directory; the torn cases above cover
        # the failure paths that matter.
        fsync_directory(tmp_path)
