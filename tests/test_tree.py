"""Unit tests for split-tree reconstruction and rendering."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.partition import Partition
from repro.core.population import Population
from repro.core.tree import build_split_tree, render_split_tree
from repro.exceptions import PartitioningError


def _figure1_partitions() -> list[Partition]:
    """The paper's Figure 1 structure over 6 workers."""
    return [
        Partition(np.array([0]), (("gender", 0), ("language", 0))),
        Partition(np.array([1]), (("gender", 0), ("language", 1))),
        Partition(np.array([2]), (("gender", 0), ("language", 2))),
        Partition(np.array([3, 4, 5]), (("gender", 1),)),
    ]


class TestBuildSplitTree:
    def test_single_root_partition(self) -> None:
        tree = build_split_tree([Partition(np.arange(4))])
        assert tree.is_leaf
        assert tree.depth == 0
        assert tree.partition is not None

    def test_figure1_structure(self) -> None:
        tree = build_split_tree(_figure1_partitions())
        assert tree.split_attribute == "gender"
        assert len(tree.children) == 2
        assert tree.depth == 2
        male = next(c for c in tree.children if c.constraints == (("gender", 0),))
        female = next(c for c in tree.children if c.constraints == (("gender", 1),))
        assert male.split_attribute == "language"
        assert len(male.children) == 3
        assert female.is_leaf

    def test_leaves_enumerates_all_partitions(self) -> None:
        tree = build_split_tree(_figure1_partitions())
        leaves = tree.leaves()
        assert len(leaves) == 4
        assert all(leaf.partition is not None for leaf in leaves)

    def test_inconsistent_split_attribute_rejected(self) -> None:
        partitions = [
            Partition(np.array([0]), (("gender", 0),)),
            Partition(np.array([1]), (("country", 0),)),
        ]
        with pytest.raises(PartitioningError, match="splits on both"):
            build_split_tree(partitions)

    def test_duplicate_leaf_rejected(self) -> None:
        partitions = [
            Partition(np.array([0]), (("gender", 0),)),
            Partition(np.array([1]), (("gender", 0),)),
        ]
        with pytest.raises(PartitioningError, match="duplicate leaf"):
            build_split_tree(partitions)

    def test_leaf_with_children_rejected(self) -> None:
        partitions = [
            Partition(np.array([0]), (("gender", 0),)),
            Partition(np.array([1]), (("gender", 0), ("country", 0))),
        ]
        with pytest.raises(PartitioningError, match="leaf would need children"):
            build_split_tree(partitions)


class TestRenderSplitTree:
    def test_renders_figure1_shape(self, toy: Population) -> None:
        # Reconstruct the actual Figure 1 optimum over the toy population.
        codes_gender = toy.partition_codes("gender")
        codes_language = toy.partition_codes("language")
        male = codes_gender == 0
        partitions = [
            Partition(np.nonzero(male & (codes_language == code))[0],
                      (("gender", 0), ("language", code)))
            for code in range(3)
        ]
        partitions.append(Partition(np.nonzero(~male)[0], (("gender", 1),)))
        text = render_split_tree(build_split_tree(partitions), toy.schema)
        assert text.splitlines()[0] == "ALL  [split on gender]"
        assert "gender=Male  [split on language]" in text
        assert "language=English (n=2)" in text
        assert "gender=Female (n=6)" in text

    def test_render_root_only(self, toy: Population) -> None:
        text = render_split_tree(
            build_split_tree([Partition(toy.all_indices())]), toy.schema
        )
        assert text == "ALL (n=12)"

    def test_render_integer_attribute_interval(
        self, small_population: Population
    ) -> None:
        codes = small_population.partition_codes("age")
        partitions = [
            Partition(np.nonzero(codes == code)[0], (("age", int(code)),))
            for code in np.unique(codes)
        ]
        text = render_split_tree(
            build_split_tree(partitions), small_population.schema
        )
        assert "age∈[18-27]" in text
