"""Edge cases and failure injection across the whole stack.

Degenerate inputs a production library must survive: one-worker populations,
constant attributes, one-bin histograms, saturated scores, minimal schemas.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithms import available_algorithms, get_algorithm
from repro.core.attributes import CategoricalAttribute, ObservedAttribute
from repro.core.histogram import HistogramSpec
from repro.core.partition import Partition, Partitioning
from repro.core.population import Population
from repro.core.schema import WorkerSchema
from repro.core.unfairness import UnfairnessEvaluator
from repro.repair.quantile import repair_scores

MINIMAL_SCHEMA = WorkerSchema(
    protected=(CategoricalAttribute("g", ("a", "b")),),
    observed=(ObservedAttribute("skill", 0.0, 1.0),),
)

ALL_RUNNABLE = [name for name in available_algorithms() if name != "exhaustive"]


def _population(genders: list[int], skills: list[float]) -> Population:
    return Population(
        MINIMAL_SCHEMA,
        {"g": np.array(genders)},
        {"skill": np.array(skills)},
    )


class TestSingleWorker:
    @pytest.mark.parametrize("name", ALL_RUNNABLE + ["exhaustive"])
    def test_every_algorithm_handles_one_worker(self, name: str) -> None:
        population = _population([0], [0.5])
        result = get_algorithm(name).run(
            population, np.array([0.5]), rng=0
        )
        assert result.partitioning.population_size == 1
        assert result.unfairness == 0.0

    def test_one_worker_histogram(self) -> None:
        spec = HistogramSpec(bins=10)
        pmf = spec.normalized_histogram(np.array([0.55]))
        assert pmf.sum() == pytest.approx(1.0)
        assert pmf[5] == pytest.approx(1.0)


class TestConstantAttribute:
    @pytest.mark.parametrize("name", ALL_RUNNABLE)
    def test_single_valued_attribute_column(self, name: str) -> None:
        # Every worker shares one gender: splits are no-ops and the result
        # must still be a legal partitioning.
        population = _population([0] * 8, list(np.linspace(0, 1, 8)))
        result = get_algorithm(name).run(
            population, population.observed_column("skill"), rng=0
        )
        assert result.partitioning.population_size == 8
        assert result.unfairness == 0.0  # one non-empty cell -> no pairs


class TestDegenerateScores:
    @pytest.mark.parametrize("value", [0.0, 1.0])
    def test_saturated_scores(self, value: float) -> None:
        population = _population([0, 0, 1, 1], [value] * 4)
        result = get_algorithm("balanced").run(
            population, np.full(4, value)
        )
        assert result.unfairness == 0.0

    def test_two_point_scores_maximally_separated(self) -> None:
        population = _population([0, 0, 1, 1], [0.0, 0.0, 1.0, 1.0])
        result = get_algorithm("balanced").run(
            population, population.observed_column("skill")
        )
        # Mass in the first vs last of 10 bins: EMD = 0.9 in score units.
        assert result.unfairness == pytest.approx(0.9)
        assert result.partitioning.attributes_used() == ("g",)


class TestExtremeBinning:
    def test_single_bin_histogram_sees_no_unfairness(self) -> None:
        population = _population([0, 0, 1, 1], [0.0, 0.1, 0.9, 1.0])
        result = get_algorithm("balanced").run(
            population,
            population.observed_column("skill"),
            hist_spec=HistogramSpec(bins=1),
        )
        assert result.unfairness == 0.0

    def test_very_fine_binning_still_bounded(self) -> None:
        population = _population([0, 0, 1, 1], [0.0, 0.0, 1.0, 1.0])
        result = get_algorithm("balanced").run(
            population,
            population.observed_column("skill"),
            hist_spec=HistogramSpec(bins=1000),
        )
        assert result.unfairness <= 1.0
        assert result.unfairness == pytest.approx(0.999)


class TestRepairDegenerate:
    def test_repair_single_partition_is_monotone_transform(self) -> None:
        scores = np.array([0.2, 0.8, 0.5, 0.1])
        partitioning = Partitioning([Partition(np.arange(4))], 4)
        repaired = repair_scores(scores, partitioning, amount=1.0)
        # One group: quantile alignment against the pooled distribution is
        # (approximately) the identity up to interpolation.
        assert np.argsort(repaired).tolist() == np.argsort(scores).tolist()

    def test_repair_singleton_groups(self) -> None:
        scores = np.array([0.2, 0.8])
        partitioning = Partitioning(
            [Partition(np.array([0])), Partition(np.array([1]))], 2
        )
        repaired = repair_scores(scores, partitioning, amount=1.0)
        # Each singleton maps to the pooled median.
        assert repaired[0] == pytest.approx(repaired[1])


class TestEvaluatorDegenerate:
    def test_unfairness_of_empty_partition_list(self) -> None:
        population = _population([0, 1], [0.2, 0.8])
        evaluator = UnfairnessEvaluator(
            population, population.observed_column("skill")
        )
        assert evaluator.unfairness([]) == 0.0

    def test_pairwise_matrix_of_one_partition(self) -> None:
        population = _population([0, 1], [0.2, 0.8])
        evaluator = UnfairnessEvaluator(
            population, population.observed_column("skill")
        )
        matrix = evaluator.pairwise_matrix([Partition(np.arange(2))])
        assert matrix.shape == (1, 1)
        assert matrix[0, 0] == 0.0
