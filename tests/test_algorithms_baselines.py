"""Unit tests for the non-adaptive baselines and the algorithm registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithms import (
    PAPER_ALGORITHMS,
    available_algorithms,
    get_algorithm,
)
from repro.core.population import Population
from repro.exceptions import PartitioningError


class TestRegistry:
    def test_all_paper_algorithms_available(self) -> None:
        names = available_algorithms()
        for name in PAPER_ALGORITHMS:
            assert name in names
        assert "exhaustive" in names
        assert "single-attribute" in names

    def test_unknown_algorithm_raises(self) -> None:
        with pytest.raises(PartitioningError, match="unknown algorithm"):
            get_algorithm("nope")

    def test_options_forwarded_to_constructor(self) -> None:
        algorithm = get_algorithm("exhaustive", budget=123)
        assert algorithm.budget == 123  # type: ignore[attr-defined]


class TestResultDescribe:
    def test_describe_lists_headline_and_groups(
        self, small_population: Population
    ) -> None:
        scores = small_population.observed_column("skill")
        result = get_algorithm("single-attribute").run(small_population, scores)
        text = result.describe(small_population.schema)
        assert "algorithm     : single-attribute" in text
        assert "unfairness" in text
        assert "gender=Male" in text
        assert "partitioning evaluations" in text


class TestAllAttributes:
    def test_splits_on_every_protected_attribute(
        self, small_population: Population
    ) -> None:
        scores = small_population.observed_column("skill")
        result = get_algorithm("all-attributes").run(small_population, scores)
        assert result.partitioning.attributes_used() == ("age", "country", "gender")

    def test_cell_count_bounded_by_cross_product(
        self, paper_population_small: Population
    ) -> None:
        scores = np.random.default_rng(0).uniform(size=paper_population_small.size)
        result = get_algorithm("all-attributes").run(paper_population_small, scores)
        bound = paper_population_small.schema.search_space_size()
        assert 2 <= result.partitioning.k <= bound

    def test_every_cell_is_homogeneous(self, small_population: Population) -> None:
        scores = small_population.observed_column("skill")
        result = get_algorithm("all-attributes").run(small_population, scores)
        for partition in result.partitioning:
            for name in small_population.schema.protected_names:
                codes = small_population.partition_codes(name)[partition.indices]
                assert len(np.unique(codes)) == 1

    def test_deterministic(self, small_population: Population) -> None:
        scores = small_population.observed_column("skill")
        first = get_algorithm("all-attributes").run(small_population, scores)
        second = get_algorithm("all-attributes").run(small_population, scores)
        assert first.unfairness == second.unfairness


class TestSingleAttribute:
    def test_uses_exactly_one_attribute(self, small_population: Population) -> None:
        scores = small_population.observed_column("skill")
        result = get_algorithm("single-attribute").run(small_population, scores)
        assert len(result.partitioning.attributes_used()) == 1

    def test_picks_the_most_separating_attribute(
        self, small_population: Population
    ) -> None:
        # The fixture's skill correlates with gender.
        scores = small_population.observed_column("skill")
        result = get_algorithm("single-attribute").run(small_population, scores)
        assert result.partitioning.attributes_used() == ("gender",)

    def test_is_dominated_by_subgroup_search_on_toy(self, toy: Population) -> None:
        # The whole point of the paper: single-attribute auditing misses
        # subgroup unfairness.
        scores = toy.observed_column("qualification")
        single = get_algorithm("single-attribute").run(toy, scores)
        subgroup = get_algorithm("unbalanced").run(toy, scores)
        assert subgroup.unfairness > single.unfairness
