"""Unit and property tests for the alternative histogram distances."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.histogram import HistogramSpec
from repro.exceptions import MetricError
from repro.metrics.base import available_metrics, get_metric
from repro.metrics.divergences import (
    HellingerDistance,
    JensenShannonDistance,
    KolmogorovSmirnovDistance,
    TotalVariationDistance,
)

SPEC = HistogramSpec(bins=8)

pmf_strategy = st.lists(
    st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=8, max_size=8
).map(lambda xs: np.array(xs) + 1e-9).map(lambda a: a / a.sum())

ALL_METRICS = [
    KolmogorovSmirnovDistance(),
    TotalVariationDistance(),
    JensenShannonDistance(),
    HellingerDistance(),
]


class TestRegistry:
    def test_all_metrics_registered(self) -> None:
        names = available_metrics()
        for expected in ("emd", "ks", "tv", "js", "hellinger"):
            assert expected in names

    def test_get_metric_by_instance_passthrough(self) -> None:
        metric = TotalVariationDistance()
        assert get_metric(metric) is metric

    def test_get_unknown_metric_raises(self) -> None:
        with pytest.raises(MetricError, match="unknown metric"):
            get_metric("nope")


class TestKnownValues:
    def test_ks_is_max_cdf_gap(self) -> None:
        p = np.array([1.0, 0, 0, 0, 0, 0, 0, 0])
        q = np.array([0, 0, 0, 0, 0, 0, 0, 1.0])
        assert KolmogorovSmirnovDistance()(p, q, SPEC) == pytest.approx(1.0)

    def test_tv_of_disjoint_supports_is_one(self) -> None:
        p = np.array([0.5, 0.5, 0, 0, 0, 0, 0, 0])
        q = np.array([0, 0, 0.5, 0.5, 0, 0, 0, 0])
        assert TotalVariationDistance()(p, q, SPEC) == pytest.approx(1.0)

    def test_tv_half_overlap(self) -> None:
        p = np.array([0.5, 0.5, 0, 0, 0, 0, 0, 0])
        q = np.array([0.5, 0, 0.5, 0, 0, 0, 0, 0])
        assert TotalVariationDistance()(p, q, SPEC) == pytest.approx(0.5)

    def test_js_of_disjoint_supports_is_one(self) -> None:
        p = np.array([1.0, 0, 0, 0, 0, 0, 0, 0])
        q = np.array([0, 1.0, 0, 0, 0, 0, 0, 0])
        assert JensenShannonDistance()(p, q, SPEC) == pytest.approx(1.0)

    def test_hellinger_of_disjoint_supports_is_one(self) -> None:
        p = np.array([1.0, 0, 0, 0, 0, 0, 0, 0])
        q = np.array([0, 1.0, 0, 0, 0, 0, 0, 0])
        assert HellingerDistance()(p, q, SPEC) == pytest.approx(1.0)

    def test_ks_insensitive_to_distance_between_modes(self) -> None:
        # Unlike EMD, KS does not grow when mass moves further away.
        near_p = np.array([1.0, 0, 0, 0, 0, 0, 0, 0])
        near_q = np.array([0, 1.0, 0, 0, 0, 0, 0, 0])
        far_q = np.array([0, 0, 0, 0, 0, 0, 0, 1.0])
        ks = KolmogorovSmirnovDistance()
        assert ks(near_p, near_q, SPEC) == pytest.approx(ks(near_p, far_q, SPEC))
        emd = get_metric("emd")
        assert emd(near_p, far_q, SPEC) > emd(near_p, near_q, SPEC)


class TestMetricAxioms:
    @pytest.mark.parametrize("metric", ALL_METRICS, ids=lambda m: m.name)
    @given(p=pmf_strategy, q=pmf_strategy)
    @settings(max_examples=25)
    def test_symmetry_and_nonnegativity(self, metric, p, q) -> None:
        d_pq = metric(p, q, SPEC)
        d_qp = metric(q, p, SPEC)
        assert d_pq >= 0.0
        assert d_pq == pytest.approx(d_qp, abs=1e-9)

    @pytest.mark.parametrize("metric", ALL_METRICS, ids=lambda m: m.name)
    @given(p=pmf_strategy)
    @settings(max_examples=25)
    def test_self_distance_is_zero(self, metric, p) -> None:
        assert metric(p, p, SPEC) == pytest.approx(0.0, abs=1e-7)

    @pytest.mark.parametrize("metric", ALL_METRICS, ids=lambda m: m.name)
    @given(p=pmf_strategy, q=pmf_strategy)
    @settings(max_examples=25)
    def test_bounded_by_one(self, metric, p, q) -> None:
        assert metric(p, q, SPEC) <= 1.0 + 1e-9

    @pytest.mark.parametrize(
        "metric",
        [TotalVariationDistance(), JensenShannonDistance(), HellingerDistance()],
        ids=lambda m: m.name,
    )
    @given(p=pmf_strategy, q=pmf_strategy, r=pmf_strategy)
    @settings(max_examples=25)
    def test_triangle_inequality(self, metric, p, q, r) -> None:
        assert metric(p, r, SPEC) <= metric(p, q, SPEC) + metric(q, r, SPEC) + 1e-7


class TestAggregateDefaults:
    def test_generic_average_pairwise_matches_manual(self) -> None:
        metric = TotalVariationDistance()
        rng = np.random.default_rng(11)
        pmfs = rng.dirichlet(np.ones(8), size=5)
        manual = np.mean(
            [
                metric.distance(pmfs[i], pmfs[j], SPEC)
                for i in range(5)
                for j in range(i + 1, 5)
            ]
        )
        assert metric.average_pairwise(pmfs, SPEC) == pytest.approx(manual)

    def test_generic_average_pairwise_single_histogram_is_zero(self) -> None:
        metric = KolmogorovSmirnovDistance()
        assert metric.average_pairwise(np.ones((1, 8)) / 8, SPEC) == 0.0
