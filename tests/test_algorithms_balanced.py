"""Unit tests for the ``balanced`` algorithm (paper Algorithm 1) and its
random-attribute baseline ``r-balanced``."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithms import get_algorithm
from repro.core.population import Population
from repro.exceptions import PartitioningError
from repro.marketplace.biased import paper_biased_functions


class TestBalanced:
    def test_returns_full_disjoint_partitioning(
        self, paper_population_small: Population
    ) -> None:
        scores = np.random.default_rng(0).uniform(size=paper_population_small.size)
        result = get_algorithm("balanced").run(paper_population_small, scores)
        assert result.partitioning.population_size == paper_population_small.size

    def test_balanced_tree_property(self, paper_population_small: Population) -> None:
        # Every leaf of a balanced partitioning is constrained on the same
        # attribute set (that is the defining property of Algorithm 1).
        scores = np.random.default_rng(1).uniform(size=paper_population_small.size)
        result = get_algorithm("balanced").run(paper_population_small, scores)
        attribute_sets = {
            frozenset(p.constrained_attributes()) for p in result.partitioning
        }
        assert len(attribute_sets) == 1

    def test_finds_planted_gender_bias(self, paper_population_small: Population) -> None:
        # f6 scores males > 0.8 and females < 0.2: balanced must split on
        # gender alone and reach EMD ~ 0.8 (paper Table 3, f6 = 0.800).
        scores = paper_biased_functions()["f6"](paper_population_small)
        result = get_algorithm("balanced").run(paper_population_small, scores)
        assert result.partitioning.attributes_used() == ("gender",)
        assert result.unfairness == pytest.approx(0.8, abs=0.05)

    def test_finds_planted_gender_country_bias(
        self, paper_population_small: Population
    ) -> None:
        scores = paper_biased_functions()["f7"](paper_population_small)
        result = get_algorithm("balanced").run(paper_population_small, scores)
        assert result.partitioning.attributes_used() == ("country", "gender")

    def test_stops_when_splitting_does_not_help(
        self, small_population: Population
    ) -> None:
        # Constant scores: every split produces identical histograms, so the
        # first split already fails to improve and growth must stop there.
        scores = np.full(small_population.size, 0.5)
        result = get_algorithm("balanced").run(small_population, scores)
        assert result.unfairness == 0.0
        assert result.partitioning.max_depth() <= 1

    def test_deterministic_across_runs(self, paper_population_small: Population) -> None:
        scores = np.random.default_rng(2).uniform(size=paper_population_small.size)
        first = get_algorithm("balanced").run(paper_population_small, scores)
        second = get_algorithm("balanced").run(paper_population_small, scores)
        assert first.unfairness == second.unfairness
        assert (
            first.partitioning.canonical_key() == second.partitioning.canonical_key()
        )

    def test_result_metadata(self, small_population: Population) -> None:
        scores = small_population.observed_column("skill")
        result = get_algorithm("balanced").run(small_population, scores)
        assert result.algorithm == "balanced"
        assert result.metric == "emd"
        assert result.runtime_seconds >= 0.0
        assert result.n_evaluations > 0

    def test_empty_population_rejected(self, small_population: Population) -> None:
        empty = small_population.subset(np.array([], dtype=np.int64))
        with pytest.raises(PartitioningError, match="empty population"):
            get_algorithm("balanced").run(empty, np.array([]))


class TestRandomBalanced:
    def test_balanced_tree_property_holds(
        self, paper_population_small: Population
    ) -> None:
        scores = np.random.default_rng(3).uniform(size=paper_population_small.size)
        result = get_algorithm("r-balanced").run(paper_population_small, scores, rng=0)
        attribute_sets = {
            frozenset(p.constrained_attributes()) for p in result.partitioning
        }
        assert len(attribute_sets) == 1

    def test_same_seed_same_result(self, paper_population_small: Population) -> None:
        scores = np.random.default_rng(4).uniform(size=paper_population_small.size)
        algorithm = get_algorithm("r-balanced")
        first = algorithm.run(paper_population_small, scores, rng=7)
        second = algorithm.run(paper_population_small, scores, rng=7)
        assert first.partitioning.canonical_key() == second.partitioning.canonical_key()

    def test_different_seeds_can_differ(
        self, paper_population_small: Population
    ) -> None:
        scores = paper_biased_functions()["f7"](paper_population_small)
        algorithm = get_algorithm("r-balanced")
        keys = {
            frozenset(
                algorithm.run(paper_population_small, scores, rng=s)
                .partitioning.attributes_used()
            )
            for s in range(6)
        }
        assert len(keys) > 1  # the attribute choice really is random

    def test_never_beats_balanced_on_strong_planted_bias(
        self, paper_population_small: Population
    ) -> None:
        # On f6 the gender-only split is optimal among balanced trees;
        # a random first attribute can only tie it or do worse.
        scores = paper_biased_functions()["f6"](paper_population_small)
        balanced_value = (
            get_algorithm("balanced").run(paper_population_small, scores).unfairness
        )
        for seed in range(5):
            random_value = (
                get_algorithm("r-balanced")
                .run(paper_population_small, scores, rng=seed)
                .unfairness
            )
            assert random_value <= balanced_value + 1e-9
