"""Golden regression tests for the paper-table pipeline.

Committed JSON files under ``tests/golden/`` pin the exact output of
small-population table1/table2 runs (all five paper algorithms, fixed
seeds).  Any change to the scoring kernels, search order, engine caching or
RNG plumbing that shifts a value — even in the 15th decimal — fails here
before it silently skews a full reproduction run.

Regenerate after an *intentional* behaviour change with::

    PYTHONPATH=src python tests/test_golden_tables.py --regenerate

and review the diff like any other code change.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.simulation.config import PaperConfig
from repro.simulation.runner import run_scenario
from repro.simulation.scenarios import table1_scenario, table2_scenario

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Golden cases: small enough to run in seconds, big enough to exercise
#: every algorithm's real search path.  Seeds are frozen forever.
CASES = {
    "table1_small": {
        "builder": "table1",
        "n_workers": 120,
        "population_seed": 42,
        "run_seed": 42,
    },
    "table2_small": {
        "builder": "table2",
        "n_workers": 200,
        "population_seed": 42,
        "run_seed": 42,
    },
}

#: Absolute tolerance on objective values.  The pipeline is deterministic,
#: so this only allows for float formatting round-trip noise.
TOLERANCE = 1e-12

_BUILDERS = {"table1": table1_scenario, "table2": table2_scenario}


def _run_case(spec: dict):
    builder = _BUILDERS[spec["builder"]]
    scenario = builder(
        PaperConfig(n_workers=spec["n_workers"], seed=spec["population_seed"])
    )
    return run_scenario(scenario, seed=spec["run_seed"])


def _as_golden(result) -> dict:
    """The stable subset of an experiment result (no runtimes/counters)."""
    return {
        "scenario": result.scenario,
        "rows": [
            {
                "function": row.function,
                "algorithm": row.algorithm,
                "unfairness": row.unfairness,
                "n_partitions": row.n_partitions,
                "attributes_used": list(row.attributes_used),
            }
            for row in result.rows
        ],
    }


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_table(name):
    path = GOLDEN_DIR / f"{name}.json"
    assert path.exists(), (
        f"missing golden file {path}; generate it with "
        "'PYTHONPATH=src python tests/test_golden_tables.py --regenerate'"
    )
    golden = json.loads(path.read_text())
    actual = _as_golden(_run_case(CASES[name]))
    assert actual["scenario"] == golden["scenario"]
    assert len(actual["rows"]) == len(golden["rows"])
    for got, want in zip(actual["rows"], golden["rows"]):
        cell = f"{want['function']}/{want['algorithm']}"
        assert got["function"] == want["function"], cell
        assert got["algorithm"] == want["algorithm"], cell
        assert got["unfairness"] == pytest.approx(
            want["unfairness"], abs=TOLERANCE
        ), f"unfairness drifted in {cell}"
        assert got["n_partitions"] == want["n_partitions"], cell
        assert got["attributes_used"] == want["attributes_used"], cell


def test_golden_files_cover_all_five_algorithms():
    from repro.core.algorithms import PAPER_ALGORITHMS

    for name in CASES:
        golden = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
        assert {row["algorithm"] for row in golden["rows"]} == set(PAPER_ALGORITHMS)


def _regenerate() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, spec in CASES.items():
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(
            json.dumps(_as_golden(_run_case(spec)), indent=2, sort_keys=True) + "\n"
        )
        print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    if "--regenerate" not in sys.argv:
        raise SystemExit("usage: python tests/test_golden_tables.py --regenerate")
    _regenerate()
