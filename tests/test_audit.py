"""Unit tests for the FairnessAuditor facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.audit import FairnessAuditor
from repro.core.histogram import HistogramSpec
from repro.core.population import Population
from repro.marketplace.biased import paper_biased_functions
from repro.marketplace.scoring import paper_functions


class TestAudit:
    def test_audit_with_scoring_function(
        self, paper_population_small: Population
    ) -> None:
        auditor = FairnessAuditor(paper_population_small)
        report = auditor.audit(paper_functions()["f4"], algorithm="unbalanced")
        assert report.unfairness > 0.0
        assert len(report.groups) == report.result.partitioning.k

    def test_audit_with_raw_scores(self, small_population: Population) -> None:
        auditor = FairnessAuditor(small_population)
        scores = small_population.observed_column("skill")
        report = auditor.audit(scores, algorithm="balanced")
        assert report.scores is not None
        assert report.result.algorithm == "balanced"

    def test_group_summaries_are_consistent(
        self, small_population: Population
    ) -> None:
        auditor = FairnessAuditor(small_population)
        scores = small_population.observed_column("skill")
        report = auditor.audit(scores)
        for group, partition in zip(report.groups, report.result.partitioning):
            member_scores = scores[partition.indices]
            assert group.size == partition.size
            assert group.mean_score == pytest.approx(member_scores.mean())
            assert group.min_score <= group.median_score <= group.max_score

    def test_most_separated_pair_matches_matrix(
        self, paper_population_small: Population
    ) -> None:
        auditor = FairnessAuditor(paper_population_small)
        report = auditor.audit(paper_biased_functions()["f6"])
        a, b, distance = report.most_separated_pair()
        assert distance == pytest.approx(report.pairwise.max())
        assert a.label != b.label

    def test_most_separated_pair_single_group_raises(
        self, small_population: Population
    ) -> None:
        auditor = FairnessAuditor(small_population)
        report = auditor.audit(np.full(small_population.size, 0.5))
        if len(report.groups) < 2:
            with pytest.raises(ValueError, match="single group"):
                report.most_separated_pair()

    def test_render_contains_headline_groups_and_tree(
        self, paper_population_small: Population
    ) -> None:
        auditor = FairnessAuditor(paper_population_small)
        report = auditor.audit(paper_biased_functions()["f6"])
        text = report.render()
        assert "Fairness audit" in text
        assert "unfairness" in text
        assert "gender=Male" in text
        assert "Split tree:" in text

    def test_custom_histogram_spec_and_metric(
        self, small_population: Population
    ) -> None:
        auditor = FairnessAuditor(
            small_population, hist_spec=HistogramSpec(bins=5), metric="tv"
        )
        report = auditor.audit(small_population.observed_column("skill"))
        assert report.result.metric == "tv"

    def test_algorithm_options_forwarded(self, toy: Population) -> None:
        auditor = FairnessAuditor(toy)
        report = auditor.audit(
            toy.observed_column("qualification"), algorithm="exhaustive", budget=10_000
        )
        assert report.result.algorithm == "exhaustive"

    def test_compare_algorithms_shares_scores(
        self, paper_population_small: Population
    ) -> None:
        auditor = FairnessAuditor(paper_population_small)
        reports = auditor.compare_algorithms(
            paper_biased_functions()["f6"], algorithms=("balanced", "unbalanced")
        )
        assert set(reports) == {"balanced", "unbalanced"}
        np.testing.assert_array_equal(
            reports["balanced"].scores, reports["unbalanced"].scores
        )

    def test_audit_task_runs_on_eligible_pool(
        self, paper_population_small: Population
    ) -> None:
        from repro.marketplace.tasks import task_from_weights

        task = task_from_weights(
            "t",
            "gig",
            {"language_test": 1.0},
            requirements={"approval_rate": 60.0},
        )
        auditor = FairnessAuditor(paper_population_small)
        report = auditor.audit_task(task, algorithm="single-attribute")
        eligible = (
            paper_population_small.observed_column("approval_rate") >= 60.0
        ).sum()
        assert report.population.size == eligible
        assert report.result.partitioning.population_size == eligible

    def test_audit_task_without_requirements_covers_everyone(
        self, paper_population_small: Population
    ) -> None:
        from repro.marketplace.tasks import task_from_weights

        task = task_from_weights("t", "gig", {"language_test": 1.0})
        report = FairnessAuditor(paper_population_small).audit_task(
            task, algorithm="single-attribute"
        )
        assert report.population.size == paper_population_small.size

    def test_audit_finds_planted_bias_end_to_end(
        self, paper_population_small: Population
    ) -> None:
        auditor = FairnessAuditor(paper_population_small)
        report = auditor.audit(paper_biased_functions()["f6"])
        assert report.result.partitioning.attributes_used() == ("gender",)
        male_group = next(g for g in report.groups if "Male" in g.label)
        female_group = next(g for g in report.groups if "Female" in g.label)
        assert male_group.mean_score > 0.8
        assert female_group.mean_score < 0.2
