"""Checkpoint/resume: atomicity, schema gating, and byte-identical resume.

The resume contract: kill an experiment after N cells, resume from the
checkpoint directory, and both the merged rows and the saved audit JSON are
byte-for-byte what an uninterrupted run produces.  Wall-clock runtimes would
break byte-identity, so these tests pin ``time.perf_counter`` to a constant.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.exceptions import CheckpointError
from repro.io.serialization import save_experiment_result
from repro.simulation.checkpoint import CHECKPOINT_SCHEMA, CheckpointStore, cell_key
from repro.simulation.config import PaperConfig
from repro.simulation.runner import experiment_fingerprint, run_scenario
from repro.simulation.scenarios import table1_scenario

ALGOS = ("balanced", "unbalanced", "r-balanced")


@pytest.fixture()
def frozen_clock(monkeypatch):
    """Pin the runtime clock so ExperimentRow.runtime_seconds is 0.0."""
    monkeypatch.setattr(time, "perf_counter", lambda: 0.0)


@pytest.fixture(scope="module")
def scenario():
    return table1_scenario(PaperConfig(n_workers=60, seed=1))


class _Killed(RuntimeError):
    """Stands in for SIGKILL: aborts the run right after a record()."""


class _KillingStore(CheckpointStore):
    """Checkpoint store that dies after persisting ``survive`` cells.

    record() finishes its atomic write *before* raising, which is exactly
    the window a real kill leaves behind: the file on disk holds every
    completed cell and nothing else.
    """

    def __init__(self, directory, survive: int) -> None:
        super().__init__(directory)
        self.survive = survive
        self._written = 0

    def record(self, *args, **kwargs) -> None:
        super().record(*args, **kwargs)
        self._written += 1
        if self._written >= self.survive:
            raise _Killed(f"killed after {self._written} cells")


class TestResume:
    @pytest.mark.parametrize("killed_after", [1, 4])
    def test_resumed_run_is_byte_identical(
        self, tmp_path, scenario, frozen_clock, killed_after
    ):
        uninterrupted = run_scenario(scenario, algorithms=ALGOS, seed=3)

        with pytest.raises(_Killed):
            run_scenario(
                scenario,
                algorithms=ALGOS,
                seed=3,
                checkpoint=_KillingStore(tmp_path, survive=killed_after),
            )
        checkpoint = CheckpointStore(tmp_path)
        assert len(checkpoint.load()["cells"]) == killed_after

        resumed = run_scenario(
            scenario,
            algorithms=ALGOS,
            seed=3,
            checkpoint=CheckpointStore(tmp_path),
            resume=True,
        )
        assert resumed.rows == uninterrupted.rows

        # ...and so is the persisted audit JSON, byte for byte.
        full_json = tmp_path / "full.json"
        resumed_json = tmp_path / "resumed.json"
        save_experiment_result(uninterrupted, full_json)
        save_experiment_result(resumed, resumed_json)
        assert resumed_json.read_bytes() == full_json.read_bytes()

    def test_resume_skips_completed_cells(self, tmp_path, scenario, frozen_clock):
        from repro.obs.metrics import MetricsRegistry

        run_scenario(
            scenario, algorithms=ALGOS, seed=3, checkpoint=CheckpointStore(tmp_path)
        )
        metrics = MetricsRegistry()
        run_scenario(
            scenario,
            algorithms=ALGOS,
            seed=3,
            checkpoint=CheckpointStore(tmp_path),
            resume=True,
            metrics=metrics,
        )
        counters = metrics.as_dict()["counters"]
        n_cells = len(ALGOS) * len(scenario.functions)
        assert counters["checkpoint.cells_skipped"] == n_cells
        assert "checkpoint.cells_written" not in counters

    def test_directory_path_accepted_directly(self, tmp_path, scenario, frozen_clock):
        first = run_scenario(
            scenario, algorithms=("balanced",), seed=3, checkpoint=tmp_path
        )
        resumed = run_scenario(
            scenario, algorithms=("balanced",), seed=3, checkpoint=tmp_path, resume=True
        )
        assert resumed.rows == first.rows

    def test_no_tmp_residue(self, tmp_path, scenario, frozen_clock):
        run_scenario(
            scenario, algorithms=("balanced",), seed=3, checkpoint=tmp_path
        )
        assert [p.name for p in tmp_path.iterdir()] == ["checkpoint.json"]

    def test_fresh_run_discards_stale_checkpoint(
        self, tmp_path, scenario, frozen_clock
    ):
        run_scenario(scenario, algorithms=ALGOS, seed=3, checkpoint=tmp_path)
        # Without resume=True the old cells must not leak into the new run.
        run_scenario(scenario, algorithms=("balanced",), seed=9, checkpoint=tmp_path)
        payload = CheckpointStore(tmp_path).load()
        assert payload["fingerprint"]["seed"] == 9
        assert set(payload["cells"]) == {
            cell_key(fn, "balanced") for fn in scenario.functions
        }


class TestRejection:
    def test_schema_version_mismatch_rejected(self, tmp_path, scenario):
        path = tmp_path / "checkpoint.json"
        path.write_text(
            json.dumps(
                {
                    "schema": "repro.checkpoint/v0",
                    "fingerprint": experiment_fingerprint(scenario, ALGOS, "emd", 3),
                    "cells": {},
                }
            )
        )
        with pytest.raises(CheckpointError, match="schema"):
            run_scenario(
                scenario, algorithms=ALGOS, seed=3, checkpoint=tmp_path, resume=True
            )

    def test_fingerprint_mismatch_rejected(self, tmp_path, scenario, frozen_clock):
        run_scenario(scenario, algorithms=ALGOS, seed=3, checkpoint=tmp_path)
        for kwargs in (
            {"algorithms": ALGOS, "seed": 4},
            {"algorithms": ("balanced",), "seed": 3},
            {"algorithms": ALGOS, "seed": 3, "metric": "jsd"},
        ):
            with pytest.raises(CheckpointError, match="refusing to resume"):
                run_scenario(scenario, checkpoint=tmp_path, resume=True, **kwargs)

    def test_unparseable_checkpoint_rejected(self, tmp_path):
        (tmp_path / "checkpoint.json").write_text("{not json")
        with pytest.raises(CheckpointError, match="cannot read"):
            CheckpointStore(tmp_path).load()

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="no checkpoint file"):
            CheckpointStore(tmp_path / "nope").load()

    def test_record_before_begin_rejected(self, tmp_path):
        with pytest.raises(CheckpointError, match="before begin"):
            CheckpointStore(tmp_path).record("k", None, 0)


class TestStoreFormat:
    def test_cells_carry_seed_and_rng_state(self, tmp_path, scenario, frozen_clock):
        run_scenario(scenario, algorithms=("r-balanced",), seed=3, checkpoint=tmp_path)
        payload = CheckpointStore(tmp_path).load()
        assert payload["schema"] == CHECKPOINT_SCHEMA
        cell = next(iter(payload["cells"].values()))
        assert isinstance(cell["cell_seed"], int)
        assert cell["rng_state"]["bit_generator"] == "PCG64"
        assert cell["row"]["algorithm"] == "r-balanced"

    def test_row_round_trip_preserves_types(self, tmp_path, scenario, frozen_clock):
        result = run_scenario(
            scenario, algorithms=("balanced",), seed=3, checkpoint=tmp_path
        )
        payload = CheckpointStore(tmp_path).load()
        key = cell_key(next(iter(scenario.functions)), "balanced")
        row = CheckpointStore.row_from_cell(payload["cells"][key])
        assert row == result.rows[0]
        assert isinstance(row.attributes_used, tuple)


class TestCheckpointCli:
    def test_experiment_flags_parse(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["experiment", "table1", "--checkpoint-dir", "ckpt"]
        )
        assert args.checkpoint_dir == "ckpt"
        assert args.resume is None
        args = build_parser().parse_args(["experiment", "table1", "--resume", "ckpt"])
        assert args.resume == "ckpt"

    def test_cli_resume_round_trip(self, tmp_path, capsys, frozen_clock):
        from repro.cli import main

        ckpt = tmp_path / "ckpt"
        out_a, out_b = tmp_path / "a.json", tmp_path / "b.json"
        assert (
            main(
                [
                    "experiment", "figure1",
                    "--checkpoint-dir", str(ckpt),
                    "--out", str(out_a),
                ]
            )
            == 0
        )
        assert (
            main(
                ["experiment", "figure1", "--resume", str(ckpt), "--out", str(out_b)]
            )
            == 0
        )
        assert out_b.read_bytes() == out_a.read_bytes()
