"""Integration tests across the algorithm suite.

These check the relationships the paper's evaluation relies on: heuristics
never beat the exact optimum, planted bias is recovered, and the objective
the result reports matches an independent re-evaluation.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithms import PAPER_ALGORITHMS, get_algorithm
from repro.core.attributes import CategoricalAttribute, ObservedAttribute
from repro.core.population import Population
from repro.core.schema import WorkerSchema
from repro.core.unfairness import UnfairnessEvaluator
from repro.marketplace.biased import paper_biased_functions


def _three_attribute_population(n: int = 60, seed: int = 0) -> Population:
    """Small random population with 3 binary/ternary protected attributes,
    small enough for exhaustive search."""
    schema = WorkerSchema(
        protected=(
            CategoricalAttribute("a", ("a0", "a1")),
            CategoricalAttribute("b", ("b0", "b1", "b2")),
            CategoricalAttribute("c", ("c0", "c1")),
        ),
        observed=(ObservedAttribute("skill", 0.0, 1.0),),
    )
    rng = np.random.default_rng(seed)
    return Population(
        schema,
        protected={
            "a": rng.integers(0, 2, n),
            "b": rng.integers(0, 3, n),
            "c": rng.integers(0, 2, n),
        },
        observed={"skill": rng.uniform(size=n)},
    )


class TestOptimumDominance:
    @pytest.mark.parametrize("seed", range(4))
    def test_heuristics_never_beat_exhaustive(self, seed: int) -> None:
        population = _three_attribute_population(seed=seed)
        scores = population.observed_column("skill")
        optimum = get_algorithm("exhaustive").run(population, scores).unfairness
        for name in PAPER_ALGORITHMS:
            value = get_algorithm(name).run(population, scores, rng=seed).unfairness
            assert value <= optimum + 1e-9, f"{name} beat the exhaustive optimum"


class TestPlantedBias:
    def test_planted_single_attribute_bias_recovered_by_all(self) -> None:
        population = _three_attribute_population(n=200, seed=1)
        # Plant bias on attribute "b": value determines the score band.
        codes = population.protected_column("b")
        rng = np.random.default_rng(2)
        scores = np.choose(codes, [0.1, 0.5, 0.9]) + rng.uniform(-0.05, 0.05, population.size)
        scores = np.clip(scores, 0.0, 1.0)
        for name in ("balanced", "unbalanced", "exhaustive", "single-attribute"):
            result = get_algorithm(name).run(population, scores)
            assert "b" in result.partitioning.attributes_used(), name

    def test_planted_interaction_bias_needs_subgroups(self) -> None:
        # Score high iff a=a0 AND c=c0 — an interaction neither single
        # attribute reveals strongly, the paper's motivating case.
        population = _three_attribute_population(n=400, seed=3)
        a = population.protected_column("a")
        c = population.protected_column("c")
        rng = np.random.default_rng(4)
        base = np.where((a == 0) & (c == 0), 0.9, 0.1)
        scores = np.clip(base + rng.uniform(-0.05, 0.05, population.size), 0.0, 1.0)
        single = get_algorithm("single-attribute").run(population, scores)
        subgroup = get_algorithm("unbalanced").run(population, scores)
        assert subgroup.unfairness > single.unfairness
        assert {"a", "c"} <= set(subgroup.partitioning.attributes_used())


class TestReportedObjective:
    @pytest.mark.parametrize("name", list(PAPER_ALGORITHMS) + ["single-attribute"])
    def test_reported_unfairness_matches_independent_evaluation(
        self, name: str, paper_population_small: Population
    ) -> None:
        scores = paper_biased_functions()["f7"](paper_population_small)
        result = get_algorithm(name).run(paper_population_small, scores, rng=0)
        evaluator = UnfairnessEvaluator(paper_population_small, scores)
        independent = evaluator.unfairness(result.partitioning)
        assert result.unfairness == pytest.approx(independent)


class TestMetricPluggability:
    @pytest.mark.parametrize("metric", ["emd", "ks", "tv", "js", "hellinger"])
    def test_every_algorithm_runs_under_every_metric(
        self, metric: str, small_population: Population
    ) -> None:
        scores = small_population.observed_column("skill")
        result = get_algorithm("balanced").run(small_population, scores, metric=metric)
        assert result.metric == metric
        assert result.unfairness >= 0.0

    def test_ks_objective_can_choose_differently_from_emd(self) -> None:
        # Construct scores where EMD ranks attribute "a" worst (mass far
        # apart) but KS ranks "b" worst (bigger CDF gap, nearby mass).
        population = _three_attribute_population(n=300, seed=5)
        a = population.protected_column("a")
        b = population.protected_column("b")
        rng = np.random.default_rng(6)
        scores = np.where(a == 0, 0.05, 0.95) * 0.5 + 0.25  # a: far-apart mass
        scores = np.where(b == 0, scores - 0.25, scores + 0.02)
        scores = np.clip(scores + rng.uniform(0, 0.02, population.size), 0.0, 1.0)
        emd_result = get_algorithm("single-attribute").run(population, scores, metric="emd")
        ks_result = get_algorithm("single-attribute").run(population, scores, metric="ks")
        # Not asserting they differ (depends on draw); assert both are valid
        # and consistent with their own metric's evaluation.
        for result, metric in ((emd_result, "emd"), (ks_result, "ks")):
            evaluator = UnfairnessEvaluator(population, scores, metric=metric)
            assert result.unfairness == pytest.approx(
                evaluator.unfairness(result.partitioning)
            )
