"""Service-wide chaos: degraded mode, watchdog, group-commit hole, net faults.

Covers the degradation state machine end to end (journal failure →
READ_ONLY → probe → HEALTHY), the group-commit acknowledgement hole (a
batch whose fsync fails must surface typed rejections, never a 200 plus a
silently lost job), the stalled-worker watchdog with stale-lease discard,
injected worker/network faults, and the chaos surface in ``/v1/healthz``
and ``/v1/metrics``.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest

from repro.exceptions import JobRejectedError, JournalWriteError
from repro.service import AuditJob, AuditService, JobState, ServiceConfig
from repro.service.chaos import ChaosConfig
from repro.service.http import REJECTION_STATUS, dispatch


def _job(job_id: str, **overrides) -> AuditJob:
    spec = {"id": job_id, "scenario": "figure1", "algorithm": "balanced"}
    spec.update(overrides)
    return AuditJob(**spec)


def _wait(predicate, timeout: float = 10.0, message: str = "condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {message}"
        time.sleep(0.01)


def _service(tmp_path, **overrides) -> AuditService:
    params = dict(
        queue_limit=8,
        workers=1,
        port=None,
        poll_seconds=0.01,
        probe_backoff_seconds=0.02,
        probe_backoff_max_seconds=0.1,
    )
    params.update(overrides)
    return AuditService(ServiceConfig(tmp_path, **params))


FAST_RESULT = {"scenario": "figure1-toy", "rows": [], "deadline_hit": False}


# -------------------------------------------------------------- spec parsing


class TestChaosSpec:
    def test_parse_routes_prefixes_and_shares_seed(self):
        config = ChaosConfig.parse(
            "disk-fsync=0.1,disk-torn=0.2,net-reset=0.3,net-stall-seconds=0.7,"
            "worker-stall=0.4,worker-stall-seconds=0.9,seed=42"
        )
        assert config.disk.fsync_rate == 0.1
        assert config.disk.torn_rate == 0.2
        assert config.net.reset_rate == 0.3
        assert config.net.stall_seconds == 0.7
        assert config.worker.stall_rate == 0.4
        assert config.worker.stall_seconds == 0.9
        assert config.disk.seed == config.net.seed == config.worker.seed == 42
        assert config.enabled

    def test_parse_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown chaos spec key"):
            ChaosConfig.parse("disk-sparks=0.5")
        with pytest.raises(ValueError, match="unknown chaos spec key"):
            ChaosConfig.parse("gremlins=1.0")
        with pytest.raises(ValueError, match="key=value"):
            ChaosConfig.parse("disk-fsync")

    def test_parse_rejects_out_of_range_rates(self):
        with pytest.raises(ValueError):
            ChaosConfig.parse("net-reset=1.5")

    def test_empty_spec_is_disabled(self):
        config = ChaosConfig.parse("")
        assert not config.enabled
        assert ChaosConfig().enabled is False

    def test_describe_is_json_shaped(self):
        config = ChaosConfig.parse("disk-eio=0.05,seed=9")
        payload = config.describe()
        assert payload["seed"] == 9
        assert payload["disk"]["eio"] == 0.05
        json.dumps(payload)  # must be serialisable as-is


# --------------------------------------------- satellite 1: group-commit hole


class TestGroupCommitAcknowledgementHole:
    def test_failed_group_commit_rejects_every_accepted_job(self, tmp_path):
        service = _service(tmp_path)
        service.start()
        try:
            original = service.journal.sync
            calls = {"n": 0}

            def failing_sync(seq=None):
                # Fail exactly the group commit for the batch below; the
                # probe's later sync() calls go through and win recovery.
                if calls["n"] == 0:
                    calls["n"] += 1
                    raise JournalWriteError(
                        "injected fsync failure between accept and commit",
                        written=True,
                    )
                return original(seq)

            service.journal.sync = failing_sync
            try:
                outcomes = service.submit_many(
                    [_job("batch-a").to_dict(), _job("batch-b").to_dict()]
                )
            finally:
                service.journal.sync = original
            # Typed rejection, not a success + silent loss.
            assert len(outcomes) == 2
            for outcome in outcomes:
                assert isinstance(outcome, JobRejectedError)
                assert outcome.reason == "degraded"
            assert REJECTION_STATUS["degraded"] == 503
            # The reservations were unwound: nothing runs, nothing lingers.
            assert {r["id"] for r in service.jobs_snapshot()} == set()
            assert service.metrics.counter("service.journal_write_failures") >= 1
            # The probe restores HEALTHY (the real disk is fine), after
            # which the same submits are accepted and run to completion.
            _wait(lambda: service.state == "HEALTHY", message="probe recovery")
            record = service.submit(_job("batch-a"))
            assert record.job.id == "batch-a"
            assert service.drain(timeout=30)
        finally:
            service.stop()

    def test_single_submit_commit_failure_raises_degraded(self, tmp_path):
        service = _service(tmp_path)
        service.start()
        try:
            original = service.journal.sync
            service.journal.sync = lambda seq=None: (_ for _ in ()).throw(
                JournalWriteError("injected", written=True)
            )
            try:
                with pytest.raises(JobRejectedError) as excinfo:
                    service.submit(_job("solo"))
            finally:
                service.journal.sync = original
            assert excinfo.value.reason == "degraded"
            assert service.state == "READ_ONLY"
        finally:
            service.stop()


# --------------------------------------------------- degradation state machine


class TestDegradedStateMachine:
    def test_read_only_rejects_submits_but_serves_reads(self, tmp_path):
        service = _service(tmp_path)
        service.start()
        try:
            done = service.submit(_job("before"))
            _wait(
                lambda: service.record("before").state in (JobState.DONE,),
                message="baseline job",
            )
            # Pin the disk broken so recovery cannot race the assertions.
            broken = threading.Event()
            broken.set()
            original_probe = service._probe_disk

            def probe():
                if broken.is_set():
                    raise JournalWriteError("probe: disk still broken")
                original_probe()

            service._probe_disk = probe
            service.enter_degraded("journal_write_failure: injected")
            with pytest.raises(JobRejectedError) as excinfo:
                service.submit(_job("while-degraded"))
            assert excinfo.value.reason == "degraded"
            # Reads, metrics and health keep working READ_ONLY.
            health = service.health()
            assert health["state"] == "READ_ONLY"
            assert health["status"] == "degraded"
            assert health["degraded_reasons"]
            assert isinstance(health["since"], float)
            assert service.record("before").state is JobState.DONE
            assert done.job.id in {r["id"] for r in service.jobs_snapshot()}
            assert service.metrics.counter("service.submitted") >= 1
            # Heal the disk: the probe loop restores HEALTHY on its own.
            broken.clear()
            _wait(lambda: service.state == "HEALTHY", message="probe recovery")
            assert service.metrics.counter("service.degraded_recoveries") == 1
            assert service.metrics.counter("service.disk_probes") >= 1
            health = service.health()
            assert health["state"] == "HEALTHY"
            assert health["status"] == "ok"
            assert health["degraded_reasons"] == []
            service.submit(_job("after-recovery"))
            assert service.drain(timeout=30)
        finally:
            service.stop()

    def test_degraded_seconds_accumulates(self, tmp_path):
        service = _service(tmp_path)
        service.start()
        try:
            service.enter_degraded("injected")
            _wait(lambda: service.state == "HEALTHY", message="probe recovery")
            assert service.metrics.counter("service.degraded_seconds") > 0
        finally:
            service.stop()

    def test_append_failure_on_submit_degrades(self, tmp_path):
        service = _service(tmp_path)
        service.start()
        try:
            original = service.journal.append_submit

            def failing_append(job, now, sync=True):
                raise JournalWriteError("injected append failure")

            service.journal.append_submit = failing_append
            try:
                with pytest.raises(JobRejectedError) as excinfo:
                    service.submit(_job("refused"))
            finally:
                service.journal.append_submit = original
            assert excinfo.value.reason == "degraded"
            assert "refused" not in {r["id"] for r in service.jobs_snapshot()}
            _wait(lambda: service.state == "HEALTHY", message="probe recovery")
        finally:
            service.stop()


# ----------------------------------------------------- watchdog + stale lease


class TestWatchdog:
    def test_stalled_worker_requeued_and_stale_result_discarded(
        self, tmp_path, monkeypatch
    ):
        service = _service(tmp_path, workers=2, watchdog_seconds=0.1)
        release = threading.Event()
        stalled = threading.Event()
        calls = {"n": 0}
        lock = threading.Lock()

        def execute(self, job):
            with lock:
                calls["n"] += 1
                first = calls["n"] == 1
            if first:
                stalled.set()
                release.wait(30)  # stall far past watchdog_seconds
            return dict(FAST_RESULT)

        monkeypatch.setattr(AuditService, "_execute", execute)
        service.start()
        try:
            service.submit(_job("stuck"))
            assert stalled.wait(10), "worker never started the job"
            # The watchdog re-queues the stalled job; the second worker
            # completes it on a fresh lease.
            _wait(
                lambda: service.record("stuck").state is JobState.DONE,
                message="watchdog re-queue + re-run",
            )
            assert service.metrics.counter("service.watchdog_requeues") >= 1
            # Unblock the stalled worker: its result carries a stale lease
            # and must be discarded, not double-applied.
            release.set()
            _wait(
                lambda: service.metrics.counter("service.stale_results_discarded")
                >= 1,
                message="stale result discard",
            )
            record = service.record("stuck")
            assert record.state is JobState.DONE
            assert service.drain(timeout=30)
        finally:
            release.set()
            service.stop()


# ------------------------------------------------------------- worker chaos


class TestWorkerChaos:
    def test_poison_rate_one_walks_the_quarantine_ladder(
        self, tmp_path, monkeypatch
    ):
        chaos = ChaosConfig.parse("worker-poison=1.0,seed=3")
        service = _service(tmp_path, chaos=chaos)
        monkeypatch.setattr(
            AuditService, "_execute", lambda self, job: dict(FAST_RESULT)
        )
        service.start()
        try:
            service.submit(_job("doomed"))
            _wait(
                lambda: service.record("doomed").state is JobState.QUARANTINED,
                message="poison quarantine",
            )
            assert service.metrics.counter("chaos.worker_poison") >= 3
            assert service.metrics.counter("chaos.faults_injected") >= 3
            assert "WorkerCrashError" in (service.record("doomed").reason or "")
        finally:
            service.stop()

    def test_worker_stall_sleeps_then_completes(self, tmp_path, monkeypatch):
        chaos = ChaosConfig.parse("worker-stall=1.0,worker-stall-seconds=0.05,seed=3")
        service = _service(tmp_path, chaos=chaos)
        monkeypatch.setattr(
            AuditService, "_execute", lambda self, job: dict(FAST_RESULT)
        )
        service.start()
        try:
            service.submit(_job("slowpoke"))
            _wait(
                lambda: service.record("slowpoke").state is JobState.DONE,
                message="stalled job completion",
            )
            assert service.metrics.counter("chaos.worker_stall") >= 1
        finally:
            service.stop()


# ------------------------------------------------------- disk chaos end-to-end


class TestDiskChaosEndToEnd:
    def test_fsync_storm_degrades_then_recovers(self, tmp_path, monkeypatch):
        # Roughly half of all journal fsyncs fail: submits bounce between
        # accepted and degraded-rejected, but the service always wins the
        # disk back and every acknowledged job reaches a terminal state.
        chaos = ChaosConfig.parse("disk-fsync=0.5,seed=1")
        service = _service(tmp_path, chaos=chaos)
        monkeypatch.setattr(
            AuditService, "_execute", lambda self, job: dict(FAST_RESULT)
        )
        service.start()
        try:
            acknowledged = []
            rejected = 0
            for index in range(12):
                deadline = time.monotonic() + 30
                while True:
                    assert time.monotonic() < deadline
                    try:
                        record = service.submit(_job(f"storm-{index}"))
                    except JobRejectedError as exc:
                        assert exc.reason == "degraded"
                        rejected += 1
                        time.sleep(0.02)
                        continue
                    acknowledged.append(record.job.id)
                    break
            assert rejected > 0, "chaos at 50% never rejected a submit"
            _wait(lambda: service.state == "HEALTHY", message="final recovery")
            for job_id in acknowledged:
                _wait(
                    lambda job_id=job_id: service.record(job_id).state
                    is JobState.DONE,
                    message=f"completion of {job_id}",
                )
            assert service.metrics.counter("chaos.disk_fsync") >= 1
            assert service.metrics.counter("service.degraded_recoveries") >= 1
        finally:
            service.stop()

    def test_acknowledged_jobs_survive_restart_during_chaos(
        self, tmp_path, monkeypatch
    ):
        chaos = ChaosConfig.parse("disk-fsync=0.3,seed=7")
        service = _service(tmp_path, chaos=chaos)
        monkeypatch.setattr(
            AuditService, "_execute", lambda self, job: dict(FAST_RESULT)
        )
        service.start()
        acknowledged = []
        try:
            for index in range(8):
                try:
                    record = service.submit(_job(f"r-{index}"))
                except JobRejectedError:
                    _wait(lambda: service.state == "HEALTHY", message="recovery")
                    continue
                acknowledged.append(record.job.id)
        finally:
            service.stop()
        # A clean restart (no chaos) must replay every acknowledged job.
        service2 = _service(tmp_path)
        service2.start()
        try:
            replayed = {r["id"] for r in service2.jobs_snapshot()}
            for job_id in acknowledged:
                assert job_id in replayed, f"acknowledged {job_id} lost on replay"
            assert service2.drain(timeout=30)
        finally:
            service2.stop()


# --------------------------------------------------------- healthz + metrics


class TestObservability:
    def test_healthz_reports_state_reasons_since_and_chaos(self, tmp_path):
        chaos = ChaosConfig.parse("disk-fsync=0.25,seed=11")
        service = _service(tmp_path, chaos=chaos)
        service.start()
        try:
            status, payload, _ = dispatch(service, "GET", "/v1/healthz", b"")
            assert status == 200
            assert payload["state"] == "HEALTHY"
            assert payload["status"] == "ok"
            assert payload["degraded_reasons"] == []
            assert isinstance(payload["since"], float)
            assert payload["chaos"]["seed"] == 11
            assert payload["chaos"]["disk"]["fsync"] == 0.25
        finally:
            service.stop()

    def test_healthz_has_no_chaos_key_without_chaos(self, tmp_path):
        service = _service(tmp_path)
        service.start()
        try:
            assert "chaos" not in service.health()
        finally:
            service.stop()

    def test_metrics_export_chaos_and_degradation_counters(self, tmp_path):
        service = _service(tmp_path)
        service.start()
        try:
            service.enter_degraded("injected")
            _wait(lambda: service.state == "HEALTHY", message="probe recovery")
            status, payload, _ = dispatch(service, "GET", "/v1/metrics", b"")
            assert status == 200
            counters = payload["counters"]
            assert counters["service.degraded_seconds"] > 0
            assert counters["service.degraded_recoveries"] == 1
        finally:
            service.stop()

    def test_draining_state_reported_during_shutdown(self, tmp_path):
        service = _service(tmp_path)
        service.start()
        try:
            service.request_shutdown()
            assert service.state == "DRAINING"
            assert service.health()["state"] == "DRAINING"
            assert service.health()["status"] == "draining"
        finally:
            service.stop()


# ------------------------------------------------- HTTP deadlines + net chaos


def _recv_all(sock: socket.socket, timeout: float = 10.0) -> bytes:
    sock.settimeout(timeout)
    chunks = []
    try:
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
    except (TimeoutError, ConnectionError, OSError):
        pass
    return b"".join(chunks)


class TestRequestDeadline:
    """Satellite 2: slow-loris peers get 408 and the socket back."""

    def _start(self, tmp_path, **overrides):
        service = _service(tmp_path, port=0, **overrides)
        service.start()
        return service

    def test_stalled_head_gets_408(self, tmp_path):
        service = self._start(tmp_path, request_timeout=0.3)
        try:
            host, port = service.address
            with socket.create_connection((host, port), timeout=10) as sock:
                # A head that never finishes: no terminating blank line.
                sock.sendall(b"GET /v1/healthz HTTP/1.1\r\n")
                response = _recv_all(sock)
            assert response.startswith(b"HTTP/1.1 408 ")
            assert b"request timed out" in response
            assert service.metrics.counter("service.request_timeouts") >= 1
        finally:
            service.stop()

    def test_stalled_body_gets_408(self, tmp_path):
        service = self._start(tmp_path, request_timeout=0.3)
        try:
            host, port = service.address
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(
                    b"POST /v1/jobs HTTP/1.1\r\n"
                    b"Content-Type: application/json\r\n"
                    b"Content-Length: 100\r\n\r\n"
                    b'{"id": "tri'  # trickle a prefix, then stall
                )
                response = _recv_all(sock)
            assert response.startswith(b"HTTP/1.1 408 ")
        finally:
            service.stop()

    def test_fast_requests_unaffected_by_deadline(self, tmp_path):
        service = self._start(tmp_path, request_timeout=0.5)
        try:
            host, port = service.address
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(
                    b"GET /v1/healthz HTTP/1.1\r\nConnection: close\r\n\r\n"
                )
                response = _recv_all(sock)
            assert response.startswith(b"HTTP/1.1 200 ")
        finally:
            service.stop()


class TestNetChaos:
    def _start(self, tmp_path, spec: str):
        service = _service(tmp_path, port=0, chaos=ChaosConfig.parse(spec))
        service.start()
        return service

    def test_truncated_response_declares_full_length(self, tmp_path):
        service = self._start(tmp_path, "net-truncate=1.0,seed=5")
        try:
            host, port = service.address
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(b"GET /v1/healthz HTTP/1.1\r\n\r\n")
                response = _recv_all(sock)
            head, _, body = response.partition(b"\r\n\r\n")
            assert head.startswith(b"HTTP/1.1 200 ")
            declared = next(
                int(line.split(b":")[1])
                for line in head.split(b"\r\n")
                if line.lower().startswith(b"content-length:")
            )
            assert 0 < len(body) < declared
            assert service.metrics.counter("chaos.net_truncate") >= 1
        finally:
            service.stop()

    def test_reset_mid_body_drops_the_connection(self, tmp_path):
        service = self._start(tmp_path, "net-reset=1.0,seed=5")
        try:
            host, port = service.address
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(b"GET /v1/healthz HTTP/1.1\r\n\r\n")
                response = _recv_all(sock)
            # Partial bytes at most; the service itself processed the
            # request fine (faults strike after dispatch).
            assert b"\"state\"" not in response or len(response) < 512
            assert service.metrics.counter("chaos.net_reset") >= 1
            assert service.state == "HEALTHY"
        finally:
            service.stop()

    def test_close_churn_forces_reconnect_but_loses_nothing(self, tmp_path):
        service = self._start(tmp_path, "net-close=1.0,seed=5")
        try:
            host, port = service.address
            for _ in range(3):
                with socket.create_connection((host, port), timeout=10) as sock:
                    sock.sendall(b"GET /v1/healthz HTTP/1.1\r\n\r\n")
                    response = _recv_all(sock)
                assert response.startswith(b"HTTP/1.1 200 ")
                assert b"Connection: close" in response
            assert service.metrics.counter("chaos.net_close") >= 3
        finally:
            service.stop()

    def test_submit_lost_to_reset_is_still_journaled(self, tmp_path, monkeypatch):
        # The at-least-once shape: the client never hears its 202, but the
        # service journaled the job — the retry collapses to duplicate_id.
        monkeypatch.setattr(
            AuditService, "_execute", lambda self, job: dict(FAST_RESULT)
        )
        service = self._start(tmp_path, "net-reset=1.0,seed=5")
        try:
            host, port = service.address
            body = json.dumps(_job("ghosted").to_dict()).encode()
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(
                    b"POST /v1/jobs HTTP/1.1\r\n"
                    b"Content-Type: application/json\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body
                )
                _recv_all(sock)
            _wait(
                lambda: "ghosted" in {r["id"] for r in service.jobs_snapshot()},
                message="journaled despite reset",
            )
            with pytest.raises(JobRejectedError) as excinfo:
                service.submit(_job("ghosted"))
            assert excinfo.value.reason == "duplicate_id"
        finally:
            service.stop()
