"""Unit tests for the column-oriented population store."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.population import Population
from repro.core.schema import WorkerSchema
from repro.exceptions import PopulationError


class TestConstruction:
    def test_size(self, small_population: Population) -> None:
        assert small_population.size == 12
        assert len(small_population) == 12

    def test_missing_protected_column(self, small_schema: WorkerSchema) -> None:
        with pytest.raises(PopulationError, match="missing protected column"):
            Population(
                small_schema,
                protected={"gender": np.array([0]), "country": np.array([0])},
                observed={"skill": np.array([0.5])},
            )

    def test_missing_observed_column(self, small_schema: WorkerSchema) -> None:
        with pytest.raises(PopulationError, match="missing observed column"):
            Population(
                small_schema,
                protected={
                    "gender": np.array([0]),
                    "country": np.array([0]),
                    "age": np.array([20]),
                },
                observed={},
            )

    def test_extra_column_rejected(self, small_schema: WorkerSchema) -> None:
        with pytest.raises(PopulationError, match="not declared in schema"):
            Population(
                small_schema,
                protected={
                    "gender": np.array([0]),
                    "country": np.array([0]),
                    "age": np.array([20]),
                    "extra": np.array([1]),
                },
                observed={"skill": np.array([0.5])},
            )

    def test_inconsistent_lengths_rejected(self, small_schema: WorkerSchema) -> None:
        with pytest.raises(PopulationError, match="inconsistent lengths"):
            Population(
                small_schema,
                protected={
                    "gender": np.array([0, 1]),
                    "country": np.array([0]),
                    "age": np.array([20]),
                },
                observed={"skill": np.array([0.5])},
            )

    def test_out_of_domain_code_rejected(self, small_schema: WorkerSchema) -> None:
        with pytest.raises(Exception, match="codes must lie"):
            Population(
                small_schema,
                protected={
                    "gender": np.array([5]),
                    "country": np.array([0]),
                    "age": np.array([20]),
                },
                observed={"skill": np.array([0.5])},
            )

    def test_two_dimensional_column_rejected(self, small_schema: WorkerSchema) -> None:
        with pytest.raises(PopulationError, match="one-dimensional"):
            Population(
                small_schema,
                protected={
                    "gender": np.zeros((2, 2), dtype=int),
                    "country": np.array([0]),
                    "age": np.array([20]),
                },
                observed={"skill": np.array([0.5])},
            )

    def test_columns_are_defensive_copies(self, small_schema: WorkerSchema) -> None:
        gender = np.array([0, 1])
        population = Population(
            small_schema,
            protected={
                "gender": gender,
                "country": np.array([0, 1]),
                "age": np.array([20, 30]),
            },
            observed={"skill": np.array([0.5, 0.6])},
        )
        gender[0] = 1
        assert population.protected_column("gender")[0] == 0

    def test_columns_are_read_only(self, small_population: Population) -> None:
        with pytest.raises(ValueError, match="read-only"):
            small_population.protected_column("gender")[0] = 1


class TestAccess:
    def test_protected_column(self, small_population: Population) -> None:
        assert small_population.protected_column("gender").tolist() == [0] * 6 + [1] * 6

    def test_unknown_column_raises(self, small_population: Population) -> None:
        with pytest.raises(PopulationError, match="no protected column"):
            small_population.protected_column("nope")
        with pytest.raises(PopulationError, match="no observed column"):
            small_population.observed_column("nope")

    def test_observed_normalized(self, small_population: Population) -> None:
        normalized = small_population.observed_normalized("skill")
        np.testing.assert_allclose(
            normalized, small_population.observed_column("skill")
        )  # skill range already [0, 1]

    def test_partition_codes_bucketise_integers(
        self, small_population: Population
    ) -> None:
        codes = small_population.partition_codes("age")
        assert codes.min() >= 0 and codes.max() < 5
        # age 20 -> first bucket, 65 -> last bucket (range [18, 67], 5 buckets).
        assert codes[0] == 0
        assert codes[9] == 4

    def test_partition_codes_cached_instance(self, small_population: Population) -> None:
        first = small_population.partition_codes("gender")
        second = small_population.partition_codes("gender")
        assert first is second

    def test_worker_view_decodes_labels(self, small_population: Population) -> None:
        worker = small_population.worker(0)
        assert worker.protected == {"gender": "Male", "country": "America", "age": 20}
        assert worker.observed == {"skill": 0.9}
        assert "worker[0]" in str(worker)

    def test_worker_view_out_of_range(self, small_population: Population) -> None:
        with pytest.raises(PopulationError, match="out of range"):
            small_population.worker(12)

    def test_iteration_yields_all_workers(self, small_population: Population) -> None:
        workers = list(small_population)
        assert len(workers) == 12
        assert [w.index for w in workers] == list(range(12))


class TestSubset:
    def test_subset_selects_rows(self, small_population: Population) -> None:
        subset = small_population.subset(np.array([0, 6]))
        assert subset.size == 2
        assert subset.worker(0).protected["gender"] == "Male"
        assert subset.worker(1).protected["gender"] == "Female"

    def test_subset_rejects_out_of_range(self, small_population: Population) -> None:
        with pytest.raises(PopulationError, match="out of range"):
            small_population.subset(np.array([99]))

    def test_all_indices(self, small_population: Population) -> None:
        assert small_population.all_indices().tolist() == list(range(12))

    def test_repr_mentions_size(self, small_population: Population) -> None:
        assert "size=12" in repr(small_population)
