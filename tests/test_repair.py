"""Unit and property tests for quantile-alignment score repair."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.algorithms import get_algorithm
from repro.core.partition import Partition, Partitioning
from repro.core.population import Population
from repro.core.unfairness import UnfairnessEvaluator
from repro.exceptions import PartitioningError
from repro.marketplace.biased import paper_biased_functions
from repro.repair.quantile import repair_scores, repaired_unfairness_curve


@pytest.fixture()
def audited(paper_population_small: Population):
    """A population, biased scores and the partitioning an audit found."""
    scores = paper_biased_functions()["f6"](paper_population_small)
    result = get_algorithm("balanced").run(paper_population_small, scores)
    return paper_population_small, scores, result.partitioning


class TestRepairScores:
    def test_full_repair_drives_unfairness_to_near_zero(self, audited) -> None:
        population, scores, partitioning = audited
        evaluator = UnfairnessEvaluator(population, scores)
        before = evaluator.unfairness(partitioning)
        repaired = repair_scores(scores, partitioning, amount=1.0)
        evaluator_after = UnfairnessEvaluator(population, repaired)
        after = evaluator_after.unfairness(partitioning)
        assert before > 0.7  # f6 is heavily biased
        assert after < 0.05

    def test_zero_amount_is_identity(self, audited) -> None:
        population, scores, partitioning = audited
        np.testing.assert_allclose(
            repair_scores(scores, partitioning, amount=0.0), scores
        )

    def test_partial_repair_interpolates(self, audited) -> None:
        population, scores, partitioning = audited
        full = repair_scores(scores, partitioning, amount=1.0)
        half = repair_scores(scores, partitioning, amount=0.5)
        np.testing.assert_allclose(half, 0.5 * scores + 0.5 * full)

    def test_within_group_ranking_is_preserved(self, audited) -> None:
        population, scores, partitioning = audited
        repaired = repair_scores(scores, partitioning, amount=1.0)
        for partition in partitioning:
            original_order = np.argsort(scores[partition.indices], kind="stable")
            repaired_order = np.argsort(repaired[partition.indices], kind="stable")
            np.testing.assert_array_equal(original_order, repaired_order)

    def test_repaired_scores_stay_in_pooled_range(self, audited) -> None:
        population, scores, partitioning = audited
        repaired = repair_scores(scores, partitioning, amount=1.0)
        assert repaired.min() >= scores.min() - 1e-12
        assert repaired.max() <= scores.max() + 1e-12

    def test_ties_repair_equally(self, paper_population_small: Population) -> None:
        # Workers with identical scores in the same group must stay identical.
        scores = np.round(
            paper_biased_functions()["f6"](paper_population_small), 1
        )
        result = get_algorithm("balanced").run(paper_population_small, scores)
        repaired = repair_scores(scores, result.partitioning, amount=1.0)
        for partition in result.partitioning:
            group_scores = scores[partition.indices]
            group_repaired = repaired[partition.indices]
            for value in np.unique(group_scores):
                tied = group_repaired[group_scores == value]
                assert np.ptp(tied) < 1e-12

    def test_zero_amount_is_bitwise_identity(self, audited) -> None:
        # Stronger than allclose: amount=0 must not perturb a single bit.
        _, scores, partitioning = audited
        repaired = repair_scores(scores, partitioning, amount=0.0)
        assert np.array_equal(repaired, scores)
        assert repaired is not scores  # still a copy, input untouched

    def test_repair_is_deterministic(self, audited) -> None:
        # amount=1 assigns the pooled quantiles exactly (no 0*x + 1*y
        # arithmetic), so repeated runs agree to the bit.
        _, scores, partitioning = audited
        for amount in (0.4, 1.0):
            first = repair_scores(scores, partitioning, amount=amount)
            second = repair_scores(scores, partitioning, amount=amount)
            assert np.array_equal(first, second)

    def test_singleton_groups_map_to_pooled_median(self) -> None:
        scores = np.array([0.0, 0.2, 0.4, 0.6, 0.8])
        partitioning = Partitioning(
            [Partition(np.array([0])), Partition(np.array([1, 2, 3, 4]))],
            population_size=5,
        )
        repaired = repair_scores(scores, partitioning, amount=1.0)
        # A singleton's only rank is the mid-quantile 0.5 of the pool.
        assert repaired[0] == pytest.approx(np.quantile(scores, 0.5))
        assert np.isfinite(repaired).all()

    def test_all_singleton_groups(self) -> None:
        scores = np.array([0.9, 0.1, 0.5])
        partitioning = Partitioning(
            [Partition(np.array([i])) for i in range(3)], population_size=3
        )
        repaired = repair_scores(scores, partitioning, amount=1.0)
        # Every group collapses to the same pooled median: maximal fairness.
        assert np.ptp(repaired) == 0.0

    def test_constant_scores_survive_repair(self, audited) -> None:
        _, _, partitioning = audited
        scores = np.full(partitioning.population_size, 0.5)
        repaired = repair_scores(scores, partitioning, amount=1.0)
        assert np.array_equal(repaired, scores)

    def test_ties_stay_tied_at_partial_amounts(
        self, paper_population_small: Population
    ) -> None:
        scores = np.round(
            paper_biased_functions()["f6"](paper_population_small), 1
        )
        result = get_algorithm("balanced").run(paper_population_small, scores)
        for amount in (0.3, 0.7):
            repaired = repair_scores(scores, result.partitioning, amount=amount)
            for partition in result.partitioning:
                group_scores = scores[partition.indices]
                group_repaired = repaired[partition.indices]
                for value in np.unique(group_scores):
                    tied = group_repaired[group_scores == value]
                    assert np.ptp(tied) < 1e-12, f"ties split at amount={amount}"

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_non_finite_scores_rejected(self, audited, bad) -> None:
        _, scores, partitioning = audited
        poisoned = scores.copy()
        poisoned[3] = bad
        with pytest.raises(PartitioningError, match="non-finite"):
            repair_scores(poisoned, partitioning)

    def test_wrong_shape_rejected(self, audited) -> None:
        _, scores, partitioning = audited
        with pytest.raises(PartitioningError, match="shape"):
            repair_scores(scores[:-1], partitioning)

    def test_invalid_amount_rejected(self, audited) -> None:
        _, scores, partitioning = audited
        with pytest.raises(PartitioningError, match="amount"):
            repair_scores(scores, partitioning, amount=1.5)


class TestDegenerateInputs:
    def test_single_group_partitioning_is_identity(self) -> None:
        # One group vs the pool is the pool vs itself: nothing to repair.
        # Regression: this used to push scores through the pooled quantile
        # map anyway, compressing the range toward its inner quantiles.
        scores = np.array([0.9, 0.1, 0.5, 0.3])
        partitioning = Partitioning([Partition(np.arange(4))], population_size=4)
        for amount in (0.5, 1.0):
            repaired = repair_scores(scores, partitioning, amount=amount)
            assert np.array_equal(repaired, scores)
            assert repaired is not scores

    def test_all_tied_scores_are_identity_at_partial_amounts(self, audited) -> None:
        # Regression: a one-point pooled distribution used to be handed to
        # the interpolator; it now early-returns a copy at every amount.
        _, _, partitioning = audited
        scores = np.full(partitioning.population_size, 0.123)
        for amount in (0.3, 0.5, 1.0):
            assert np.array_equal(
                repair_scores(scores, partitioning, amount=amount), scores
            )


class TestRepairCurve:
    def test_curve_is_monotone_decreasing_overall(self, audited) -> None:
        population, scores, partitioning = audited

        def evaluate(repaired: np.ndarray) -> float:
            return UnfairnessEvaluator(population, repaired).unfairness(partitioning)

        curve = repaired_unfairness_curve(scores, partitioning, evaluate)
        amounts = [a for a, _ in curve]
        values = [v for _, v in curve]
        assert amounts == pytest.approx([0.0, 0.2, 0.4, 0.6, 0.8, 1.0])
        assert values[0] > values[-1]
        assert values[-1] < 0.05

    def test_custom_amounts(self, audited) -> None:
        population, scores, partitioning = audited

        def evaluate(repaired: np.ndarray) -> float:
            return UnfairnessEvaluator(population, repaired).unfairness(partitioning)

        curve = repaired_unfairness_curve(
            scores, partitioning, evaluate, amounts=[0.0, 1.0]
        )
        assert len(curve) == 2
